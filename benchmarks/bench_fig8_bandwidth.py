"""Fig. 8 — fraction of demand bandwidth served from NM vs FM.

The paper: the ideal split is 0.8 (the 4:1 NM:FM bandwidth ratio).  HMA
and PoM land around 0.71/0.58, CAMEO lower, CAMEO+prefetch overshoots
toward NM, and SILC-FM's balancer holds ~0.76 — closest to ideal.

Shape checks: SILC-FM's NM share is the closest to the 0.8 target among
the migrating schemes; Random's share is far below (it has no notion of
hotness); only demand traffic counts (migrations excluded, as in the
paper).
"""

from conftest import run_once

from repro.experiments.runner import SCHEMES
from repro.stats.report import bar_chart
from repro.workloads.spec import BENCHMARKS

FIG8 = ["rand", "hma", "cam", "camp", "pom", "silc"]
IDEAL = 0.8


def test_fig8_bandwidth_split(benchmark, runner):
    def compute():
        # the paper counts demand *requests* serviced from NM vs FM
        # (migrations excluded); that is the access rate
        runner.prefetch(FIG8, BENCHMARKS, include_baseline=False)
        shares = {}
        for scheme in FIG8:
            values = [runner.result(scheme, wl).access_rate
                      for wl in BENCHMARKS]
            shares[scheme] = sum(values) / len(values)
        return shares

    shares = run_once(benchmark, compute)

    print()
    print(bar_chart({SCHEMES[s].label: shares[s] for s in FIG8},
                    title=f"Fig. 8: NM share of demand bandwidth "
                          f"(ideal = {IDEAL})"))
    for scheme in FIG8:
        print(f"{SCHEMES[scheme].label:>16s}: {shares[scheme]:.3f} "
              f"(distance from ideal {abs(shares[scheme] - IDEAL):.3f})")

    # --- shape assertions -------------------------------------------------
    migrating = ["hma", "cam", "camp", "pom", "silc"]
    distances = {s: abs(shares[s] - IDEAL) for s in migrating}
    # SILC-FM's balancer should land among the closest to the ideal,
    # and never overshoot it the way the unthrottled prefetcher can
    assert distances["silc"] <= min(distances.values()) + 0.1, \
        "SILC-FM's balancer should land near the 0.8 ideal"
    assert shares["silc"] <= IDEAL + 0.05, \
        "the balancer must not overshoot the target"
    assert shares["rand"] < 0.5, "Random places most demand in FM"
    for scheme in migrating:
        assert 0.3 < shares[scheme] <= 1.0
