"""Ablation — way/location predictor (Section III-F).

Without the predictor every access serialises its remap-entry fetches;
with it, a correct way+location speculation collapses the critical path
to a single data access.  The paper sizes it at 4 K entries and reports
it necessary to make the associative structure latency-competitive.

Shape checks: the predictor improves performance, and its accuracy is
high (the paper's premise that PC xor address correlates with placement).
"""

import dataclasses

from conftest import MISSES_PER_CORE, run_once

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import System
from repro.experiments.runner import run_one
from repro.stats.report import format_table
from repro.workloads.spec import per_core_spec

WORKLOAD = "mcf"


def test_predictor_ablation(benchmark, config):
    def compute():
        misses = MISSES_PER_CORE // 2
        baseline = run_one("nonm", WORKLOAD, config, misses_per_core=misses)
        rows = {}
        for enabled in (True, False):
            def factory(space, cfg, enabled=enabled):
                return SilcFmScheme(
                    space,
                    dataclasses.replace(cfg.silcfm, enable_predictor=enabled))

            holder = {}

            def wrapped(space, cfg, factory=factory):
                holder["scheme"] = factory(space, cfg)
                return holder["scheme"]

            system = System(config, wrapped, per_core_spec(WORKLOAD, config),
                            misses_per_core=misses,
                            alloc_policy="interleaved")
            result = system.run()
            scheme = holder["scheme"]
            rows["with predictor" if enabled else "no predictor"] = dict(
                speedup=result.speedup_over(baseline),
                mean_latency=result.controller_stats.mean_miss_latency,
                way_accuracy=scheme.predictor.way_accuracy,
                loc_accuracy=scheme.predictor.location_accuracy,
            )
        return rows

    rows = run_once(benchmark, compute)
    print()
    print(format_table(
        ["config", "speedup", "mean miss latency", "way acc", "loc acc"],
        [[k, v["speedup"], v["mean_latency"], v["way_accuracy"],
          v["loc_accuracy"]] for k, v in rows.items()],
        title=f"Predictor ablation on {WORKLOAD}"))

    assert rows["with predictor"]["speedup"] >= \
        rows["no predictor"]["speedup"], "the predictor should help"
    assert rows["with predictor"]["way_accuracy"] > 0.7
