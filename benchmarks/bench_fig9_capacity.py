"""Fig. 9 — performance with various NM capacities.

The paper sweeps the FM:NM capacity ratio from 1/16 to 1/4 (holding the
system otherwise fixed): SILC-FM grows from 1.83x to 2.04x while the
best comparison scheme only reaches 1.47-1.76x, i.e. SILC-FM degrades
the least when NM is small because locking + associativity absorb the
extra conflict pressure of fewer sets.

Shape checks: SILC-FM's geomean is monotone non-decreasing in NM size,
stays the best scheme at every ratio, and loses less when shrinking
from 1/4 to 1/16 than CAMEO does.

To keep the bench affordable this sweep uses a representative subset
(two workloads per MPKI class); `repro.experiments.figures.
fig9_capacity_sweep` runs the full suite.
"""

import os

from conftest import run_once

from repro.experiments.runner import SCHEMES, SuiteRunner
from repro.stats.collectors import geometric_mean
from repro.stats.report import grouped_series

RATIOS = [16, 8, 4]
SWEEP_SCHEMES = ["hma", "cam", "camp", "pom", "silc"]
WORKLOADS = ["xalancbmk", "cactusADM", "gcc", "gemsFDTD", "mcf", "milc"]
MISSES = int(os.environ.get("REPRO_BENCH_MISSES", "6000")) // 2


def test_fig9_capacity_sweep(benchmark, config, executor):
    def compute():
        out = {s: {} for s in SWEEP_SCHEMES}
        for ratio in RATIOS:
            runner = SuiteRunner(config.with_ratio(ratio),
                                 misses_per_core=MISSES,
                                 executor=executor)
            runner.prefetch(SWEEP_SCHEMES, WORKLOADS)
            for scheme in SWEEP_SCHEMES:
                speedups = [runner.speedup(scheme, wl) for wl in WORKLOADS]
                out[scheme][f"1/{ratio}"] = geometric_mean(speedups)
        return out

    table = run_once(benchmark, compute)

    print()
    print(grouped_series(
        {SCHEMES[s].label: table[s] for s in SWEEP_SCHEMES},
        headers_label="NM:FM",
        title="Fig. 9: geomean speedup vs NM capacity",
    ))

    # --- shape assertions -------------------------------------------------
    silc = table["silc"]
    assert silc["1/4"] >= silc["1/16"], \
        "SILC-FM should benefit from more NM capacity"
    for ratio in RATIOS:
        key = f"1/{ratio}"
        best = max(table[s][key] for s in SWEEP_SCHEMES)
        assert table["silc"][key] >= best * 0.97, \
            f"SILC-FM should lead (or tie) at NM:FM = {key}"
    # SILC-FM degrades less than CAMEO when NM shrinks (Section V-C)
    silc_retention = silc["1/16"] / silc["1/4"]
    cam_retention = table["cam"]["1/16"] / table["cam"]["1/4"]
    assert silc_retention >= cam_retention * 0.9
