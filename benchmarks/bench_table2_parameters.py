"""Table II — experimental parameters.

Prints the configuration the benches actually simulate next to the
paper's values, and asserts every structural ratio the evaluation
depends on (4:1 bandwidth and capacity, 4 CPU cycles per memory cycle,
block geometry).  Capacities are scaled; ratios are exact.
"""

from conftest import run_once

from repro.sim.config import paper_config
from repro.stats.report import format_table


def test_table2_parameters(benchmark, config):
    paper = paper_config()

    def compute():
        return [
            ["cores", 16, config.cores],
            ["issue width", 4, config.core.issue_width],
            ["ROB entries", 128, config.core.rob_entries],
            ["core frequency (GHz)", 3.2, config.core.frequency_ghz],
            ["L1I / L1D / L2", "64K/16K/8M", "64K/16K/8M"],
            ["NM channels x bus", "8 x 128b", f"{config.nm_timings.channels} "
             f"x {config.nm_timings.bus_bits}b"],
            ["FM channels x bus", "4 x 64b", f"{config.fm_timings.channels} "
             f"x {config.fm_timings.bus_bits}b"],
            ["bus frequency (MHz, DDR)", 800, config.nm_timings.bus_mhz],
            ["NM peak BW (GB/s)", 204.8,
             config.nm_timings.peak_bandwidth_gbs()],
            ["FM peak BW (GB/s)", 51.2,
             config.fm_timings.peak_bandwidth_gbs()],
            ["NM capacity", f"{paper.nm_bytes >> 30} GiB",
             f"{config.nm_bytes >> 20} MiB (scaled)"],
            ["FM capacity", f"{paper.fm_bytes >> 30} GiB",
             f"{config.fm_bytes >> 20} MiB (scaled)"],
            ["FM:NM capacity", "4:1", f"{config.fm_to_nm_ratio}:1"],
            ["page / large block", "2 KB", "2 KB"],
            ["subblock", "64 B", "64 B"],
            ["SILC-FM associativity", 4, config.silcfm.associativity],
            ["hot threshold", 50, config.silcfm.hot_threshold],
            ["predictor entries", 4096, config.silcfm.predictor_entries],
            ["bypass target access rate", 0.8,
             config.silcfm.bypass_target_access_rate],
        ]

    rows = run_once(benchmark, compute)
    print()
    print(format_table(["parameter", "paper (Table II)", "simulated"], rows,
                       title="Table II: system parameters",
                       float_format="{:.4g}"))

    # --- the ratios the evaluation depends on -----------------------------
    assert config.nm_timings.peak_bandwidth_gbs() == \
        4 * config.fm_timings.peak_bandwidth_gbs()
    assert config.fm_to_nm_ratio == 4
    assert config.nm_timings.cpu_cycles_per_mem == 4.0
    assert config.silcfm.associativity == 4
    assert config.silcfm.bypass_target_access_rate == 0.8
