"""Section V energy result — Energy-Delay Product.

The paper: thanks to die-stacked DRAM's lower access energy and the
execution-time win, SILC-FM reduces EDP by ~13% versus the best
state-of-the-art scheme.

Shape checks: SILC-FM has the lowest geomean EDP of all schemes, and
every migrating scheme's EDP beats the no-NM baseline (moving traffic
onto cheap NM bits while finishing sooner).
"""

from conftest import run_once

from repro.experiments.runner import SCHEMES
from repro.stats.collectors import geometric_mean
from repro.stats.report import bar_chart
from repro.workloads.spec import BENCHMARKS

EDP_SCHEMES = ["rand", "hma", "cam", "camp", "pom", "silc"]


def test_edp_comparison(benchmark, runner):
    def compute():
        runner.prefetch(EDP_SCHEMES, BENCHMARKS)
        out = {}
        for scheme in EDP_SCHEMES:
            ratios = []
            for wl in BENCHMARKS:
                base = runner.result("nonm", wl)
                ratios.append(runner.result(scheme, wl).edp / base.edp)
            out[scheme] = geometric_mean(ratios)
        return out

    table = run_once(benchmark, compute)

    print()
    print(bar_chart({SCHEMES[s].label: table[s] for s in EDP_SCHEMES},
                    title="EDP normalised to no-NM baseline (lower=better)"))
    best_other = min(v for k, v in table.items() if k != "silc")
    print(f"\nSILC-FM EDP vs best other scheme: "
          f"{(table['silc'] / best_other - 1) * 100:+.1f}% (paper: -13%)")

    # --- shape assertions -------------------------------------------------
    assert table["silc"] == min(table.values()), \
        "SILC-FM should deliver the lowest EDP"
    for scheme in ("cam", "pom", "silc"):
        assert table[scheme] < 1.0, \
            f"{scheme} should beat the no-NM baseline's EDP"
