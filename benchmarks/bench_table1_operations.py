"""Table I — metadata and operation summary.

Table I defines the six swap-operation scenarios.  The semantics are
unit-tested exhaustively in tests/core/test_table1_semantics.py; this
bench complements that by *measuring* how often each row occurs on a
real workload mix and printing the observed operation profile — the
dynamic counterpart of the paper's static table.

Shape checks: every Table I row is actually exercised by the suite; NM
service rows dominate on a locking-friendly workload.
"""

import collections

from conftest import MISSES_PER_CORE, run_once

from repro.cpu.system import System
from repro.experiments.runner import SCHEMES
from repro.stats.report import format_table
from repro.workloads.spec import per_core_spec

WORKLOADS = ["xalancbmk", "mcf", "milc"]

ROW_MEANING = {
    "row1": "remap match, bit set: service from NM",
    "row2": "remap match, bit clear: swap subblock from FM",
    "row3": "mismatch, bit set, NM addr: swap native back",
    "row4": "mismatch, bit clear, NM addr: service from NM",
    "row5": "mismatch, FM addr: restore block + swap",
    "nm-displaced-by-lock": "NM addr under fm-lock: service from FM",
    "all-locked": "set fully locked: service from FM",
}


def test_table1_operation_mix(benchmark, config):
    def compute():
        counts = collections.Counter()
        for wl in WORKLOADS:
            setup = SCHEMES["silc"]
            system = System(config, setup.factory, per_core_spec(wl, config),
                            misses_per_core=MISSES_PER_CORE // 2,
                            alloc_policy=setup.alloc_policy)
            scheme = system.scheme
            original = scheme.access

            def counted(paddr, is_write, pc=0, _orig=original):
                plan = _orig(paddr, is_write, pc)
                counts[plan.note.replace("-bypass", "")] += 1
                return plan

            scheme.access = counted
            system.run()
        return counts

    counts = run_once(benchmark, compute)
    total = sum(counts.values())

    print()
    rows = [
        [note, ROW_MEANING.get(note, ""), counts.get(note, 0),
         counts.get(note, 0) / total * 100]
        for note in ROW_MEANING
    ]
    print(format_table(["row", "action (Table I)", "count", "%"], rows,
                       title="Table I: observed operation mix (SILC-FM)",
                       float_format="{:.2f}"))

    # --- shape assertions -------------------------------------------------
    for row in ("row1", "row2", "row3", "row4", "row5"):
        assert counts.get(row, 0) > 0, f"Table I {row} never exercised"
    nm_service = counts.get("row1", 0) + counts.get("row4", 0)
    assert nm_service > total * 0.3, "NM service rows should dominate"
