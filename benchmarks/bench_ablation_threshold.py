"""Ablation — locking hot threshold (Section III-B/C).

The paper: "We have experimentally found that the threshold of 50 works
the best to determine the block hotness."  This bench sweeps the
threshold on the locking showcase workload (xalancbmk) and prints the
curve: too low locks lukewarm blocks (displacing native pages for
nothing), too high never locks.

Shape check: a mid-range threshold is at least as good as the extremes.
"""

import dataclasses

from conftest import MISSES_PER_CORE, run_once

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import System
from repro.experiments.runner import run_one
from repro.stats.report import bar_chart
from repro.workloads.spec import per_core_spec

WORKLOAD = "xalancbmk"
THRESHOLDS = [5, 20, 50, 1000]


def test_threshold_sweep(benchmark, config):
    def compute():
        misses = MISSES_PER_CORE // 2
        baseline = run_one("nonm", WORKLOAD, config, misses_per_core=misses)
        speedups = {}
        for threshold in THRESHOLDS:
            def factory(space, cfg, threshold=threshold):
                return SilcFmScheme(
                    space,
                    dataclasses.replace(cfg.silcfm, hot_threshold=threshold))

            system = System(config, factory, per_core_spec(WORKLOAD, config),
                            misses_per_core=misses,
                            alloc_policy="interleaved")
            speedups[f"threshold {threshold}"] = \
                system.run().speedup_over(baseline)
        return speedups

    speedups = run_once(benchmark, compute)
    print()
    print(bar_chart(speedups, title=f"Hot threshold sweep on {WORKLOAD}",
                    unit="x"))

    values = list(speedups.values())
    mid = max(values[1], values[2])
    assert mid >= min(values[0], values[-1]) * 0.95, \
        "a mid-range threshold should not lose to the extremes"
