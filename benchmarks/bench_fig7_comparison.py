"""Fig. 7 — performance comparison with other schemes.

Regenerates the paper's central result: per-benchmark speedup over the
no-die-stacked-DRAM baseline for Random, HMA, CAMEO, CAMEO+prefetch,
PoM and SILC-FM, plus the geometric mean.  The paper's headline: SILC-FM
outperforms the best state-of-the-art scheme by ~36% on average.

Shape checks (not absolute numbers): SILC-FM has the best geomean; every
migrating scheme beats Random; SILC-FM wins on bandwidth-bound (high
MPKI) workloads.
"""

from conftest import run_once

from repro.experiments.runner import SCHEMES
from repro.stats.collectors import geometric_mean
from repro.stats.report import bar_chart, grouped_series
from repro.workloads.spec import BENCHMARKS, HIGH_MPKI

FIG7 = ["rand", "hma", "cam", "camp", "pom", "silc"]


def test_fig7_scheme_comparison(benchmark, runner):
    def compute():
        runner.prefetch(FIG7, BENCHMARKS)
        table = {}
        for scheme in FIG7:
            per_wl = {wl: runner.speedup(scheme, wl) for wl in BENCHMARKS}
            per_wl["geomean"] = geometric_mean(
                [per_wl[wl] for wl in BENCHMARKS])
            table[scheme] = per_wl
        return table

    table = run_once(benchmark, compute)

    print()
    print(grouped_series(
        {SCHEMES[s].label: table[s] for s in FIG7},
        title="Fig. 7: speedup over no-NM baseline",
    ))
    geomeans = {SCHEMES[s].label: table[s]["geomean"] for s in FIG7}
    print()
    print(bar_chart(geomeans, title="Fig. 7 geomeans", unit="x"))
    silc = table["silc"]["geomean"]
    best_other = max(table[s]["geomean"] for s in FIG7 if s != "silc")
    print(f"\nSILC-FM vs best other: {(silc / best_other - 1) * 100:+.1f}% "
          f"(paper: +36%)")

    # --- shape assertions -------------------------------------------------
    assert silc == max(t["geomean"] for t in table.values()), \
        "SILC-FM must have the best geomean"
    for scheme in ("cam", "camp", "pom", "silc"):
        assert table[scheme]["geomean"] > table["rand"]["geomean"] * 0.95, \
            f"{scheme} should not lose to Random on average"
    # HMA pays real OS overheads and epoch lag; it must still stay in
    # the same league as static placement (the paper's HMA clearly beats
    # Random, but it also amortises over billion-instruction epochs that
    # a scaled trace cannot grant it)
    assert table["hma"]["geomean"] > table["rand"]["geomean"] * 0.8
    # SILC-FM helps most where bandwidth is the bottleneck
    high = geometric_mean([table["silc"][wl] for wl in HIGH_MPKI])
    assert high > 1.2
