"""Shared fixtures for the reproduction benches.

All figure benches share one :class:`SuiteRunner` per configuration, so
the (scheme x workload) simulations are run once and reused — Fig. 6,
Fig. 7, Fig. 8 and the EDP bench all draw from the same grid, exactly
like the paper's single simulation campaign.

Knobs (environment variables):

* ``REPRO_BENCH_MISSES`` — LLC misses per core per run (default 6000;
  raise for tighter numbers, lower for a smoke run).
* ``REPRO_SCALE`` — memory-capacity scale factor (see repro.sim.config).
"""

import os

import pytest

from repro.experiments.runner import SuiteRunner
from repro.sim.config import default_config

MISSES_PER_CORE = int(os.environ.get("REPRO_BENCH_MISSES", "6000"))


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture(scope="session")
def runner(config):
    """The shared (scheme x workload) result grid."""
    return SuiteRunner(config, misses_per_core=MISSES_PER_CORE)


@pytest.fixture(scope="session")
def misses_per_core():
    return MISSES_PER_CORE


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark (simulations are
    far too heavy for statistical repetition)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
