"""Shared fixtures for the reproduction benches.

All figure benches share one :class:`SuiteRunner` per configuration, so
the (scheme x workload) simulations are run once and reused — Fig. 6,
Fig. 7, Fig. 8 and the EDP bench all draw from the same grid, exactly
like the paper's single simulation campaign.

All simulations go through one shared :class:`ExperimentExecutor`, so
the benches fan out over worker processes and resume from the on-disk
result cache.

Knobs (environment variables):

* ``REPRO_BENCH_MISSES`` — LLC misses per core per run (default 6000;
  raise for tighter numbers, lower for a smoke run).
* ``REPRO_SCALE`` — memory-capacity scale factor (see repro.sim.config).
* ``REPRO_BENCH_JOBS`` — worker processes (default: all CPUs).
* ``REPRO_BENCH_CACHE`` — result-cache directory (default
  ``results/cache``; set empty to disable persistence).
* ``REPRO_BENCH_FORCE=1`` — ignore and overwrite existing cache entries.
"""

import os

import pytest

from repro.experiments.executor import DEFAULT_CACHE_DIR, ExperimentExecutor
from repro.experiments.runner import SuiteRunner
from repro.sim.config import default_config

MISSES_PER_CORE = int(os.environ.get("REPRO_BENCH_MISSES", "6000"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(os.cpu_count() or 1)))
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE", DEFAULT_CACHE_DIR) or None
FORCE = os.environ.get("REPRO_BENCH_FORCE", "") == "1"


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture(scope="session")
def executor():
    """One worker pool + result cache shared by every bench."""
    return ExperimentExecutor(jobs=JOBS, cache_dir=CACHE_DIR, force=FORCE)


@pytest.fixture(scope="session")
def runner(config, executor):
    """The shared (scheme x workload) result grid."""
    return SuiteRunner(config, misses_per_core=MISSES_PER_CORE,
                       executor=executor)


@pytest.fixture(scope="session")
def misses_per_core():
    return MISSES_PER_CORE


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark (simulations are
    far too heavy for statistical repetition)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
