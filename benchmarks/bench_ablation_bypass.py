"""Ablation — bandwidth balancing target (Section III-E).

The paper motivates the 0.8 access-rate target from the 4:1 NM:FM
bandwidth ratio: "if the bandwidth available from the two memory levels
are N+1, it is beneficial to service 1/(N+1) of the accesses from the
slower memory layer".  This bench sweeps the target on a
high-access-rate workload (milc exceeds 0.8 in the paper) and prints the
resulting speedup curve; disabling bypass entirely is the 1.0 endpoint.

Shape check: some balanced target beats the never-bypass configuration,
i.e. deliberately sending traffic to "slow" FM pays off once NM is the
bottleneck.
"""

import dataclasses

from conftest import MISSES_PER_CORE, run_once

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import System
from repro.experiments.runner import run_one
from repro.stats.report import bar_chart
from repro.workloads.spec import per_core_spec

WORKLOAD = "milc"
TARGETS = [0.6, 0.7, 0.8, 0.9]


def test_bypass_target_sweep(benchmark, config):
    def compute():
        misses = MISSES_PER_CORE // 2
        baseline = run_one("nonm", WORKLOAD, config, misses_per_core=misses)
        speedups = {}
        for target in TARGETS + [None]:
            if target is None:
                overrides = dict(enable_bypass=False)
                label = "no bypass"
            else:
                overrides = dict(bypass_target_access_rate=target)
                label = f"target {target}"

            def factory(space, cfg, overrides=overrides):
                return SilcFmScheme(
                    space, dataclasses.replace(cfg.silcfm, **overrides))

            system = System(config, factory, per_core_spec(WORKLOAD, config),
                            misses_per_core=misses,
                            alloc_policy="interleaved")
            result = system.run()
            speedups[label] = result.speedup_over(baseline)
        return speedups

    speedups = run_once(benchmark, compute)
    print()
    print(bar_chart(speedups,
                    title=f"Bypass target sweep on {WORKLOAD}", unit="x"))

    best_balanced = max(v for k, v in speedups.items() if k != "no bypass")
    assert best_balanced >= speedups["no bypass"] * 0.97, \
        "a balanced target should not lose to never bypassing"
