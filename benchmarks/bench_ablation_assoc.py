"""Ablation — associativity (Section III-C).

The paper experimented with 1/2/4-way organisations: 1-way thrashes on
conflicting hot blocks, 2-way removes many conflicts, 4-way more, which
is why SILC-FM adopts 4 ways.  gcc — "many lukewarm blocks" — is the
paper's associativity showcase (+36%).

Shape check: on the conflict-prone workloads, 4-way beats 1-way.
"""

import dataclasses

from conftest import MISSES_PER_CORE, run_once

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import System
from repro.experiments.runner import run_one
from repro.stats.collectors import geometric_mean
from repro.stats.report import grouped_series
from repro.workloads.spec import per_core_spec

WORKLOADS = ["gcc", "milc", "libquantum"]
WAYS = [1, 2, 4]


def test_associativity_sweep(benchmark, config):
    def compute():
        misses = MISSES_PER_CORE // 2
        table = {f"{w}-way": {} for w in WAYS}
        for wl in WORKLOADS:
            baseline = run_one("nonm", wl, config, misses_per_core=misses)
            for ways in WAYS:
                def factory(space, cfg, ways=ways):
                    return SilcFmScheme(
                        space,
                        dataclasses.replace(cfg.silcfm, associativity=ways))

                system = System(config, factory, per_core_spec(wl, config),
                                misses_per_core=misses,
                                alloc_policy="interleaved")
                table[f"{ways}-way"][wl] = \
                    system.run().speedup_over(baseline)
        for key in table:
            table[key]["geomean"] = geometric_mean(
                [table[key][wl] for wl in WORKLOADS])
        return table

    table = run_once(benchmark, compute)
    print()
    print(grouped_series(table, title="Associativity sweep (speedups)"))

    # at simulation scale associativity trades a higher access rate for
    # some NM row locality (DESIGN.md 5b); it must stay competitive with
    # direct-mapped on the conflict-prone workloads, as in the paper
    assert table["4-way"]["geomean"] >= table["1-way"]["geomean"] * 0.9, \
        "4-way should be competitive with direct-mapped"
    assert table["4-way"]["gcc"] >= table["1-way"]["gcc"] * 0.9
