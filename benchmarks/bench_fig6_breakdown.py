"""Fig. 6 — performance-improvement breakdown.

Regenerates the paper's cumulative feature stack: starting from Random
static placement, add (1) interleaved subblock swapping, (2) locking,
(3) 4-way associativity, (4) bandwidth-balancing bypass.  The paper
reports the swap stage alone at ~1.55x and the full stack at ~1.82x
over a no-migration static scheme, with each feature contributing on
average (+11%, +8%, +8%).

Shape checks: the full stack clearly beats both Random and the bare swap
stage on the geomean; high-MPKI workloads gain the most from swapping;
the full stack wins on the suite even if an individual feature can lose
on an individual workload (as in the paper, where locking helps
xalancbmk 14% but others not at all).
"""

from conftest import run_once

from repro.experiments.figures import FIG6_LABELS, FIG6_STAGES
from repro.stats.collectors import geometric_mean
from repro.stats.report import grouped_series
from repro.workloads.spec import BENCHMARKS, HIGH_MPKI, LOW_MPKI

STAGES = ["rand"] + FIG6_STAGES
LABELS = dict(FIG6_LABELS, rand="Random")


def test_fig6_feature_breakdown(benchmark, runner):
    def compute():
        runner.prefetch(STAGES, BENCHMARKS)
        table = {}
        for stage in STAGES:
            per_wl = {wl: runner.speedup(stage, wl) for wl in BENCHMARKS}
            per_wl["geomean"] = geometric_mean(
                [per_wl[wl] for wl in BENCHMARKS])
            table[stage] = per_wl
        return table

    table = run_once(benchmark, compute)

    print()
    print(grouped_series(
        {LABELS[s]: table[s] for s in STAGES},
        title="Fig. 6: cumulative breakdown (speedup over no-NM baseline)",
    ))
    print()
    for prev, cur in zip(STAGES, STAGES[1:]):
        delta = (table[cur]["geomean"] / table[prev]["geomean"] - 1) * 100
        print(f"{LABELS[cur]:>18s}: {delta:+.1f}% over {LABELS[prev]}")

    # --- shape assertions -------------------------------------------------
    g = {s: table[s]["geomean"] for s in STAGES}
    assert g["silc-swap"] > g["rand"], \
        "interleaved swapping must beat static random placement"
    assert g["silc"] > g["rand"] * 1.3, \
        "the full stack should be a large improvement over Random"
    assert g["silc"] >= g["silc-swap"], \
        "the full feature stack must not lose to bare swapping"
    # swapping helps bandwidth-bound workloads the most (Section V-A)
    high_gain = geometric_mean(
        [table["silc-swap"][wl] / table["rand"][wl] for wl in HIGH_MPKI])
    low_gain = geometric_mean(
        [table["silc-swap"][wl] / table["rand"][wl] for wl in LOW_MPKI])
    assert high_gain > 1.0
    assert high_gain > low_gain * 0.8
