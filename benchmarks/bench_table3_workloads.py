"""Table III — workload descriptions.

Validates that the synthetic suite actually exhibits the paper's
workload characteristics when run through the *real* cache hierarchy
(reference mode): measured LLC MPKI matches each benchmark's target and
the low/medium/high grouping boundaries (11 and 32) hold.
"""

import pytest

from conftest import run_once

from repro.experiments.executor import Cell
from repro.stats.report import format_table
from repro.workloads.spec import BENCHMARKS, per_core_spec

#: reference mode expands every miss ~30x, so keep this modest
MISSES = 1200


def test_table3_measured_mpki(benchmark, config, executor):
    def compute():
        rows = {}
        l2_bytes = config.caches.l2.size_bytes
        cells = {
            name: Cell("nonm", name, config, misses_per_core=MISSES,
                       mode="reference", warmup_fraction=0.0)
            for name in BENCHMARKS
        }
        executor.run_cells(cells.values())
        for name in BENCHMARKS:
            spec = per_core_spec(name, config)
            result = executor.run_cell(cells[name])
            instructions = result.total_instructions
            misses = sum(c.misses_issued for c in result.core_stats)
            hot_bytes = int(spec.hot_fraction * spec.footprint_pages * 2048)
            rows[name] = {
                "category": spec.category,
                "target": spec.mpki,
                "measured": misses / instructions * 1000.0,
                "pages": spec.footprint_pages,
                # when a benchmark's hot set fits the (scaled) LLC the
                # hierarchy legitimately absorbs part of the miss stream
                "llc_absorbs": hot_bytes < 2 * l2_bytes,
            }
        return rows

    rows = run_once(benchmark, compute)

    print()
    table = [
        [name, r["category"], r["target"], r["measured"],
         r["pages"] * 16 * 2 // 1024]
        for name, r in rows.items()
    ]
    print(format_table(
        ["benchmark", "class", "target MPKI", "measured MPKI",
         "footprint (MiB, 16 cores)"],
        table, title="Table III: measured through the cache hierarchy",
        float_format="{:.1f}"))

    # --- shape assertions -------------------------------------------------
    for name, r in rows.items():
        if r["llc_absorbs"]:
            # hot set fits the scaled LLC: absorption is correct cache
            # behaviour, so only the upper bound applies
            assert r["measured"] <= r["target"] * 1.35, name
            continue
        assert r["measured"] == pytest.approx(r["target"], rel=0.35), \
            f"{name}: measured MPKI {r['measured']:.1f} far from target"
        if r["category"] == "low":
            assert r["measured"] < 13
        elif r["category"] == "high":
            assert r["measured"] > 28
    assert max(rows.values(), key=lambda r: r["pages"])["pages"] == \
        rows["mcf"]["pages"], "mcf has the largest footprint in Table III"

