"""Setup shim: lets offline environments without the `wheel` package do
`python setup.py develop`; configuration lives in pyproject.toml."""

from setuptools import setup

setup()
