#!/usr/bin/env python
"""Load generator for the sweep service: many tenants, heavy overlap.

Replays ``--tenants`` concurrent clients (default 120), each submitting
a small sweep drawn from one shared cell pool, so well over half of all
submitted cells collide with another tenant's.  That drives every path
the service has: cold simulations, single-flight dedup fan-out, and
memo/disk cache hits — all at once, over real TCP connections.

On completion the script *asserts* the service's correctness
invariants and exits non-zero if any fails:

* **exactly-once**: no cache key executed on the worker pool more than
  once (``max_executions_per_key <= 1``), and the number of distinct
  executions equals the number of distinct keys submitted;
* **conservation**: every completed cell has exactly one source
  (``completed == cache + simulated + dedup``);
* **fan-out**: every tenant received a result for every submitted cell;
* **byte-identical**: a sampled tenant result equals a direct in-process
  ``run_one`` of the same cell, canonical-JSON for canonical-JSON.

Then it prints the throughput figures (cells/sec end to end, dedup hit
rate, cache-hit latency percentiles).  ``--report PATH`` additionally
writes them as a machine-readable JSON artifact — throughput, dedup
rate, latency snapshot, and one boolean per witness — which CI archives
and asserts on.

By default the script starts a private in-process service on an
ephemeral port with a temporary cache directory, so it is self-contained
(CI runs it as a smoke test).  Point it at an already-running service
with ``--host``/``--port`` instead.

Usage::

    PYTHONPATH=src python scripts/loadgen.py
    PYTHONPATH=src python scripts/loadgen.py --tenants 200 --pool 32
    PYTHONPATH=src python scripts/loadgen.py --host 127.0.0.1 --port 7316
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import random
import sys
import tempfile
import time

from repro.experiments.executor import Cell
from repro.experiments.runner import run_one
from repro.service import SweepClient, SweepService
from repro.sim.config import default_config

POOL_SCHEMES = ["nonm", "cam", "pom", "silc", "hma", "alloy"]
POOL_WORKLOADS = ["mcf", "milc", "lbm", "libquantum", "soplex",
                  "gemsFDTD", "omnetpp", "xalancbmk"]


def build_pool(size: int, misses: int) -> list:
    """``size`` distinct cells: tiny config, varied (scheme, workload)."""
    config = dataclasses.replace(default_config(scale=0.25), cores=2)
    pool = []
    for scheme in POOL_SCHEMES:
        for workload in POOL_WORKLOADS:
            if len(pool) == size:
                return pool
            pool.append(Cell(scheme, workload, config,
                             misses_per_core=misses))
    # need more variety than (scheme x workload): vary the seed
    seed = 1
    while len(pool) < size:
        for scheme in POOL_SCHEMES:
            if len(pool) == size:
                break
            for workload in POOL_WORKLOADS:
                if len(pool) == size:
                    break
                pool.append(Cell(scheme, workload, config,
                                 misses_per_core=misses, seed=seed))
        seed += 1
    return pool


def plan_sweeps(pool: list, tenants: int, cells_per_tenant: int,
                seed: int) -> list:
    """Deterministic per-tenant cell picks from the shared pool."""
    rng = random.Random(seed)
    return [
        [pool[rng.randrange(len(pool))] for _ in range(cells_per_tenant)]
        for _ in range(tenants)
    ]


async def drive(host: str, port: int, sweeps: list) -> list:
    """One connection + one streamed sweep per tenant, all concurrent."""

    async def one(tenant_id: int, cells: list):
        async with SweepClient(host, port) as client:
            return await client.run(cells, tenant=f"tenant-{tenant_id}")

    return await asyncio.gather(
        *[one(i, cells) for i, cells in enumerate(sweeps)])


async def fetch_stats(host: str, port: int) -> dict:
    async with SweepClient(host, port) as client:
        return await client.stats()


def check(condition: bool, label: str) -> bool:
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    return condition


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="concurrency/dedup load test for 'repro serve'")
    parser.add_argument("--tenants", type=int, default=120,
                        help="concurrent clients (default 120)")
    parser.add_argument("--cells-per-tenant", type=int, default=4)
    parser.add_argument("--pool", type=int, default=24,
                        help="distinct cells shared by all tenants"
                             " (default 24)")
    parser.add_argument("--misses", type=int, default=150,
                        help="LLC misses per core per cell (default 150)")
    parser.add_argument("--seed", type=int, default=7,
                        help="tenant-plan RNG seed")
    parser.add_argument("--host", default=None,
                        help="target an external service instead of an"
                             " in-process one")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the in-process service")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write a machine-readable JSON report of the"
                             " throughput figures and witness outcomes")
    args = parser.parse_args(argv)

    external = args.host is not None
    if external and args.port is None:
        parser.error("--host needs --port")

    pool = build_pool(args.pool, args.misses)
    sweeps = plan_sweeps(pool, args.tenants, args.cells_per_tenant,
                         args.seed)
    submitted = sum(len(cells) for cells in sweeps)
    unique_keys = {cell.key() for cells in sweeps for cell in cells}
    overlap = 1.0 - len(unique_keys) / submitted
    print(f"plan: {args.tenants} tenants x {args.cells_per_tenant} cells "
          f"= {submitted} requests over {len(unique_keys)} unique cells "
          f"({overlap:.0%} overlap)")

    async def go():
        if external:
            start = time.monotonic()
            outcomes = await drive(args.host, args.port, sweeps)
            wall = time.monotonic() - start
            stats = await fetch_stats(args.host, args.port)
            return outcomes, stats, wall
        with tempfile.TemporaryDirectory(prefix="loadgen-cache-") as tmp:
            async with SweepService(jobs=args.jobs, cache_dir=tmp,
                                    telemetry_interval=0) as service:
                start = time.monotonic()
                outcomes = await drive("127.0.0.1", service.port, sweeps)
                wall = time.monotonic() - start
                stats = await fetch_stats("127.0.0.1", service.port)
                return outcomes, stats, wall

    outcomes, stats, wall = asyncio.run(go())

    # ---- invariants ---------------------------------------------------
    print("invariants:")
    by_source = stats["cells"]["by_source"]
    fanned_out = all(
        outcome.ok and len(outcome.results) == len(sweeps[i])
        for i, outcome in enumerate(outcomes))
    sample_tenant = max(range(len(outcomes)),
                        key=lambda i: len(outcomes[i].results))
    sample_index = next(iter(sorted(outcomes[sample_tenant].results)))
    sample_cell = sweeps[sample_tenant][sample_index]
    direct = run_one(sample_cell.scheme_key, sample_cell.workload_name,
                     sample_cell.config,
                     misses_per_core=sample_cell.misses_per_core,
                     seed=sample_cell.seed)
    witnesses = {
        "exactly_once": stats["max_executions_per_key"] <= 1,
        "conservation":
            stats["cells"]["completed"] == sum(by_source.values()),
        "fan_out": fanned_out,
        "byte_identical":
            json.dumps(outcomes[sample_tenant].results[sample_index],
                       sort_keys=True)
            == json.dumps(direct.to_dict(), sort_keys=True),
    }
    if not external:  # a fresh cache means every unique key simulates
        witnesses["unique_executions"] = (
            stats["unique_simulated"] == len(unique_keys))
    ok = True
    ok &= check(witnesses["exactly_once"],
                "exactly-once: no key executed twice "
                f"(max={stats['max_executions_per_key']})")
    if not external:
        ok &= check(witnesses["unique_executions"],
                    f"exactly-once: {stats['unique_simulated']} executions"
                    f" for {len(unique_keys)} unique cells")
    ok &= check(witnesses["conservation"],
                "conservation: completed == cache + simulated + dedup "
                f"({stats['cells']['completed']} == {by_source})")
    ok &= check(witnesses["fan_out"],
                f"fan-out: all {len(outcomes)} tenants got full results")
    ok &= check(witnesses["byte_identical"],
                f"byte-identical: tenant-{sample_tenant} cell "
                f"{sample_index} matches a solo run_one")

    # ---- throughput ---------------------------------------------------
    latency = stats["cache_hit_latency"]
    print(f"throughput: {submitted} cells in {wall:.2f}s = "
          f"{submitted / wall:,.1f} cells/sec end to end")
    print(f"dedup: {by_source['dedup']} deduped, {by_source['cache']} "
          f"cache, {by_source['simulated']} simulated "
          f"(dedup hit rate {stats['dedup_hit_rate']:.1%})")
    if latency["count"]:
        print(f"cache-hit latency: p50 {latency['p50_ms']:.2f} ms, "
              f"p95 {latency['p95_ms']:.2f} ms over {latency['count']}"
              " samples")

    if args.report is not None:
        report = {
            "schema": 1,
            "ok": bool(ok),
            "plan": {
                "tenants": args.tenants,
                "cells_per_tenant": args.cells_per_tenant,
                "pool": len(pool),
                "submitted": submitted,
                "unique_cells": len(unique_keys),
                "overlap": round(overlap, 4),
                "external": external,
            },
            "throughput": {
                "wall_seconds": round(wall, 3),
                "cells_per_second": round(submitted / wall, 3),
            },
            "dedup": {
                "hit_rate": stats["dedup_hit_rate"],
                "by_source": by_source,
            },
            "cache_hit_latency": latency,
            "witnesses": witnesses,
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report: {args.report}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
