#!/usr/bin/env python
"""Regenerate the golden ``RunResult`` JSONs under ``tests/data/golden/``.

These files pin the *exact* simulation output (every stats counter, every
float) for a fixed config+seed grid.  ``tests/integration/
test_golden_results.py`` replays the same grid and asserts byte-identical
JSON, so any change to the hot path that silently perturbs simulated
behaviour — reordered events, changed float arithmetic, a dropped
counter — fails loudly instead of drifting the paper's figures.

Only regenerate (``python scripts/gen_golden_results.py``) when a change
*intends* to alter simulated behaviour, and say so in the commit message.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.runner import run_one  # noqa: E402
from repro.sim.config import default_config  # noqa: E402

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "data" / "golden"

#: the pinned grid: one epoch scheme (hma), one non-bijective scheme
#: (alloy), the paper scheme (silc), plus cam and the no-NM baseline.
SCHEMES = ["nonm", "silc", "cam", "pom", "hma", "alloy"]
WORKLOAD = "mcf"
MISSES = 300
SEED = 7
SCALE = 0.25


def golden_json(scheme: str, batch_window: int = 0,
                mshr_entries: int | None = None) -> str:
    """Run one golden-grid cell.  ``batch_window`` selects the batch
    engine (0 = scalar); both must reproduce the same committed bytes —
    the goldens are the equivalence contract's anchor.  ``mshr_entries``
    overrides the config default: ``None`` runs the default MSHR
    pipeline (the ``{scheme}-{workload}.json`` goldens), 0 the compat
    front door (the ``{scheme}-{workload}-compat.json`` goldens, whose
    bytes are the pre-MSHR pins carried forward unchanged)."""
    config = default_config(scale=SCALE)
    if batch_window:
        config = dataclasses.replace(config, batch_window=batch_window)
    if mshr_entries is not None:
        config = dataclasses.replace(config, mshr_entries=mshr_entries)
    result = run_one(scheme, WORKLOAD, config,
                     misses_per_core=MISSES, seed=SEED)
    return json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for scheme in SCHEMES:
        path = GOLDEN_DIR / f"{scheme}-{WORKLOAD}.json"
        path.write_text(golden_json(scheme))
        print(f"wrote {path}")
        compat = GOLDEN_DIR / f"{scheme}-{WORKLOAD}-compat.json"
        compat.write_text(golden_json(scheme, mshr_entries=0))
        print(f"wrote {compat}")


if __name__ == "__main__":
    main()
