#!/usr/bin/env python
"""Fail when the bench throughput regresses against a committed baseline.

Usage::

    python scripts/check_bench_regression.py BASELINE.json CURRENT.json \
        [--threshold 0.25] [--tail-threshold 0.10]

Compares ``accesses_per_sec`` per cell (matched by cell key + workload)
and in total; exits 1 when the current run is more than ``threshold``
(default 25%) slower than the baseline anywhere.  Cells present in only
one file are reported but never fail the check (the suite definition may
legitimately grow), and speedups are always fine.

Wall-clock thresholds this loose are deliberately insensitive to CI-host
noise; they catch the "someone re-introduced a per-op allocation"
class of regression, not single-digit jitter.

Schema-v3 baselines additionally carry per-cell **request-latency
tails** (``p95_latency``/``p99_latency``, simulation cycles, from an
untimed span-sampled run).  Those are deterministic given the bench's
pinned seed, so the gate is tighter (``--tail-threshold``, default
10%): a current tail more than that above the baseline fails.  The gate
is skipped for cells whose baseline lacks the fields or recorded
``null`` (pre-v3 baselines, histogram overflow) — upgrading the
baseline turns it on.
"""

from __future__ import annotations

import argparse
import json
import sys

#: tail fields gated per cell (simulation-cycle request latencies).
TAIL_FIELDS = ("p95_latency", "p99_latency")


def load_cells(path: str):
    with open(path) as fh:
        payload = json.load(fh)
    cells = {}
    for cell in payload["cells"]:
        key = (cell.get("key", cell["scheme"]), cell["workload"])
        cells[key] = {
            "accesses_per_sec": cell["accesses_per_sec"],
            "tails": {field: cell.get(field) for field in TAIL_FIELDS},
        }
    total = payload["throughput"]["accesses_per_sec"]
    return cells, total


def check_tails(label, base_cell, cur_cell, threshold, failures):
    """Gate the deterministic latency tails of one matched cell."""
    for field in TAIL_FIELDS:
        base = base_cell["tails"].get(field)
        cur = cur_cell["tails"].get(field)
        if base is None:
            continue  # pre-v3 baseline or overflow: nothing to gate
        if cur is None:
            # current histogram overflowed where the baseline did not —
            # that IS a tail blow-up, not missing data.
            failures.append(f"{label}:{field}")
            print(f"  {label} {field}: {base:,.0f} -> overflow cyc"
                  f"  <-- TAIL REGRESSION")
            continue
        ratio = cur / base if base else float("inf")
        marker = ""
        if ratio > 1 + threshold:
            failures.append(f"{label}:{field}")
            marker = "  <-- TAIL REGRESSION"
        print(f"  {label} {field}: {base:,.0f} -> {cur:,.0f} cyc "
              f"({ratio:.2f}x){marker}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        metavar="FRACTION",
                        help="maximum tolerated throughput drop "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--tail-threshold", type=float, default=0.10,
                        metavar="FRACTION",
                        help="maximum tolerated p95/p99 request-latency "
                             "growth (default 0.10 = 10%%; the tails are "
                             "deterministic, so this can be tight)")
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be in (0, 1)")
    if args.tail_threshold <= 0:
        parser.error("--tail-threshold must be positive")

    base_cells, base_total = load_cells(args.baseline)
    cur_cells, cur_total = load_cells(args.current)

    failures = []
    for key in sorted(base_cells):
        label = f"{key[0]}/{key[1]}"
        if key not in cur_cells:
            print(f"  note: cell {label} missing from current run")
            continue
        base = base_cells[key]["accesses_per_sec"]
        cur = cur_cells[key]["accesses_per_sec"]
        ratio = cur / base if base else float("inf")
        marker = ""
        if ratio < 1 - args.threshold:
            failures.append(label)
            marker = "  <-- REGRESSION"
        print(f"  {label}: {base:,.0f} -> {cur:,.0f} acc/s "
              f"({ratio:.2f}x){marker}")
        check_tails(label, base_cells[key], cur_cells[key],
                    args.tail_threshold, failures)
    for key in sorted(set(cur_cells) - set(base_cells)):
        print(f"  note: new cell {key[0]}/{key[1]} "
              f"({cur_cells[key]['accesses_per_sec']:,.0f} acc/s, "
              "no baseline)")

    total_ratio = cur_total / base_total if base_total else float("inf")
    marker = ""
    if total_ratio < 1 - args.threshold:
        failures.append("total")
        marker = "  <-- REGRESSION"
    print(f"  total: {base_total:,.0f} -> {cur_total:,.0f} acc/s "
          f"({total_ratio:.2f}x){marker}")

    if failures:
        print(f"FAIL: regression past thresholds "
              f"(throughput {args.threshold:.0%}, "
              f"tails {args.tail_threshold:.0%}) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"OK: throughput within {args.threshold:.0%} and tails within "
          f"{args.tail_threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
