#!/usr/bin/env python
"""Fail when the bench throughput regresses against a committed baseline.

Usage::

    python scripts/check_bench_regression.py BASELINE.json CURRENT.json \
        [--threshold 0.25]

Compares ``accesses_per_sec`` per cell (matched by cell key + workload)
and in total; exits 1 when the current run is more than ``threshold``
(default 25%) slower than the baseline anywhere.  Cells present in only
one file are reported but never fail the check (the suite definition may
legitimately grow), and speedups are always fine.

Wall-clock thresholds this loose are deliberately insensitive to CI-host
noise; they catch the "someone re-introduced a per-op allocation"
class of regression, not single-digit jitter.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_cells(path: str):
    with open(path) as fh:
        payload = json.load(fh)
    cells = {}
    for cell in payload["cells"]:
        key = (cell.get("key", cell["scheme"]), cell["workload"])
        cells[key] = cell["accesses_per_sec"]
    total = payload["throughput"]["accesses_per_sec"]
    return cells, total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        metavar="FRACTION",
                        help="maximum tolerated throughput drop "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be in (0, 1)")

    base_cells, base_total = load_cells(args.baseline)
    cur_cells, cur_total = load_cells(args.current)

    failures = []
    for key in sorted(base_cells):
        label = f"{key[0]}/{key[1]}"
        if key not in cur_cells:
            print(f"  note: cell {label} missing from current run")
            continue
        base, cur = base_cells[key], cur_cells[key]
        ratio = cur / base if base else float("inf")
        marker = ""
        if ratio < 1 - args.threshold:
            failures.append(label)
            marker = "  <-- REGRESSION"
        print(f"  {label}: {base:,.0f} -> {cur:,.0f} acc/s "
              f"({ratio:.2f}x){marker}")
    for key in sorted(set(cur_cells) - set(base_cells)):
        print(f"  note: new cell {key[0]}/{key[1]} "
              f"({cur_cells[key]:,.0f} acc/s, no baseline)")

    total_ratio = cur_total / base_total if base_total else float("inf")
    marker = ""
    if total_ratio < 1 - args.threshold:
        failures.append("total")
        marker = "  <-- REGRESSION"
    print(f"  total: {base_total:,.0f} -> {cur_total:,.0f} acc/s "
          f"({total_ratio:.2f}x){marker}")

    if failures:
        print(f"FAIL: >{args.threshold:.0%} throughput regression in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"OK: throughput within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
