#!/usr/bin/env python
"""Fail when the bench throughput regresses against a committed baseline.

Usage::

    python scripts/check_bench_regression.py BASELINE.json CURRENT.json \
        [--threshold 0.25] [--tail-threshold 0.10]

Compares ``accesses_per_sec`` per cell (matched by cell key + workload)
and in total; exits 1 when the current run is more than ``threshold``
(default 25%) slower than the baseline anywhere.  Cells present in only
one file are reported but never fail the check (the suite definition may
legitimately grow), and speedups are always fine.

Wall-clock thresholds this loose are deliberately insensitive to CI-host
noise; they catch the "someone re-introduced a per-op allocation"
class of regression, not single-digit jitter.

Schema-v3 baselines additionally carry per-cell **request-latency
tails** (``p95_latency``/``p99_latency``, simulation cycles, from an
untimed span-sampled run).  Those are deterministic given the bench's
pinned seed, so the gate is tighter (``--tail-threshold``, default
10%): a current tail more than that above the baseline fails.  The gate
is skipped for cells whose baseline lacks the fields or recorded
``null`` (pre-v3 baselines, histogram overflow) — upgrading the
baseline turns it on.  It is also skipped wholesale when the *current*
run measured no tails anywhere (since schema v4, quick runs skip the
tail pass unless the config enables span sampling); a ``null`` tail in
a run that measured others still fails as a histogram overflow.

Schema-v4 baselines also carry the **batch engine's** throughput
(``batched_accesses_per_sec``, per cell and in total).  It is gated
with the same ``--threshold`` as the scalar column, and skipped when
the baseline predates schema v4 — so one gate run holds both engines
to their baselines, and a change that quietly de-optimizes only the
batched path cannot hide behind a healthy scalar number.

Schema-v5 payloads carry a ``silc-compat`` cell (``mshr_entries=0``)
next to the default-MSHR ``silc`` cell, and the gate additionally
checks the **MSHR dominance figure of merit** on the *current* run:
silc's speedup-over-nonm geomean with the default MSHR file must be at
least its compat-mode twin's.  This pins the silc-mshr32 postmortem's
conclusion — the transaction pipeline must be a win, never a modeling
tax — deterministically (simulation cycles, not wall clock), so an
MSHR policy regression cannot ride in behind healthy throughput
numbers.  Skipped for payloads that predate the v5 suite.

Schema-v7 payloads carry a ``batch_curve`` section: the closed-form
window evaluator's speedup across pinned ``batch_window`` sizes, each
point digest-checked against the scalar engine before the bench reports
it.  The gate holds every baseline point's speedup to the shared
``--threshold``, matched by window size.  Like the batched column, the
closed-form column is load-bearing once measured: a baseline with a
curve and a current run without one (or missing a baseline window) is a
**failure**, not a skip — only baselines that predate schema v7 skip
the gate.

Schema-v6 payloads carry a ``service`` section: the multi-tenant sweep
service under a pinned concurrent load.  The gate holds its cold and
hot ``cells_per_sec`` to the baseline with the same ``--threshold`` as
the simulator columns, and — like the batched column — a baseline with
a service section and a current run without one is a failure, not a
skip.  The section's correctness witnesses are gated on the *current*
run alone and **hard-fail regardless of thresholds**: ``exactly_once``
false or ``max_executions_per_key > 1`` means single-flight dedup
broke, ``fanned_out``/``conserved`` false means tenants lost results.
Skipped (with a note) when *both* files predate schema v6.
"""

from __future__ import annotations

import argparse
import json
import sys

#: tail fields gated per cell (simulation-cycle request latencies).
TAIL_FIELDS = ("p95_latency", "p99_latency")


def load_cells(path: str):
    with open(path) as fh:
        payload = json.load(fh)
    cells = {}
    for cell in payload["cells"]:
        key = (cell.get("key", cell["scheme"]), cell["workload"])
        cells[key] = {
            "accesses_per_sec": cell["accesses_per_sec"],
            "batched_accesses_per_sec": cell.get("batched_accesses_per_sec"),
            "tails": {field: cell.get(field) for field in TAIL_FIELDS},
        }
    totals = payload["throughput"]
    total = {
        "accesses_per_sec": totals["accesses_per_sec"],
        "batched_accesses_per_sec": totals.get("batched_accesses_per_sec"),
    }
    # Did this run measure tails at all?  Since schema v4, quick runs
    # skip the span-sampled tail pass unless the config opts in, so a
    # current run with *no* tails anywhere is "not measured" — only a
    # null tail alongside other measured cells means histogram overflow.
    measured_tails = any(tail is not None
                         for cell in cells.values()
                         for tail in cell["tails"].values())
    speedups = (payload.get("figures_of_merit") or {}).get(
        "speedup_over_nonm") or {}
    service = payload.get("service")
    curve = payload.get("batch_curve")
    return cells, total, measured_tails, speedups, service, curve


def check_mshr_dominance(speedups, failures):
    """Schema-v5 figure-of-merit gate, evaluated on the *current* run
    alone: silc with the default MSHR file must keep a speedup-over-nonm
    geomean at least as high as its compat-mode twin (``silc-compat``,
    ``mshr_entries=0``).  Both speedups share the same nonm denominator,
    so this is a pure simulation-cycle comparison — deterministic, and
    immune to the CI-host noise the throughput thresholds absorb."""
    silc = speedups.get("silc")
    compat = speedups.get("silc-compat")
    if not isinstance(silc, dict) or not isinstance(compat, dict):
        print("  note: no silc/silc-compat figures of merit "
              "(pre-v5 payload) — MSHR dominance gate skipped")
        return
    marker = ""
    if silc["geomean"] < compat["geomean"]:
        failures.append("fom:mshr-dominance")
        marker = "  <-- REGRESSION"
    print(f"  silc speedup geomean: default-MSHR {silc['geomean']:.4f} "
          f"vs compat {compat['geomean']:.4f}{marker}")


def check_curve(base, cur, threshold, failures):
    """Gate the schema-v7 closed-form speedup curve.

    Each baseline point's speedup (matched by ``batch_window``) is held
    to the shared ``--threshold``.  A baseline with a curve and a
    current run without one — or without one of the baseline's windows
    — is a failure: the closed-form column must not silently drop out
    of the bench.  Pre-v7 baselines (no curve) skip."""
    if base is None:
        if cur is not None:
            print("  note: new batch_curve section (no baseline)")
        else:
            print("  note: no batch_curve in either file "
                  "(pre-v7 payloads) — closed-form gate skipped")
        return
    if cur is None:
        failures.append("curve:missing")
        print("  batch_curve: baseline has a closed-form curve, current "
              "run does not  <-- REGRESSION")
        return
    cur_points = {p["batch_window"]: p for p in cur.get("points", [])}
    for point in base.get("points", []):
        window = point["batch_window"]
        label = f"curve:w{window}"
        cur_point = cur_points.get(window)
        if cur_point is None:
            failures.append(label)
            print(f"  batch_curve w={window}: {point['speedup']:.2f}x -> "
                  f"missing  <-- REGRESSION")
            continue
        base_speedup = point["speedup"]
        cur_speedup = cur_point["speedup"]
        ratio = (cur_speedup / base_speedup if base_speedup
                 else float("inf"))
        marker = ""
        if ratio < 1 - threshold:
            failures.append(label)
            marker = "  <-- REGRESSION"
        print(f"  batch_curve w={window}: {base_speedup:.2f}x -> "
              f"{cur_speedup:.2f}x ({ratio:.2f}x){marker}")


def check_service(base, cur, threshold, failures):
    """Gate the schema-v6 service section.

    Throughput (cold/hot cells per second) is held to the baseline with
    the shared ``--threshold``; the correctness witnesses are evaluated
    on the current run alone and fail hard — a dedup bug is a bug, not
    a slowdown."""
    if base is None and cur is None:
        print("  note: no service section in either file "
              "(pre-v6 payloads) — service gate skipped")
        return
    if cur is None:
        # the baseline measured the service but the current run has no
        # section at all — the bench (or the service itself) was
        # dropped, which the gate must not wave through.
        failures.append("service:missing")
        print("  service: baseline has a service section, current run "
              "does not  <-- REGRESSION")
        return
    for witness, broken in (
            ("exactly_once", not cur.get("exactly_once", False)),
            ("max_executions_per_key",
             cur.get("max_executions_per_key", 0) > 1),
            ("fanned_out", not cur.get("fanned_out", False)),
            ("conserved", not cur.get("conserved", False))):
        if broken:
            failures.append(f"service:{witness}")
            print(f"  service {witness}: violated on the current run"
                  f"  <-- CORRECTNESS")
    print(f"  service dedup hit rate: {cur['dedup_hit_rate']:.1%} over "
          f"{cur['total_cell_requests']} requests "
          f"({cur['unique_cells']} unique cells)")
    for phase in ("cold", "hot"):
        cur_rate = cur[phase]["cells_per_sec"]
        if base is None:
            print(f"  note: new service {phase} phase "
                  f"({cur_rate:,.1f} cells/s, no baseline)")
            continue
        base_rate = base[phase]["cells_per_sec"]
        ratio = cur_rate / base_rate if base_rate else float("inf")
        marker = ""
        if ratio < 1 - threshold:
            failures.append(f"service:{phase}")
            marker = "  <-- REGRESSION"
        print(f"  service {phase}: {base_rate:,.1f} -> {cur_rate:,.1f} "
              f"cells/s ({ratio:.2f}x){marker}")


def check_batched(label, base, cur, threshold, failures):
    """Gate one batched-throughput column (cell or total).  Pre-v4
    baselines record no batched number — nothing to gate until the
    baseline is regenerated."""
    if base is None:
        return
    if cur is None:
        # the baseline measured the batch engine but the current run
        # has no batched column at all — the engine (or its digest
        # check) was dropped, which the gate must not wave through.
        failures.append(f"{label}:batched")
        print(f"  {label} batched: {base:,.0f} -> missing acc/s"
              f"  <-- REGRESSION")
        return
    ratio = cur / base if base else float("inf")
    marker = ""
    if ratio < 1 - threshold:
        failures.append(f"{label}:batched")
        marker = "  <-- REGRESSION"
    print(f"  {label} batched: {base:,.0f} -> {cur:,.0f} acc/s "
          f"({ratio:.2f}x){marker}")


def check_tails(label, base_cell, cur_cell, threshold, failures):
    """Gate the deterministic latency tails of one matched cell."""
    for field in TAIL_FIELDS:
        base = base_cell["tails"].get(field)
        cur = cur_cell["tails"].get(field)
        if base is None:
            continue  # pre-v3 baseline or overflow: nothing to gate
        if cur is None:
            # current histogram overflowed where the baseline did not —
            # that IS a tail blow-up, not missing data.
            failures.append(f"{label}:{field}")
            print(f"  {label} {field}: {base:,.0f} -> overflow cyc"
                  f"  <-- TAIL REGRESSION")
            continue
        ratio = cur / base if base else float("inf")
        marker = ""
        if ratio > 1 + threshold:
            failures.append(f"{label}:{field}")
            marker = "  <-- TAIL REGRESSION"
        print(f"  {label} {field}: {base:,.0f} -> {cur:,.0f} cyc "
              f"({ratio:.2f}x){marker}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        metavar="FRACTION",
                        help="maximum tolerated throughput drop "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--tail-threshold", type=float, default=0.10,
                        metavar="FRACTION",
                        help="maximum tolerated p95/p99 request-latency "
                             "growth (default 0.10 = 10%%; the tails are "
                             "deterministic, so this can be tight)")
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be in (0, 1)")
    if args.tail_threshold <= 0:
        parser.error("--tail-threshold must be positive")

    (base_cells, base_total, _, _,
     base_service, base_curve) = load_cells(args.baseline)
    (cur_cells, cur_total, cur_measured_tails,
     cur_speedups, cur_service, cur_curve) = load_cells(args.current)
    if not cur_measured_tails:
        print("  note: current run measured no latency tails "
              "(quick run with span sampling off) — tail gate skipped")

    failures = []
    for key in sorted(base_cells):
        label = f"{key[0]}/{key[1]}"
        if key not in cur_cells:
            print(f"  note: cell {label} missing from current run")
            continue
        base = base_cells[key]["accesses_per_sec"]
        cur = cur_cells[key]["accesses_per_sec"]
        ratio = cur / base if base else float("inf")
        marker = ""
        if ratio < 1 - args.threshold:
            failures.append(label)
            marker = "  <-- REGRESSION"
        print(f"  {label}: {base:,.0f} -> {cur:,.0f} acc/s "
              f"({ratio:.2f}x){marker}")
        check_batched(label, base_cells[key]["batched_accesses_per_sec"],
                      cur_cells[key]["batched_accesses_per_sec"],
                      args.threshold, failures)
        if cur_measured_tails:
            check_tails(label, base_cells[key], cur_cells[key],
                        args.tail_threshold, failures)
    for key in sorted(set(cur_cells) - set(base_cells)):
        print(f"  note: new cell {key[0]}/{key[1]} "
              f"({cur_cells[key]['accesses_per_sec']:,.0f} acc/s, "
              "no baseline)")

    base_scalar = base_total["accesses_per_sec"]
    cur_scalar = cur_total["accesses_per_sec"]
    total_ratio = cur_scalar / base_scalar if base_scalar else float("inf")
    marker = ""
    if total_ratio < 1 - args.threshold:
        failures.append("total")
        marker = "  <-- REGRESSION"
    print(f"  total: {base_scalar:,.0f} -> {cur_scalar:,.0f} acc/s "
          f"({total_ratio:.2f}x){marker}")
    check_batched("total", base_total["batched_accesses_per_sec"],
                  cur_total["batched_accesses_per_sec"],
                  args.threshold, failures)
    check_mshr_dominance(cur_speedups, failures)
    check_service(base_service, cur_service, args.threshold, failures)
    check_curve(base_curve, cur_curve, args.threshold, failures)

    if failures:
        print(f"FAIL: regression past thresholds "
              f"(throughput {args.threshold:.0%}, "
              f"tails {args.tail_threshold:.0%}) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"OK: throughput within {args.threshold:.0%} and tails within "
          f"{args.tail_threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
