"""Dev-only: min-of-N scalar-vs-batched timing of the quick bench cells.

Not part of the harness — `repro bench` is the recorded measurement;
this exists so perf work on the batch engine has a low-noise readout
on the single-CPU CI box (min-of-N discards scheduler preemption).
"""
import dataclasses
import gc
import json
import sys
import time

sys.path.insert(0, "src")

from repro.experiments.runner import run_one
from repro.sim.config import default_config

REPS = int(sys.argv[1]) if len(sys.argv) > 1 else 3
base = default_config()
cfgb = dataclasses.replace(base, batch_window=256)
run_one("silc", "mcf", cfgb, misses_per_core=200, seed=99)  # warm imports

tot_s = tot_b = 0.0
# mirror the quick-bench variants: nonm/silc at the default (MLP-sized)
# MSHR file, plus compat-mode silc (mshr_entries=0) as the reference
for name in ["nonm", "silc", "silc-compat"]:
    sch = "nonm" if name == "nonm" else "silc"
    cs = base if "compat" not in name else dataclasses.replace(
        base, mshr_entries=0)
    cb = cfgb if "compat" not in name else dataclasses.replace(
        cfgb, mshr_entries=0)
    best_s = best_b = float("inf")
    ident = True
    for _ in range(REPS):
        gc.collect()
        t0 = time.perf_counter()
        rs = run_one(sch, "mcf", cs, misses_per_core=1500, seed=1234)
        t1 = time.perf_counter()
        gc.collect()
        t2 = time.perf_counter()
        rb = run_one(sch, "mcf", cb, misses_per_core=1500, seed=1234)
        t3 = time.perf_counter()
        best_s = min(best_s, t1 - t0)
        best_b = min(best_b, t3 - t2)
        ident &= (json.dumps(rs.to_dict(), sort_keys=True)
                  == json.dumps(rb.to_dict(), sort_keys=True))
    tot_s += best_s
    tot_b += best_b
    print(f"{name:12s} scalar {best_s:.3f}s batched {best_b:.3f}s "
          f"speedup {best_s / best_b:.2f}x identical={ident}")
print(f"total {tot_s:.3f}/{tot_b:.3f} = {tot_s / tot_b:.2f}x")
