#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a fresh simulation grid.

Usage: python scripts/generate_experiments_report.py [misses_per_core]
"""

import sys
from pathlib import Path

from repro.experiments.report_writer import write_experiments_report


def main() -> None:
    misses = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    target = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    write_experiments_report(target, misses_per_core=misses,
                             fig9_misses=max(1500, misses // 2))
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
