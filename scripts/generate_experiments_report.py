#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a fresh simulation grid.

Usage: python scripts/generate_experiments_report.py [misses_per_core] [jobs]

Cells fan out over ``jobs`` worker processes (default: all CPUs) and
are memoised in ``results/cache``, so an interrupted regeneration
resumes where it stopped.
"""

import os
import sys
from pathlib import Path

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.report_writer import print_progress, write_experiments_report


def main() -> None:
    misses = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else (os.cpu_count() or 1)
    root = Path(__file__).resolve().parents[1]
    target = root / "EXPERIMENTS.md"
    executor = ExperimentExecutor(jobs=jobs,
                                  cache_dir=str(root / "results" / "cache"),
                                  on_progress=print_progress)
    write_experiments_report(target, misses_per_core=misses,
                             fig9_misses=max(1500, misses // 2),
                             executor=executor)
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
