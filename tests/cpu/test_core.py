"""Tests for the trace-driven core model."""

from repro.cache.hierarchy import HierarchyOutcome
from repro.cpu.core import DIRTY_FIFO_DEPTH, Core
from repro.sim.engine import Engine
from repro.workloads.trace import MemoryAccess


class FakeMemory:
    """Records misses; completes them after a fixed latency."""

    def __init__(self, engine, latency=100.0):
        self.engine = engine
        self.latency = latency
        self.misses = []
        self.writebacks = []

    def send_miss(self, paddr, is_write, pc, on_done):
        self.misses.append((self.engine.now, paddr, is_write))
        self.engine.schedule(self.latency, on_done, self.engine.now + self.latency)

    def send_writeback(self, paddr):
        self.writebacks.append(paddr)


def trace(records):
    return iter([MemoryAccess(pc=1 << 40, vaddr=v, is_write=w, gap_instr=g)
                 for v, w, g in records])


def run_core(records, latency=100.0, max_outstanding=2, classify=None):
    engine = Engine()
    memory = FakeMemory(engine, latency)
    finished = []
    core = Core(engine, 0, trace(records), issue_width=4,
                max_outstanding=max_outstanding,
                translate=lambda v: v,
                send_miss=memory.send_miss,
                send_writeback=memory.send_writeback,
                classify=classify,
                on_finished=finished.append)
    core.start()
    engine.run()
    assert finished, "core never finished"
    return engine, memory, core


def test_core_replays_whole_trace():
    records = [(i * 64, False, 10) for i in range(20)]
    engine, memory, core = run_core(records)
    assert len(memory.misses) == 20
    assert core.stats.misses_retired == 20
    assert core.stats.instructions == 200


def test_compute_gap_spaces_issues():
    # single outstanding slot: miss 2 issues gap/width after miss 1 returns
    records = [(0, False, 40), (64, False, 40)]
    engine, memory, core = run_core(records, latency=100, max_outstanding=1)
    t1, t2 = memory.misses[0][0], memory.misses[1][0]
    # miss 1 at 10 (40 instr / width 4); returns at 110; miss 2 at 120
    assert t1 == 10
    assert t2 == 120


def test_mlp_overlaps_misses():
    records = [(i * 64, False, 4) for i in range(8)]
    __, mem_wide, core_wide = run_core(records, latency=1000, max_outstanding=8)
    __, mem_narrow, core_narrow = run_core(records, latency=1000, max_outstanding=1)
    assert core_wide.stats.finish_time < core_narrow.stats.finish_time / 4


def test_stall_counted_when_window_full():
    records = [(i * 64, False, 1) for i in range(10)]
    __, __, core = run_core(records, latency=500, max_outstanding=2)
    assert core.stats.stall_events > 0


def test_dirty_fifo_generates_writebacks():
    records = [(i * 64, True, 1) for i in range(DIRTY_FIFO_DEPTH + 10)]
    __, memory, __ = run_core(records, latency=10, max_outstanding=4)
    # all dirty lines eventually written back (overflow + final drain)
    assert len(memory.writebacks) == DIRTY_FIFO_DEPTH + 10


def test_classify_hits_do_not_reach_memory():
    outcomes = iter([HierarchyOutcome(False, 4), HierarchyOutcome(True, 15)])

    def classify(paddr, is_write, core_id):
        return next(outcomes)

    records = [(0, False, 10), (64, False, 10)]
    __, memory, core = run_core(records, classify=classify)
    assert len(memory.misses) == 1
    assert core.stats.accesses == 2


def test_classify_writebacks_forwarded():
    def classify(paddr, is_write, core_id):
        return HierarchyOutcome(True, 15, writeback_addr=12345 - 12345 % 64)

    records = [(0, False, 10)]
    __, memory, __ = run_core(records, classify=classify)
    assert memory.writebacks == [12345 - 12345 % 64]


def test_ipc_accounting():
    records = [(0, False, 400)]
    __, __, core = run_core(records, latency=100, max_outstanding=1)
    assert core.stats.instructions == 400
    assert 0 < core.stats.ipc() <= 4.0


def test_empty_trace_finishes_immediately():
    engine = Engine()
    memory = FakeMemory(engine)
    finished = []
    core = Core(engine, 0, iter([]), issue_width=4, max_outstanding=2,
                translate=lambda v: v, send_miss=memory.send_miss,
                send_writeback=memory.send_writeback,
                on_finished=finished.append)
    core.start()
    engine.run()
    assert finished and core.finished
    assert core.stats.misses_issued == 0
