"""Tests for the flat-memory controller."""

import pytest

from repro.cpu.controller import FlatMemoryController
from repro.dram.device import MemoryDevice
from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import default_config
from repro.sim.engine import Engine
from repro.xmem.address import AddressSpace

NM = 64 * 2048
FM = 256 * 2048


class ScriptedScheme(MemoryScheme):
    """Returns pre-programmed plans for testing the executor."""

    name = "scripted"

    def __init__(self, space, plans):
        super().__init__(space)
        self._plans = iter(plans)
        self.epoch_calls = 0
        self._epoch_period = None
        self._epoch_result = ([], 0.0)

    def access(self, paddr, is_write, pc=0):
        plan = next(self._plans)
        self.record_plan(plan)
        return plan

    def locate(self, paddr):
        if self.space.is_nm(paddr):
            return Level.NM, paddr
        return Level.FM, paddr - self.space.nm_bytes

    def epoch_period_cycles(self):
        return self._epoch_period

    def epoch(self):
        self.epoch_calls += 1
        return self._epoch_result

    def check_invariants(self):
        pass  # no metadata to cross-check


def build(plans, epoch_period=None, epoch_result=([], 0.0)):
    engine = Engine()
    config = default_config()
    space = AddressSpace(NM, FM)
    nm = MemoryDevice(engine, config.nm_timings, NM + 64 * 32, metadata_base=NM)
    fm = MemoryDevice(engine, config.fm_timings, FM)
    scheme = ScriptedScheme(space, plans)
    scheme._epoch_period = epoch_period
    scheme._epoch_result = epoch_result
    controller = FlatMemoryController(engine, scheme, nm, fm)
    return engine, controller, nm, fm


def nm_read(addr=0, size=64):
    return Op(Level.NM, addr, size, False)


def fm_read(addr=0, size=64):
    return Op(Level.FM, addr, size, False)


def test_single_stage_plan_completes():
    plan = AccessPlan(serviced_from=Level.NM, stages=[[nm_read()]])
    engine, controller, nm, fm = build([plan])
    done = []
    controller.handle_miss(0, False, 0, done.append)
    engine.run()
    assert len(done) == 1
    assert controller.stats.misses_completed == 1
    assert nm.stats().reads == 1


def test_stages_execute_serially():
    plan = AccessPlan(serviced_from=Level.FM,
                      stages=[[nm_read()], [fm_read()]])
    engine, controller, nm, fm = build([plan])
    done = []
    controller.handle_miss(NM, False, 0, done.append)
    engine.run()
    serial = done[0]

    plan2 = AccessPlan(serviced_from=Level.FM,
                       stages=[[nm_read(), fm_read()]])
    engine2, controller2, __, __ = build([plan2])
    done2 = []
    controller2.handle_miss(NM, False, 0, done2.append)
    engine2.run()
    parallel = done2[0]
    assert serial > parallel


def test_background_ops_do_not_block_completion():
    plan = AccessPlan(serviced_from=Level.NM, stages=[[nm_read()]],
                      background=[Op(Level.FM, 0, 2048, True)] * 4)
    engine, controller, nm, fm = build([plan])
    done = []
    controller.handle_miss(0, False, 0, done.append)
    engine.run()
    # completion time unaffected by the 8KB of background traffic
    plan_only = AccessPlan(serviced_from=Level.NM, stages=[[nm_read()]])
    engine2, controller2, __, __ = build([plan_only])
    done2 = []
    controller2.handle_miss(0, False, 0, done2.append)
    engine2.run()
    assert done[0] == done2[0]
    assert fm.stats().bytes_written == 4 * 2048


def test_demand_vs_background_accounting():
    plan = AccessPlan(serviced_from=Level.NM, stages=[[nm_read(size=64)]],
                      background=[fm_read(size=64)])
    engine, controller, __, __ = build([plan])
    controller.handle_miss(0, False, 0, lambda t: None)
    engine.run()
    assert controller.stats.demand_nm_bytes == 64
    assert controller.stats.background_fm_bytes == 64
    assert controller.stats.nm_demand_fraction == 1.0


def test_empty_stage_skipped():
    plan = AccessPlan(serviced_from=Level.NM, stages=[[], [nm_read()]])
    engine, controller, __, __ = build([plan])
    done = []
    controller.handle_miss(0, False, 0, done.append)
    engine.run()
    assert done


def test_writeback_uses_locate():
    engine, controller, nm, fm = build([])
    controller.handle_writeback(NM + 128)
    engine.run()
    assert fm.stats().bytes_written == 64
    assert controller.stats.writebacks == 1


def test_epoch_scheduling_and_stall():
    plan = AccessPlan(serviced_from=Level.NM, stages=[[nm_read()]])
    engine, controller, __, __ = build(
        [plan], epoch_period=1000.0, epoch_result=([], 500.0))
    # let one epoch fire
    engine.run(until=1100)
    assert controller.scheme.epoch_calls == 1
    # a miss arriving during the stall is delayed to its end
    done = []
    controller.handle_miss(0, False, 0, done.append)
    engine.run(until=1800)
    assert done and done[0] >= 1500.0
    assert controller.stats.epoch_stall_cycles == 500.0


def test_mean_miss_latency():
    plans = [AccessPlan(serviced_from=Level.NM, stages=[[nm_read()]])
             for _ in range(3)]
    engine, controller, __, __ = build(plans)
    for i in range(3):
        controller.handle_miss(0, False, 0, lambda t: None)
    engine.run()
    assert controller.stats.mean_miss_latency > 0
