"""MSHR-file behaviour: coalescing, structural stalls, writeback bypass.

The system-level compatibility guarantee (``mshr_entries = 0`` is
byte-identical to the pre-MSHR design) is covered by the golden-result
tests; these exercise the MSHR file itself against a scripted scheme.
"""

import dataclasses

import pytest

from repro.cpu.controller import FlatMemoryController
from repro.cpu.mshr import COMPLETE, MSHRFile
from repro.dram.device import MemoryDevice
from repro.experiments.runner import run_one
from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import default_config
from repro.sim.engine import Engine
from repro.xmem.address import AddressSpace

NM = 64 * 2048
FM = 256 * 2048


class CountingScheme(MemoryScheme):
    """Serves every access with one FM read; counts consultations."""

    name = "counting"

    def __init__(self, space):
        super().__init__(space)
        self.accesses = 0

    def access(self, paddr, is_write, pc=0):
        self.accesses += 1
        plan = AccessPlan.single(Level.FM, Op(Level.FM, 0, 64, False))
        self.record_plan(plan)
        return plan

    def locate(self, paddr):
        if self.space.is_nm(paddr):
            return Level.NM, paddr
        return Level.FM, paddr - self.space.nm_bytes

    def check_invariants(self):
        pass


def build(entries):
    engine = Engine()
    config = default_config()
    space = AddressSpace(NM, FM)
    nm = MemoryDevice(engine, config.nm_timings, NM + 64 * 32, metadata_base=NM)
    fm = MemoryDevice(engine, config.fm_timings, FM)
    scheme = CountingScheme(space)
    controller = FlatMemoryController(engine, scheme, nm, fm)
    mshr = MSHRFile(engine, entries, controller)
    return engine, mshr, controller, scheme, nm, fm


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
def test_same_subblock_misses_coalesce_and_retire_together():
    engine, mshr, controller, scheme, __, __ = build(entries=8)
    done_a, done_b = [], []
    mshr.issue(0, False, 0, done_a.append)
    mshr.issue(8, False, 0, done_b.append)  # same 64 B subblock
    assert mshr.stats.allocations == 1
    assert mshr.stats.coalesced == 1
    assert scheme.accesses == 1  # the scheme was consulted once
    engine.run()
    # both waiters woken by the one transaction, at the same instant
    assert done_a and done_b and done_a[0] == done_b[0]
    assert controller.stats.misses_completed == 1
    assert mshr.occupancy == 0


def test_different_subblocks_allocate_separate_entries():
    engine, mshr, __, scheme, __, __ = build(entries=8)
    mshr.issue(0, False, 0, lambda t: None)
    mshr.issue(64, False, 0, lambda t: None)
    assert mshr.stats.allocations == 2
    assert mshr.stats.coalesced == 0
    assert scheme.accesses == 2
    engine.run()
    assert mshr.occupancy == 0


# ----------------------------------------------------------------------
# structural stalls
# ----------------------------------------------------------------------
def test_full_mshr_queues_fifo_and_counts_structural_stalls():
    engine, mshr, controller, scheme, __, __ = build(entries=1)
    done_a, done_b = [], []
    mshr.issue(0, False, 0, done_a.append)
    mshr.issue(64, False, 0, done_b.append)  # file full: queues
    assert mshr.stats.structural_stalls == 1
    assert mshr.pending == 1
    assert scheme.accesses == 1  # B not dispatched yet
    engine.run()
    assert done_a and done_b
    assert done_b[0] > done_a[0]  # B admitted only after A freed its entry
    assert mshr.stats.allocations == 2
    assert mshr.stats.peak_pending == 1
    assert controller.stats.misses_completed == 2


def test_queued_read_coalesces_without_burning_stall_or_entry():
    """Satellite-1 regression: a read whose subblock already has a
    *queued* read joins it in the pending queue — it must not be charged
    a structural stall, must not take a queue slot, and must not
    allocate a second entry when the queue drains (the old drain path
    charged the stall at arrival and only coalesced if the line happened
    to be in flight at ``popleft`` time)."""
    engine, mshr, __, scheme, __, __ = build(entries=2)
    done = []
    mshr.issue(0, False, 0, done.append)
    mshr.issue(64, False, 0, done.append)
    mshr.issue(128, False, 0, done.append)      # queues (file full)
    mshr.issue(128 + 8, False, 0, done.append)  # joins the queued read
    assert mshr.stats.structural_stalls == 1
    assert mshr.pending == 1
    assert mshr.stats.peak_pending == 1
    assert mshr.stats.coalesced == 1
    engine.run()
    # one drained admission serves both waiters with one scheme consult
    assert len(done) == 4
    assert scheme.accesses == 3
    assert mshr.stats.allocations == 3
    assert done[-1] == done[-2]  # coalesced pair retires together


def test_drained_miss_keeps_original_issue_time():
    """Satellite-1 regression: a miss admitted from the pending queue
    keeps its arrival time as ``issue_time`` — the queue wait is part of
    the latency the core experienced, not erased at admission."""
    engine, mshr, controller, __, __, __ = build(entries=1)
    admitted = []
    real_handle = controller.handle_request

    def spy(txn):
        admitted.append((engine.now, txn.issue_time, txn.paddr))
        real_handle(txn)

    controller.handle_request = spy
    mshr.issue(0, False, 0, lambda t: None)
    mshr.issue(64, False, 0, lambda t: None)  # queues at t=0
    engine.run()
    (___, __, _a), (admit_t, issue_t, paddr) = admitted
    assert paddr == 64
    assert admit_t > 0.0    # admitted only after the first entry freed
    assert issue_t == 0.0   # but its issue clock started at arrival


# ----------------------------------------------------------------------
# read-only coalescing (the silc-mshr32 postmortem policy)
# ----------------------------------------------------------------------
def test_write_miss_does_not_coalesce_onto_inflight_read():
    """Postmortem regression: a store to a subblock with an in-flight
    read fill takes its own entry and its own scheme consult — welding
    it to the read's fetch would hide the store from the scheme and
    serialize an independent request."""
    engine, mshr, controller, scheme, __, __ = build(entries=8)
    mshr.issue(0, False, 0, lambda t: None)
    mshr.issue(8, True, 0, lambda t: None)  # same subblock, but a write
    assert mshr.stats.allocations == 2
    assert mshr.stats.coalesced == 0
    assert scheme.accesses == 2
    engine.run()
    assert controller.stats.misses_completed == 2
    assert mshr.occupancy == 0


def test_read_miss_does_not_coalesce_onto_inflight_write():
    """Postmortem regression: nothing coalesces onto a write — a read
    chained to a write-path transaction inherits whatever slow service
    the write drew, where a fresh consult may resolve near-memory."""
    engine, mshr, __, scheme, __, __ = build(entries=8)
    mshr.issue(0, True, 0, lambda t: None)
    mshr.issue(8, False, 0, lambda t: None)  # read follows the write
    assert mshr.stats.allocations == 2
    assert mshr.stats.coalesced == 0
    assert scheme.accesses == 2
    engine.run()
    assert mshr.occupancy == 0


def test_queued_write_is_not_a_coalescing_target():
    """Read-only coalescing applies in the pending queue too: a read
    behind a *queued write* to the same subblock queues separately."""
    engine, mshr, __, scheme, __, __ = build(entries=1)
    mshr.issue(0, False, 0, lambda t: None)
    mshr.issue(64, True, 0, lambda t: None)   # queues (file full)
    mshr.issue(64 + 8, False, 0, lambda t: None)  # may not join the write
    assert mshr.stats.structural_stalls == 2
    assert mshr.pending == 2
    assert mshr.stats.coalesced == 0
    engine.run()
    assert mshr.stats.allocations == 3
    assert scheme.accesses == 3


def test_structural_stall_distinct_from_rob_stall():
    """The MSHR's structural stalls and the cores' full-ROB stalls are
    separate counters, surfaced through separate result fields."""
    config = dataclasses.replace(default_config(scale=0.25), mshr_entries=1)
    result = run_one("silc", "mcf", config, misses_per_core=150, seed=11)
    assert "mshr_structural_stalls" in result.extras
    assert "mshr_allocations" in result.extras
    assert result.extras["mshr_allocations"] > 0
    # ROB stalls live in the core stats, untouched by the MSHR counters
    assert hasattr(result.core_stats[0], "stall_events")
    # compat run (explicit mshr_entries=0, the escape hatch from the
    # nonzero default): no MSHR, so no mshr_* keys at all
    compat = run_one(
        "silc", "mcf",
        dataclasses.replace(default_config(scale=0.25), mshr_entries=0),
        misses_per_core=150, seed=11)
    assert not any(k.startswith("mshr_") for k in compat.extras)


# ----------------------------------------------------------------------
# writebacks
# ----------------------------------------------------------------------
def test_writebacks_bypass_a_full_mshr():
    """Dirty evictions never enter the MSHR: they issue to the devices
    immediately even when the file is full and demand misses queue."""
    engine, mshr, controller, __, __, fm = build(entries=1)
    issued = []
    real_access = fm.access

    def spy(addr, size, is_write, priority, on_complete=None):
        issued.append((engine.now, is_write))
        real_access(addr, size, is_write, priority, on_complete)

    fm.access = spy
    mshr.issue(0, False, 0, lambda t: None)
    mshr.issue(64, False, 0, lambda t: None)  # file full: queues
    controller.handle_writeback(NM + 128)     # straight through
    # the writeback's FM write was submitted at t=0, before the queued
    # demand miss was even admitted
    assert (0.0, True) in issued
    assert mshr.pending == 1
    engine.run()
    assert controller.stats.writebacks == 1
    assert controller.stats.misses_completed == 2


def test_writeback_order_preserved_under_coalescing():
    """Coalescing a second miss onto an in-flight transaction must not
    reorder an interleaved writeback: device submission order stays
    miss-A, writeback, (no new op for coalesced miss-B)."""
    engine, mshr, controller, __, __, fm = build(entries=8)
    order = []
    real_access = fm.access

    def spy(addr, size, is_write, priority, on_complete=None):
        order.append("write" if is_write else "read")
        real_access(addr, size, is_write, priority, on_complete)

    fm.access = spy
    mshr.issue(0, False, 0, lambda t: None)
    controller.handle_writeback(NM + 128)
    mshr.issue(8, False, 0, lambda t: None)  # coalesces onto the first
    assert order == ["read", "write"]
    engine.run()
    assert mshr.stats.coalesced == 1
    assert controller.stats.writebacks == 1


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def test_mshr_needs_at_least_one_entry():
    engine, __, controller, __, __, __ = build(entries=1)
    with pytest.raises(ValueError):
        MSHRFile(engine, 0, controller)


def test_config_rejects_negative_entry_count():
    with pytest.raises(ValueError):
        dataclasses.replace(default_config(), mshr_entries=-1)
