"""Tests for the perf-regression bench harness (``repro bench``)."""

import dataclasses
import json

import pytest

from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    BENCH_SEED,
    QUICK_VARIANTS,
    QUICK_WORKLOADS,
    run_bench,
    write_bench,
)
from repro.sim.config import default_config


@pytest.fixture(scope="module")
def quick_payload():
    # small scale keeps the suite fast; the bench definition (schemes,
    # workloads, misses, seed) stays pinned regardless
    return run_bench(quick=True, config=default_config(scale=0.25),
                     today="2026-01-02")


def test_payload_schema_and_pinning(quick_payload):
    assert quick_payload["schema"] == BENCH_SCHEMA_VERSION
    assert quick_payload["seed"] == BENCH_SEED
    assert quick_payload["quick"] is True
    assert quick_payload["date"] == "2026-01-02"
    assert {"python", "implementation", "machine",
            "system"} <= set(quick_payload["platform"])


def test_payload_has_one_cell_per_pair(quick_payload):
    cells = quick_payload["cells"]
    pairs = {(c["key"], c["workload"]) for c in cells}
    assert pairs == {(key, w)
                     for key, _s, _m in QUICK_VARIANTS
                     for w in QUICK_WORKLOADS}
    for cell in cells:
        assert cell["wall_seconds"] >= 0.0
        assert cell["accesses"] > 0
        assert cell["elapsed_cycles"] > 0


def test_mshr_variant_pins_scheme_and_entries(quick_payload):
    """Schema v5: the headline cells run the default MSHR pipeline and
    the compat cell pins the pre-MSHR front door at an explicit 0 (an
    ``if mshr_entries`` guard would silently inherit the default)."""
    variants = {c["key"]: c for c in quick_payload["cells"]}
    compat_cell = variants["silc-compat"]
    assert compat_cell["scheme"] == "silc"
    assert compat_cell["mshr_entries"] == 0
    assert variants["silc"]["mshr_entries"] == 128
    assert variants["nonm"]["mshr_entries"] == 128


def test_quick_cells_skip_latency_tails(quick_payload):
    """Schema v4: quick runs with span sampling off in the config skip
    the untimed tail pass entirely — the tails are reported as None,
    not measured behind the caller's back."""
    for cell in quick_payload["cells"]:
        assert cell["p95_latency"] is None
        assert cell["p99_latency"] is None


def _shrink_quick_suite(monkeypatch):
    """One tiny cell so harness-logic tests stay fast (the pinned bench
    definition is irrelevant to what they assert)."""
    import repro.experiments.bench as bench
    import repro.service.bench as service_bench

    monkeypatch.setattr(bench, "QUICK_VARIANTS", [("nonm", "nonm", 0)])
    monkeypatch.setattr(bench, "QUICK_WORKLOADS", ["mcf"])
    monkeypatch.setattr(bench, "QUICK_MISSES", 150)
    # the v6 service phase has its own tests; stub it out here so these
    # don't pay for a process pool they make no assertion about
    monkeypatch.setattr(service_bench, "run_service_bench",
                        lambda quick=False, jobs=None: {"stubbed": True})


def test_quick_run_makes_no_tail_pass(monkeypatch):
    """The fixed bug: --quick used to re-run every cell span-sampled
    even with span_sample_rate=0 inherited from the config.  A quick
    cell must now run exactly twice (scalar + batched twin) plus one
    run per closed-form curve window — never a span-sampled pass."""
    import repro.experiments.bench as bench
    import repro.experiments.runner as runner

    _shrink_quick_suite(monkeypatch)
    calls = []
    real_run_one = runner.run_one

    def counting(scheme, workload, config, **kwargs):
        calls.append(config.span_sample_rate)
        return real_run_one(scheme, workload, config, **kwargs)

    monkeypatch.setattr(runner, "run_one", counting)
    run_bench(quick=True, config=default_config(scale=0.25))
    assert len(calls) == 2 + len(bench.BENCH_CURVE_WINDOWS)
    assert all(rate == 0 for rate in calls)


def test_quick_run_measures_tails_when_spans_enabled(monkeypatch):
    """Opting in via the config (span_sample_rate > 0) restores the
    tail pass on quick runs."""
    _shrink_quick_suite(monkeypatch)
    config = dataclasses.replace(
        default_config(scale=0.25), telemetry_window=50_000,
        span_sample_rate=1)
    payload = run_bench(quick=True, config=config)
    (cell,) = payload["cells"]
    assert cell["p95_latency"] > 0
    assert cell["p99_latency"] >= cell["p95_latency"]


def test_payload_throughput_totals(quick_payload):
    totals = quick_payload["throughput"]
    cells = quick_payload["cells"]
    assert totals["total_accesses"] == sum(c["accesses"] for c in cells)
    assert totals["total_wall_seconds"] == pytest.approx(
        sum(c["wall_seconds"] for c in cells))
    assert totals["batched_wall_seconds"] == pytest.approx(
        sum(c["batched_wall_seconds"] for c in cells))
    assert totals["batched_accesses_per_sec"] > 0
    assert totals["batch_speedup"] > 0


def test_cells_carry_batched_twin(quick_payload):
    """Schema v4: every cell times a digest-checked batch-engine twin."""
    assert quick_payload["batch_window"] > 0
    for cell in quick_payload["cells"]:
        assert cell["batched_wall_seconds"] > 0
        assert cell["batched_accesses_per_sec"] > 0
        assert cell["batch_speedup"] == pytest.approx(
            cell["wall_seconds"] / cell["batched_wall_seconds"], abs=0.01)


def test_bench_refuses_diverged_batch_engine(monkeypatch):
    """The speedup claim is gated on bit-identical results: when the
    batched twin's RunResult differs from the scalar run's, the bench
    raises instead of reporting a throughput for a buggy engine."""
    import repro.experiments.runner as runner

    _shrink_quick_suite(monkeypatch)

    class FakeResult:
        def __init__(self, cycles):
            self.elapsed_cycles = cycles
            self.access_rate = 1.0

        def to_dict(self):
            return {"elapsed_cycles": self.elapsed_cycles}

        def speedup_over(self, other):
            return other.elapsed_cycles / self.elapsed_cycles

    calls = []

    def fake_run_one(scheme, workload, config, **kwargs):
        calls.append(config.batch_window)
        # scalar run (batch_window == 0) and batched twin disagree
        return FakeResult(100.0 if config.batch_window == 0 else 99.0)

    monkeypatch.setattr(runner, "run_one", fake_run_one)
    with pytest.raises(AssertionError, match="diverged"):
        run_bench(quick=True, config=default_config(scale=0.25))
    assert calls == [0, 256]


def test_payload_batch_curve(quick_payload):
    """Schema v7: the closed-form speedup curve is swept over the
    pinned windows, anchored at the scalar point (w=0, speedup 1.0),
    with every point carrying a positive wall time."""
    from repro.experiments.bench import BENCH_CURVE_WINDOWS

    curve = quick_payload["batch_curve"]
    assert curve["workloads"] == QUICK_WORKLOADS
    assert curve["variants"] == [key for key, _, _ in QUICK_VARIANTS]
    points = {p["batch_window"]: p for p in curve["points"]}
    assert sorted(points) == sorted(BENCH_CURVE_WINDOWS)
    assert points[0]["speedup"] == 1.0
    for point in curve["points"]:
        assert point["wall_seconds"] > 0
        assert point["speedup"] > 0


def test_payload_figures_of_merit(quick_payload):
    speedups = quick_payload["figures_of_merit"]["speedup_over_nonm"]
    # every non-baseline variant has a per-workload speedup + geomean
    assert set(speedups) == {k for k, _s, _m in QUICK_VARIANTS} - {"nonm"}
    for per_wl in speedups.values():
        assert set(per_wl) == set(QUICK_WORKLOADS) | {"geomean"}
        for value in per_wl.values():
            assert value > 0


def test_payload_service_section(quick_payload):
    """Schema v6: the payload carries the sweep service under its
    pinned multi-tenant load, witnesses intact."""
    from repro.service.bench import (
        QUICK_CELLS_PER_TENANT,
        QUICK_POOL,
        QUICK_TENANTS,
        SERVICE_BENCH_SEED,
    )

    service = quick_payload["service"]
    assert service["seed"] == SERVICE_BENCH_SEED
    assert service["tenants"] == QUICK_TENANTS
    assert service["cells_per_tenant"] == QUICK_CELLS_PER_TENANT
    assert 0 < service["unique_cells"] <= QUICK_POOL
    assert service["total_cell_requests"] == \
        2 * QUICK_TENANTS * QUICK_CELLS_PER_TENANT
    # correctness witnesses the regression gate hard-fails on
    assert service["exactly_once"] is True
    assert service["max_executions_per_key"] == 1
    assert service["fanned_out"] is True
    assert service["conserved"] is True
    # throughput + dedup figures
    assert service["cold"]["cells_per_sec"] > 0
    assert service["hot"]["cells_per_sec"] > 0
    assert service["simulated"] == service["unique_cells"]
    assert 0 <= service["dedup_hit_rate"] <= 1
    # the hot phase is pure cache hits, so latency was sampled
    assert service["cache_hit_latency_ms"]["p50"] is not None
    assert service["cache_hit_latency_ms"]["p95"] >= \
        service["cache_hit_latency_ms"]["p50"]
    # the whole section must survive the canonical-JSON round trip
    assert json.loads(json.dumps(service, sort_keys=True)) == service


def test_write_bench_names_file_by_date(tmp_path, quick_payload):
    path = write_bench(quick_payload, out_dir=tmp_path)
    assert path.name == "BENCH_2026-01-02.json"
    data = json.loads(path.read_text())
    assert data == quick_payload


def test_write_bench_rerun_overwrites(tmp_path, quick_payload):
    write_bench(quick_payload, out_dir=tmp_path)
    changed = dict(quick_payload, schema=BENCH_SCHEMA_VERSION)
    path = write_bench(changed, out_dir=tmp_path)
    assert len(list(tmp_path.glob("BENCH_*.json"))) == 1
    assert json.loads(path.read_text()) == changed
