"""Tests for the perf-regression bench harness (``repro bench``)."""

import dataclasses
import json

import pytest

from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    BENCH_SEED,
    QUICK_VARIANTS,
    QUICK_WORKLOADS,
    run_bench,
    write_bench,
)
from repro.sim.config import default_config


@pytest.fixture(scope="module")
def quick_payload():
    # small scale keeps the suite fast; the bench definition (schemes,
    # workloads, misses, seed) stays pinned regardless
    return run_bench(quick=True, config=default_config(scale=0.25),
                     today="2026-01-02")


def test_payload_schema_and_pinning(quick_payload):
    assert quick_payload["schema"] == BENCH_SCHEMA_VERSION
    assert quick_payload["seed"] == BENCH_SEED
    assert quick_payload["quick"] is True
    assert quick_payload["date"] == "2026-01-02"
    assert {"python", "implementation", "machine",
            "system"} <= set(quick_payload["platform"])


def test_payload_has_one_cell_per_pair(quick_payload):
    cells = quick_payload["cells"]
    pairs = {(c["key"], c["workload"]) for c in cells}
    assert pairs == {(key, w)
                     for key, _s, _m in QUICK_VARIANTS
                     for w in QUICK_WORKLOADS}
    for cell in cells:
        assert cell["wall_seconds"] >= 0.0
        assert cell["accesses"] > 0
        assert cell["elapsed_cycles"] > 0


def test_mshr_variant_pins_scheme_and_entries(quick_payload):
    variants = {c["key"]: c for c in quick_payload["cells"]}
    mshr_cell = variants["silc-mshr32"]
    assert mshr_cell["scheme"] == "silc"
    assert mshr_cell["mshr_entries"] == 32
    assert variants["silc"]["mshr_entries"] == 0


def test_cells_carry_latency_tails(quick_payload):
    """Schema v3: every cell reports deterministic p95/p99 request
    latencies from the untimed span-sampled tail run."""
    for cell in quick_payload["cells"]:
        assert cell["p95_latency"] > 0
        assert cell["p99_latency"] >= cell["p95_latency"]


def test_payload_throughput_totals(quick_payload):
    totals = quick_payload["throughput"]
    cells = quick_payload["cells"]
    assert totals["total_accesses"] == sum(c["accesses"] for c in cells)
    assert totals["total_wall_seconds"] == pytest.approx(
        sum(c["wall_seconds"] for c in cells))


def test_payload_figures_of_merit(quick_payload):
    speedups = quick_payload["figures_of_merit"]["speedup_over_nonm"]
    # every non-baseline variant has a per-workload speedup + geomean
    assert set(speedups) == {k for k, _s, _m in QUICK_VARIANTS} - {"nonm"}
    for per_wl in speedups.values():
        assert set(per_wl) == set(QUICK_WORKLOADS) | {"geomean"}
        for value in per_wl.values():
            assert value > 0


def test_write_bench_names_file_by_date(tmp_path, quick_payload):
    path = write_bench(quick_payload, out_dir=tmp_path)
    assert path.name == "BENCH_2026-01-02.json"
    data = json.loads(path.read_text())
    assert data == quick_payload


def test_write_bench_rerun_overwrites(tmp_path, quick_payload):
    write_bench(quick_payload, out_dir=tmp_path)
    changed = dict(quick_payload, schema=BENCH_SCHEMA_VERSION)
    path = write_bench(changed, out_dir=tmp_path)
    assert len(list(tmp_path.glob("BENCH_*.json"))) == 1
    assert json.loads(path.read_text()) == changed
