"""Tests for the parallel, resumable experiment executor."""

import dataclasses
import json

import pytest

from repro.cpu.system import RunResult
from repro.experiments.executor import (
    CACHE_SCHEMA_VERSION,
    Cell,
    ExecutorError,
    ExperimentExecutor,
    Progress,
    ResultCache,
)
from repro.experiments.runner import SuiteRunner, run_one
from repro.sim.config import default_config

MISSES = 200


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(scale=0.25), cores=2)


def make_cell(config, scheme="silc", workload="mcf", **overrides):
    kwargs = dict(misses_per_core=MISSES)
    kwargs.update(overrides)
    return Cell(scheme, workload, config, **kwargs)


# ---------------------------------------------------------------------------
# telemetry side artifacts
# ---------------------------------------------------------------------------
def test_telemetry_window_changes_cell_key(config):
    base = make_cell(config)
    enabled = make_cell(
        dataclasses.replace(config, telemetry_window=5000))
    assert enabled.key() != base.key()


def test_store_writes_and_discard_removes_side_artifacts(tmp_path, config):
    enabled = dataclasses.replace(config, telemetry_window=2000)
    result = run_one("silc", "mcf", enabled, misses_per_core=MISSES)
    assert result.telemetry is not None
    cache = ResultCache(tmp_path)
    cell = make_cell(enabled)
    key = cell.key()
    cache.store(key, result, cell)
    series = cache.telemetry_dir() / f"{key}.series.json"
    trace = cache.telemetry_dir() / f"{key}.trace.json"
    assert series.exists() and trace.exists()
    # side artifacts live in a subdirectory: the main store still counts
    # exactly one entry
    assert len(cache) == 1
    loaded = cache.load(key)
    assert loaded.telemetry == result.telemetry
    assert cache.discard(key)
    assert not series.exists() and not trace.exists()
    assert cache.load(key) is None


def test_clear_removes_side_artifacts(tmp_path, config):
    enabled = dataclasses.replace(config, telemetry_window=2000)
    result = run_one("silc", "mcf", enabled, misses_per_core=MISSES)
    cache = ResultCache(tmp_path)
    cell = make_cell(enabled)
    cache.store(cell.key(), result, cell)
    assert cache.clear() == 1
    assert not list(cache.telemetry_dir().glob("*.json"))


# ---------------------------------------------------------------------------
# cell keys
# ---------------------------------------------------------------------------
def test_cell_key_is_stable_and_content_addressed(config):
    a = make_cell(config)
    b = make_cell(config)
    assert a.key() == b.key()
    # a key is a hex SHA-256 digest
    assert len(a.key()) == 64
    int(a.key(), 16)


def test_cell_key_changes_with_any_input(config):
    base = make_cell(config)
    assert make_cell(config, scheme="cam").key() != base.key()
    assert make_cell(config, workload="milc").key() != base.key()
    assert make_cell(config, misses_per_core=MISSES + 1).key() != base.key()
    assert make_cell(config, seed=7).key() != base.key()
    assert make_cell(config, mode="reference").key() != base.key()
    assert make_cell(config, warmup_fraction=0.0).key() != base.key()
    varied = config.with_silcfm(hot_threshold=3)
    assert make_cell(varied).key() != base.key()
    # the MSHR default flip must not collide with cached compat cells:
    # mshr_entries is part of the config digest like every other knob
    compat = dataclasses.replace(config, mshr_entries=0)
    assert make_cell(compat).key() != base.key()


# ---------------------------------------------------------------------------
# RunResult JSON round-trip
# ---------------------------------------------------------------------------
def test_run_result_round_trips_through_json(config):
    result = run_one("silc", "mcf", config, misses_per_core=MISSES)
    clone = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert clone == result
    assert clone.speedup_over(result) == 1.0
    assert clone.nm_demand_fraction == result.nm_demand_fraction


# ---------------------------------------------------------------------------
# on-disk cache: hit / miss / force
# ---------------------------------------------------------------------------
def test_cache_miss_then_hit(tmp_path, config):
    cell = make_cell(config)
    executor = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    first = executor.run_cell(cell)
    assert executor.last_progress.simulated == 1

    resumed = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    second = resumed.run_cell(cell)
    assert resumed.last_progress.cache_hits == 1
    assert resumed.last_progress.simulated == 0
    assert second == first


def test_rerunning_a_sweep_hits_cache_with_zero_resimulated(tmp_path, config):
    """The acceptance scenario: a Fig. 7-style sweep run twice in a row
    must re-simulate nothing on the second run."""
    schemes = ["nonm", "rand", "silc"]
    workloads = ["mcf", "milc"]
    cells = [make_cell(config, scheme=s, workload=w)
             for s in schemes for w in workloads]

    first = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    before = first.run_cells(cells)
    assert first.last_progress.simulated == len(cells)

    second = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    after = second.run_cells(cells)
    assert second.last_progress.simulated == 0
    assert second.last_progress.cache_hits == len(cells)
    assert after == before


def test_force_invalidates_and_overwrites(tmp_path, config):
    cell = make_cell(config)
    cache = ResultCache(tmp_path)
    ExperimentExecutor(jobs=1, cache_dir=tmp_path).run_cell(cell)
    # poison the stored entry, then force: the poison must be replaced
    poisoned = json.loads(cache.path(cell.key()).read_text())
    poisoned["result"]["elapsed_cycles"] = -1.0
    cache.path(cell.key()).write_text(json.dumps(poisoned))

    forced = ExperimentExecutor(jobs=1, cache_dir=tmp_path, force=True)
    result = forced.run_cell(cell)
    assert forced.last_progress.simulated == 1
    assert result.elapsed_cycles > 0
    stored = json.loads(cache.path(cell.key()).read_text())
    assert stored["result"]["elapsed_cycles"] == result.elapsed_cycles


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path, config):
    cell = make_cell(config)
    cache = ResultCache(tmp_path)
    cache.root.mkdir(parents=True, exist_ok=True)
    cache.path(cell.key()).write_text("{not json")
    executor = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    result = executor.run_cell(cell)
    assert executor.last_progress.simulated == 1
    assert result.elapsed_cycles > 0


def test_stale_schema_version_is_a_miss(tmp_path, config):
    cell = make_cell(config)
    executor = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    executor.run_cell(cell)
    cache = ResultCache(tmp_path)
    data = json.loads(cache.path(cell.key()).read_text())
    data["schema"] = CACHE_SCHEMA_VERSION + 1
    cache.path(cell.key()).write_text(json.dumps(data))
    assert cache.load(cell.key()) is None


def test_cache_clear_and_len(tmp_path, config):
    cache = ResultCache(tmp_path)
    assert len(cache) == 0
    executor = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    executor.run_cells([make_cell(config, scheme=s) for s in ("nonm", "rand")])
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# worker-failure isolation
# ---------------------------------------------------------------------------
def test_poisoned_cell_does_not_kill_the_sweep(config):
    good = make_cell(config, scheme="nonm")
    bad = Cell("no-such-scheme", "mcf", config, misses_per_core=MISSES)
    executor = ExperimentExecutor(jobs=1)
    results = executor.run_cells([bad, good])
    assert good in results
    assert bad not in results
    assert len(executor.failures) == 1
    failure = executor.failures[0]
    assert failure.cell == bad
    assert "no-such-scheme" in failure.error
    assert "KeyError" in failure.error


def test_poisoned_cell_isolated_under_parallel_workers(config):
    cells = [Cell("no-such-scheme", "mcf", config, misses_per_core=MISSES),
             make_cell(config, scheme="nonm"),
             make_cell(config, scheme="rand")]
    executor = ExperimentExecutor(jobs=2)
    results = executor.run_cells(cells)
    assert len(results) == 2
    assert len(executor.failures) == 1
    assert executor.last_progress.failed == 1


def test_run_cell_raises_with_traceback_on_failure(config):
    executor = ExperimentExecutor(jobs=1)
    with pytest.raises(ExecutorError, match="no-such-scheme"):
        executor.run_cell(
            Cell("no-such-scheme", "mcf", config, misses_per_core=MISSES))


# ---------------------------------------------------------------------------
# determinism: jobs=1 and jobs=4 must be bit-identical
# ---------------------------------------------------------------------------
def test_jobs_1_and_jobs_4_produce_identical_results(config):
    cells = [make_cell(config, scheme=s, workload=w)
             for s in ("nonm", "silc", "cam")
             for w in ("mcf", "milc")]
    serial = ExperimentExecutor(jobs=1).run_cells(cells)
    parallel = ExperimentExecutor(jobs=4).run_cells(cells)
    assert set(serial) == set(parallel)
    for cell in cells:
        assert serial[cell] == parallel[cell], (
            f"({cell.scheme_key}, {cell.workload_name}) diverged")


def test_executor_results_match_direct_run_one(config):
    cell = make_cell(config, scheme="pom", workload="gcc")
    via_executor = ExperimentExecutor(jobs=2).run_cell(cell)
    direct = run_one("pom", "gcc", config, misses_per_core=MISSES)
    assert via_executor == direct


# ---------------------------------------------------------------------------
# batching / dedup / progress
# ---------------------------------------------------------------------------
def test_duplicate_cells_simulate_once(config):
    cell = make_cell(config, scheme="nonm")
    executor = ExperimentExecutor(jobs=1)
    results = executor.run_cells([cell, make_cell(config, scheme="nonm")])
    assert len(results) == 1
    assert executor.last_progress.total == 1


def test_progress_callback_sees_every_cell(config):
    ticks = []
    executor = ExperimentExecutor(jobs=1, on_progress=ticks.append)
    executor.run_cells([make_cell(config, scheme=s)
                        for s in ("nonm", "rand")])
    assert len(ticks) == 2
    assert ticks[-1].completed == 2
    assert ticks[-1].cells_per_second > 0
    assert "2/2 cells" in ticks[-1].render()


def test_progress_render_flags_failures():
    progress = Progress(total=3, completed=3, failed=2, cache_hits=1)
    text = progress.render()
    assert "FAILED" in text and "cached" in text


def test_progress_rate_is_zero_at_elapsed_zero(monkeypatch):
    """A completion landing within the clock's resolution of started_at
    must not explode into a billions-of-cells/s rate (the old 1e-9
    elapsed floor turned 3 cells into 3e9 cells/s)."""
    import time as time_mod

    frozen = time_mod.monotonic()
    monkeypatch.setattr(time_mod, "monotonic", lambda: frozen)
    progress = Progress(total=4, completed=3, started_at=frozen)
    assert progress.elapsed_seconds == 0.0
    assert progress.cells_per_second == 0.0
    assert "3/4 cells" in progress.render()


def test_progress_rate_zero_before_first_completion():
    progress = Progress(total=5)
    assert progress.cells_per_second == 0.0


def test_progress_render_empty_cell_set():
    """An empty sweep (every requested cell deduplicated away, or a
    figure invoked with zero workloads) renders without a bogus rate."""
    progress = Progress(total=0)
    assert progress.render() == "0/0 cells"
    assert progress.cells_per_second == 0.0
    snapshot = progress.as_dict()
    assert snapshot["total"] == 0
    assert snapshot["cells_per_second"] == 0.0


def test_progress_as_dict_is_json_round_trippable():
    progress = Progress(total=3, completed=2, cache_hits=1, simulated=1)
    snapshot = json.loads(json.dumps(progress.as_dict()))
    assert snapshot["completed"] == 2
    assert snapshot["cache_hits"] == 1
    assert snapshot["simulated"] == 1
    assert snapshot["elapsed_seconds"] >= 0.0


# ---------------------------------------------------------------------------
# wire round-trip (the sweep service ships cells as JSON)
# ---------------------------------------------------------------------------
def test_cell_wire_round_trip_preserves_key(config):
    cell = make_cell(config, scheme="pom", workload="gcc", seed=9)
    clone = Cell.from_dict(json.loads(json.dumps(cell.to_dict())))
    assert clone == cell
    assert clone.key() == cell.key()
    assert clone.config == config


def test_executor_core_is_shared_by_the_sync_front_end(tmp_path, config):
    """The CLI executor and the sweep service share ExecutorCore: a
    result remembered through one is visible to a core pointed at the
    same store."""
    from repro.experiments.executor import ExecutorCore

    cell = make_cell(config)
    executor = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    result = executor.run_cell(cell)
    core = ExecutorCore(cache_dir=tmp_path)
    assert core.lookup(cell.key()) == result
    # and vice versa: remember through the core, recall via the executor
    other = make_cell(config, scheme="nonm")
    core.remember(other.key(), result, other)
    resumed = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    assert resumed.run_cell(other) == result
    assert resumed.last_progress.cache_hits == 1


# ---------------------------------------------------------------------------
# SuiteRunner integration
# ---------------------------------------------------------------------------
def test_suite_runner_prefetch_matches_serial_results(config):
    serial = SuiteRunner(config, misses_per_core=MISSES)
    fanned = SuiteRunner(config, misses_per_core=MISSES,
                         executor=ExperimentExecutor(jobs=4))
    fanned.prefetch(["silc"], ["mcf"])
    assert fanned.speedup("silc", "mcf") == serial.speedup("silc", "mcf")


def test_suite_runner_rejects_unknown_scheme(config):
    runner = SuiteRunner(config, misses_per_core=MISSES)
    with pytest.raises(KeyError):
        runner.result("warp-drive", "mcf")
