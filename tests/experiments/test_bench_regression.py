"""Tests for scripts/check_bench_regression.py (the CI bench gate)."""

import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

from check_bench_regression import main  # noqa: E402


def _payload(rates, total, tails=None, batched=None, batched_total=None,
             fom=None, service=None, curve=None):
    cells = []
    for (key, wl), rate in rates.items():
        cell = {"key": key, "scheme": key.split("-")[0], "workload": wl,
                "accesses_per_sec": rate}
        if tails and (key, wl) in tails:
            cell["p95_latency"], cell["p99_latency"] = tails[(key, wl)]
        if batched and (key, wl) in batched:
            cell["batched_accesses_per_sec"] = batched[(key, wl)]
        cells.append(cell)
    throughput = {"accesses_per_sec": total}
    if batched_total is not None:
        throughput["batched_accesses_per_sec"] = batched_total
    payload = {
        "cells": cells,
        "throughput": throughput,
    }
    if fom is not None:
        payload["figures_of_merit"] = {"speedup_over_nonm": fom}
    if service is not None:
        payload["service"] = service
    if curve is not None:
        payload["batch_curve"] = curve
    return payload


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


BASE = {("nonm", "mcf"): 20000.0, ("silc", "mcf"): 10000.0}


def test_passes_within_threshold(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 16000.0, ("silc", "mcf"): 9000.0}, 12000.0))
    assert main([base, cur]) == 0
    assert "OK" in capsys.readouterr().out


def test_fails_on_per_cell_regression(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 20000.0, ("silc", "mcf"): 5000.0}, 14000.0))
    assert main([base, cur]) == 1
    assert "silc/mcf" in capsys.readouterr().err


def test_fails_on_total_regression(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    # both cells just inside the per-cell threshold, total just outside
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 15200.0, ("silc", "mcf"): 7600.0}, 11000.0))
    assert main([base, cur]) == 1
    assert "total" in capsys.readouterr().err


def test_new_and_missing_cells_are_notes_not_failures(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 20000.0, ("silc-mshr32", "mcf"): 9000.0}, 15000.0))
    assert main([base, cur]) == 0
    out = capsys.readouterr().out
    assert "missing from current run" in out
    assert "new cell silc-mshr32/mcf" in out


def test_threshold_validation(tmp_path):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    with pytest.raises(SystemExit):
        main([base, base, "--threshold", "1.5"])


def test_tighter_threshold_trips(tmp_path):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 17000.0, ("silc", "mcf"): 8500.0}, 12750.0))
    assert main([base, cur]) == 0          # 15% drop, default 25% gate
    assert main([base, cur, "--threshold", "0.1"]) == 1


# ----------------------------------------------------------------------
# tail-latency gate (schema v3)
# ----------------------------------------------------------------------
TAILS = {("nonm", "mcf"): (2000.0, 2600.0), ("silc", "mcf"): (2200.0, 3500.0)}


def test_tails_within_gate_pass(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0, TAILS))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, {
        ("nonm", "mcf"): (2100.0, 2650.0),   # +5%, +2%
        ("silc", "mcf"): (2200.0, 3500.0),
    }))
    assert main([base, cur]) == 0
    assert "tails within 10%" in capsys.readouterr().out


def test_tail_growth_past_gate_fails(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0, TAILS))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, {
        ("nonm", "mcf"): (2000.0, 2600.0),
        ("silc", "mcf"): (2200.0, 4200.0),   # p99 +20%
    }))
    assert main([base, cur]) == 1
    captured = capsys.readouterr()
    assert "TAIL REGRESSION" in captured.out
    assert "silc/mcf:p99_latency" in captured.err


def test_tail_improvement_always_passes(tmp_path):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0, TAILS))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, {
        key: (p95 / 2, p99 / 2) for key, (p95, p99) in TAILS.items()
    }))
    assert main([base, cur]) == 0


def test_pre_v3_baseline_skips_tail_gate(tmp_path, capsys):
    """A baseline without tail fields (or with nulls) gates nothing —
    upgrading the baseline turns the check on."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, {
        ("silc", "mcf"): (9999.0, 99999.0)}))
    assert main([base, cur]) == 0
    null_base = _write(tmp_path, "nulls.json", _payload(BASE, 15000.0, {
        ("silc", "mcf"): (None, None)}))
    assert main([null_base, cur]) == 0


def test_tailless_current_run_skips_tail_gate(tmp_path, capsys):
    """A v4 quick run measures no tails at all (span sampling off); the
    gate must not read the missing columns as overflow against a
    tail-carrying baseline."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0, TAILS))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0))
    assert main([base, cur]) == 0
    assert "tail gate skipped" in capsys.readouterr().out


def test_current_overflow_against_finite_baseline_fails(tmp_path, capsys):
    """Baseline measured a finite p99 but the current run overflowed the
    histogram: that is a tail blow-up, not missing data."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0, TAILS))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, {
        ("silc", "mcf"): (2200.0, None)}))
    assert main([base, cur]) == 1
    assert "overflow" in capsys.readouterr().out


def test_batched_regression_fails(tmp_path, capsys):
    """Schema v4: the batch engine's throughput is gated with the same
    threshold as the scalar column."""
    batched = {("nonm", "mcf"): 40000.0, ("silc", "mcf"): 20000.0}
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, batched=batched, batched_total=30000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0,
        batched={("nonm", "mcf"): 40000.0, ("silc", "mcf"): 10000.0},
        batched_total=25000.0))
    assert main([base, cur]) == 1
    assert "silc/mcf:batched" in capsys.readouterr().err


def test_batched_total_regression_fails(tmp_path, capsys):
    batched = {("nonm", "mcf"): 40000.0, ("silc", "mcf"): 20000.0}
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, batched=batched, batched_total=30000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, batched={k: v * 0.8 for k, v in batched.items()},
        batched_total=20000.0))
    assert main([base, cur]) == 1
    assert "total:batched" in capsys.readouterr().err


def test_pre_v4_baseline_skips_batched_gate(tmp_path):
    """A baseline without batched columns gates nothing — regenerating
    the baseline with the v4 harness turns the check on."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, batched={("silc", "mcf"): 1.0}, batched_total=1.0))
    assert main([base, cur]) == 0


def test_batched_column_dropped_fails(tmp_path, capsys):
    """Baseline measured the batch engine but the current run carries no
    batched column — the gate must not wave the engine's removal through."""
    batched = {("nonm", "mcf"): 40000.0, ("silc", "mcf"): 20000.0}
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, batched=batched, batched_total=30000.0))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0))
    assert main([base, cur]) == 1
    captured = capsys.readouterr()
    assert "missing" in captured.out
    assert "total:batched" in captured.err


def test_batched_improvement_passes(tmp_path):
    batched = {("nonm", "mcf"): 40000.0, ("silc", "mcf"): 20000.0}
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, batched=batched, batched_total=30000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, batched={k: v * 2 for k, v in batched.items()},
        batched_total=60000.0))
    assert main([base, cur]) == 0


# ----------------------------------------------------------------------
# MSHR dominance figure-of-merit gate (schema v5)
# ----------------------------------------------------------------------
def test_mshr_dominance_gate_passes_when_default_wins(tmp_path, capsys):
    """The gate reads the *current* run's figures of merit: silc with the
    default MSHR must hold a speedup geomean >= compat-mode silc's."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, fom={
        "silc": {"mcf": 1.70, "geomean": 1.70},
        "silc-compat": {"mcf": 1.69, "geomean": 1.69},
    }))
    assert main([base, cur]) == 0
    assert "default-MSHR 1.7000 vs compat 1.6900" in capsys.readouterr().out


def test_mshr_dominance_gate_fails_when_compat_wins(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, fom={
        "silc": {"mcf": 1.60, "geomean": 1.60},
        "silc-compat": {"mcf": 1.69, "geomean": 1.69},
    }))
    assert main([base, cur]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "fom:mshr-dominance" in captured.err


def test_pre_v5_payload_skips_mshr_dominance_gate(tmp_path, capsys):
    """Payloads without silc/silc-compat figures (older suites, partial
    reruns) skip the gate with a note instead of failing."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, fom={
        "silc": {"mcf": 1.60, "geomean": 1.60}}))
    assert main([base, cur]) == 0
    assert "MSHR dominance gate skipped" in capsys.readouterr().out


def test_mshr_dominance_ignores_baseline_figures(tmp_path):
    """Dominance is a property of the current run alone — a baseline
    where compat won must not mask (or cause) a failure."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0, fom={
        "silc": {"mcf": 1.50, "geomean": 1.50},
        "silc-compat": {"mcf": 1.80, "geomean": 1.80},
    }))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, fom={
        "silc": {"mcf": 1.70, "geomean": 1.70},
        "silc-compat": {"mcf": 1.69, "geomean": 1.69},
    }))
    assert main([base, cur]) == 0


def test_tail_threshold_flag(tmp_path):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0, TAILS))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0, {
        ("nonm", "mcf"): TAILS[("nonm", "mcf")],
        ("silc", "mcf"): (2330.0, 3700.0)}))  # ~6% growth
    assert main([base, cur]) == 0
    assert main([base, cur, "--tail-threshold", "0.05"]) == 1
    with pytest.raises(SystemExit):
        main([base, cur, "--tail-threshold", "0"])

# ----------------------------------------------------------------------
# sweep-service gate (schema v6)
# ----------------------------------------------------------------------
def _service(cold=400.0, hot=2000.0, **overrides):
    section = {
        "seed": 1234, "tenants": 24, "cells_per_tenant": 3,
        "unique_cells": 8, "total_cell_requests": 144,
        "misses_per_core": 120,
        "cold": {"wall_seconds": 0.2, "cells_per_sec": cold},
        "hot": {"wall_seconds": 0.05, "cells_per_sec": hot},
        "simulated": 8, "dedup_hits": 50, "cache_hits": 86,
        "dedup_hit_rate": 0.35,
        "cache_hit_latency_ms": {"p50": 0.1, "p95": 0.4},
        "max_executions_per_key": 1,
        "exactly_once": True, "fanned_out": True, "conserved": True,
    }
    section.update(overrides)
    return section


def test_service_within_threshold_passes(tmp_path, capsys):
    base = _write(tmp_path, "base.json",
                  _payload(BASE, 15000.0, service=_service()))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, service=_service(cold=350.0, hot=1800.0)))
    assert main([base, cur]) == 0
    assert "service cold: 400.0 -> 350.0" in capsys.readouterr().out


def test_service_cold_throughput_regression_fails(tmp_path, capsys):
    base = _write(tmp_path, "base.json",
                  _payload(BASE, 15000.0, service=_service()))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, service=_service(cold=200.0)))
    assert main([base, cur]) == 1
    assert "service:cold" in capsys.readouterr().err


def test_service_hot_throughput_regression_fails(tmp_path, capsys):
    base = _write(tmp_path, "base.json",
                  _payload(BASE, 15000.0, service=_service()))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, service=_service(hot=1000.0)))
    assert main([base, cur]) == 1
    assert "service:hot" in capsys.readouterr().err


def test_service_exactly_once_violation_hard_fails(tmp_path, capsys):
    """Correctness witnesses gate the current run alone — a dedup break
    fails even when every throughput number improved."""
    base = _write(tmp_path, "base.json",
                  _payload(BASE, 15000.0, service=_service()))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, service=_service(
            cold=900.0, hot=9000.0, exactly_once=False,
            max_executions_per_key=3)))
    assert main([base, cur]) == 1
    captured = capsys.readouterr()
    assert "CORRECTNESS" in captured.out
    assert "service:exactly_once" in captured.err
    assert "service:max_executions_per_key" in captured.err


def test_service_witnesses_gate_even_without_baseline(tmp_path, capsys):
    """A current run with a service section is held to the correctness
    witnesses even when the baseline predates v6."""
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, service=_service(conserved=False)))
    assert main([base, cur]) == 1
    assert "service:conserved" in capsys.readouterr().err


def test_service_section_dropped_fails(tmp_path, capsys):
    """Baseline measured the service but the current run has no section
    at all — like the batched column, removal is a failure."""
    base = _write(tmp_path, "base.json",
                  _payload(BASE, 15000.0, service=_service()))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0))
    assert main([base, cur]) == 1
    assert "service:missing" in capsys.readouterr().err


def test_pre_v6_payloads_skip_service_gate(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0))
    assert main([base, cur]) == 0
    assert "service gate skipped" in capsys.readouterr().out


def test_new_service_section_without_baseline_is_a_note(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json",
                 _payload(BASE, 15000.0, service=_service()))
    assert main([base, cur]) == 0
    assert "new service cold phase" in capsys.readouterr().out


# ----------------------------------------------------------------------
# closed-form window-curve gate (schema v7)
# ----------------------------------------------------------------------
def _curve(speedups):
    return {
        "variants": ["nonm", "silc", "silc-compat"],
        "workloads": ["mcf"],
        "misses_per_core": 1500,
        "points": [{"batch_window": window, "wall_seconds": 1.0,
                    "speedup": speedup}
                   for window, speedup in speedups.items()],
    }


def test_curve_within_threshold_passes(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40, 1024: 1.45})))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.25, 1024: 1.50})))
    assert main([base, cur]) == 0
    assert "batch_curve w=256: 1.40x -> 1.25x" in capsys.readouterr().out


def test_curve_point_regression_fails(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40, 1024: 1.45})))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40, 1024: 1.00})))
    assert main([base, cur]) == 1
    assert "curve:w1024" in capsys.readouterr().err


def test_curve_section_dropped_fails(tmp_path, capsys):
    """Like the batched column: once the baseline measures the
    closed-form curve, a current run without one is a failure."""
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40})))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0))
    assert main([base, cur]) == 1
    assert "curve:missing" in capsys.readouterr().err


def test_curve_missing_window_fails(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40, 4096: 1.50})))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40})))
    assert main([base, cur]) == 1
    captured = capsys.readouterr()
    assert "curve:w4096" in captured.err
    assert "missing" in captured.out


def test_pre_v7_baselines_skip_curve_gate(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(BASE, 15000.0))
    assert main([base, cur]) == 0
    assert "closed-form gate skipped" in capsys.readouterr().out


def test_new_curve_without_baseline_is_a_note(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40})))
    assert main([base, cur]) == 0
    assert "new batch_curve section" in capsys.readouterr().out


def test_curve_improvement_and_tighter_threshold(tmp_path):
    base = _write(tmp_path, "base.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.40})))
    better = _write(tmp_path, "better.json", _payload(
        BASE, 15000.0, curve=_curve({256: 2.80})))
    assert main([base, better]) == 0
    slightly_off = _write(tmp_path, "off.json", _payload(
        BASE, 15000.0, curve=_curve({256: 1.20})))   # ~14% drop
    assert main([base, slightly_off]) == 0           # default 25% gate
    assert main([base, slightly_off, "--threshold", "0.1"]) == 1
