"""Tests for scripts/check_bench_regression.py (the CI bench gate)."""

import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

from check_bench_regression import main  # noqa: E402


def _payload(rates, total):
    return {
        "cells": [
            {"key": key, "scheme": key.split("-")[0], "workload": wl,
             "accesses_per_sec": rate}
            for (key, wl), rate in rates.items()
        ],
        "throughput": {"accesses_per_sec": total},
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


BASE = {("nonm", "mcf"): 20000.0, ("silc", "mcf"): 10000.0}


def test_passes_within_threshold(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 16000.0, ("silc", "mcf"): 9000.0}, 12000.0))
    assert main([base, cur]) == 0
    assert "OK" in capsys.readouterr().out


def test_fails_on_per_cell_regression(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 20000.0, ("silc", "mcf"): 5000.0}, 14000.0))
    assert main([base, cur]) == 1
    assert "silc/mcf" in capsys.readouterr().err


def test_fails_on_total_regression(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    # both cells just inside the per-cell threshold, total just outside
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 15200.0, ("silc", "mcf"): 7600.0}, 11000.0))
    assert main([base, cur]) == 1
    assert "total" in capsys.readouterr().err


def test_new_and_missing_cells_are_notes_not_failures(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 20000.0, ("silc-mshr32", "mcf"): 9000.0}, 15000.0))
    assert main([base, cur]) == 0
    out = capsys.readouterr().out
    assert "missing from current run" in out
    assert "new cell silc-mshr32/mcf" in out


def test_threshold_validation(tmp_path):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    with pytest.raises(SystemExit):
        main([base, base, "--threshold", "1.5"])


def test_tighter_threshold_trips(tmp_path):
    base = _write(tmp_path, "base.json", _payload(BASE, 15000.0))
    cur = _write(tmp_path, "cur.json", _payload(
        {("nonm", "mcf"): 17000.0, ("silc", "mcf"): 8500.0}, 12750.0))
    assert main([base, cur]) == 0          # 15% drop, default 25% gate
    assert main([base, cur, "--threshold", "0.1"]) == 1