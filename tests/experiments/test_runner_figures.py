"""Tests for the experiment runner and figure functions (small scale)."""

import dataclasses

import pytest

from repro.experiments.figures import (
    FIG6_STAGES,
    FIG7_SCHEMES,
    fig8_bandwidth_split,
    fig9_capacity_sweep,
    table3_measured,
)
from repro.experiments.runner import SCHEMES, SuiteRunner, run_one
from repro.sim.config import default_config


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(scale=0.5), cores=4)


def test_scheme_registry_covers_paper():
    for key in ("nonm", "rand", "hma", "cam", "camp", "pom", "silc"):
        assert key in SCHEMES
    for stage in FIG6_STAGES:
        assert stage in SCHEMES
    assert set(FIG7_SCHEMES) <= set(SCHEMES)


def test_fig6_stage_configs_are_cumulative():
    """Each Fig. 6 stage must enable a superset of the previous one."""
    import repro.core.silcfm as silcfm
    from repro.xmem.address import AddressSpace

    cfg = default_config()
    space = AddressSpace(cfg.nm_bytes, cfg.fm_bytes)
    swap = SCHEMES["silc-swap"].factory(space, cfg)
    lock = SCHEMES["silc-lock"].factory(space, cfg)
    assoc = SCHEMES["silc-assoc"].factory(space, cfg)
    full = SCHEMES["silc"].factory(space, cfg)
    assert not swap.config.enable_locking and swap.assoc == 1
    assert lock.config.enable_locking and lock.assoc == 1
    assert assoc.config.enable_locking and assoc.assoc == 4
    assert full.config.enable_locking and full.assoc == 4
    assert not swap.config.enable_bypass
    assert not assoc.config.enable_bypass
    assert full.config.enable_bypass


def test_static_scheme_alloc_policies():
    assert SCHEMES["nonm"].alloc_policy == "fm_only"
    assert SCHEMES["rand"].alloc_policy == "random"
    assert SCHEMES["alloy"].alloc_policy == "fm_only"


def test_run_one_respects_seed(config):
    a = run_one("cam", "lbm", config, misses_per_core=400, seed=9)
    b = run_one("cam", "lbm", config, misses_per_core=400, seed=9)
    assert a.elapsed_cycles == b.elapsed_cycles


def test_suite_runner_grid_shape(config):
    runner = SuiteRunner(config, misses_per_core=300)
    grid = runner.grid(["cam", "silc"], ["lbm", "mcf"])
    assert set(grid) == {"cam", "silc"}
    assert set(grid["cam"]) == {"lbm", "mcf"}
    assert all(v > 0 for row in grid.values() for v in row.values())


def test_fig8_function(config):
    shares = fig8_bandwidth_split(config, misses_per_core=300,
                                  workloads=["lbm"])
    assert set(shares) == set(FIG7_SCHEMES)
    assert all(0.0 <= v <= 1.0 for v in shares.values())


def test_fig9_function(config):
    sweep = fig9_capacity_sweep(config, misses_per_core=300,
                                ratios=[8, 4], schemes=["silc"],
                                workloads=["mcf"])
    assert set(sweep["silc"]) == {8, 4}
    assert all(v > 0 for v in sweep["silc"].values())


def test_table3_function(config):
    rows = table3_measured(config, misses_per_core=200)
    assert len(rows) == 14
    for name, row in rows.items():
        assert row["measured_mpki"] > 0
        assert row["target_mpki"] > 0
