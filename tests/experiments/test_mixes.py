"""Tests for heterogeneous workload mixes."""

import dataclasses

import pytest

from repro.experiments.mixes import MIXES, mix_specs, mix_speedups, run_mix
from repro.sim.config import default_config


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(scale=0.5), cores=4)


def test_mix_specs_cycle_over_members(config):
    specs = mix_specs("mix-blend", config)
    assert len(specs) == config.cores
    names = [s.name for s in specs]
    assert len(set(names)) > 1  # genuinely heterogeneous


def test_mix_high_is_all_high_mpki(config):
    specs = mix_specs("mix-high", config)
    assert all(s.category == "high" for s in specs)


def test_unknown_mix_rejected(config):
    with pytest.raises(KeyError):
        mix_specs("mix-bogus", config)
    with pytest.raises(KeyError):
        run_mix("silc", "mix-bogus", config)


def test_unknown_scheme_rejected(config):
    with pytest.raises(KeyError):
        run_mix("bogus", "mix-high", config)


def test_run_mix_completes(config):
    result = run_mix("silc", "mix-blend", config, misses_per_core=600)
    assert result.elapsed_cycles > 0
    assert result.workload_name == "mix-blend"
    assert 0.0 < result.access_rate < 1.0


def test_mix_speedups_beat_baseline_on_high_pressure(config):
    speedups = mix_speedups("mix-high", config, scheme_keys=["silc"],
                            misses_per_core=800)
    assert speedups["silc"] > 1.0


def test_all_predefined_mixes_runnable(config):
    for name in MIXES:
        result = run_mix("cam", name, config, misses_per_core=300)
        assert result.elapsed_cycles > 0
