"""Tests for the EXPERIMENTS.md report generator."""

import dataclasses

import pytest

from repro.experiments.report_writer import write_experiments_report
from repro.sim.config import default_config


@pytest.fixture(scope="module")
def small_config():
    return dataclasses.replace(default_config(scale=0.25), cores=2)


def test_report_contains_all_sections(tmp_path, small_config):
    path = tmp_path / "EXPERIMENTS.md"
    text = write_experiments_report(
        path, config=small_config, misses_per_core=400, fig9_misses=300,
        fig9_workloads=["mcf"])
    assert path.exists()
    for heading in ("Fig. 7", "Fig. 6", "Fig. 8", "EDP", "Fig. 9"):
        assert heading in text
    # every benchmark appears in the Fig. 7 table
    for name in ("mcf", "xalancbmk", "lbm"):
        assert name in text
    # markdown tables render
    assert "| workload |" in text
    assert "geomean" in text


def test_report_mentions_paper_reference_points(tmp_path, small_config):
    path = tmp_path / "r.md"
    text = write_experiments_report(
        path, config=small_config, misses_per_core=300, fig9_misses=200,
        fig9_workloads=["mcf"])
    assert "1.36" in text          # Fig. 7 headline
    assert "0.76" in text          # Fig. 8 SILC share
    assert "1.82" in text or "1.83" in text
