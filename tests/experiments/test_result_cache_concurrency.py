"""Concurrent same-key writers must never tear a ResultCache entry.

The sweep service dedupes identical cells across tenants, but *separate*
service instances (or a service and a one-shot CLI sweep) can still race
on one cache key — single-flight only covers one process.  ``store``
therefore writes through a uniquely named temp file and publishes with
``os.replace``: every reader observes either no entry or one writer's
complete bytes, never an interleaving.

This test hammers a single key from several processes while the parent
reads in a tight loop, asserting every observed file parses and equals
one writer's payload exactly.  (The pre-hardening code shared one
``<key>.json.tmp`` path between writers, so two racing processes could
interleave into the same temp file and publish the torn result.)
"""

import dataclasses
import json
import multiprocessing
import time

from repro.cpu.system import RunResult
from repro.experiments.executor import Cell, ResultCache
from repro.experiments.runner import run_one
from repro.sim.config import default_config

WRITERS = 4
ITERATIONS = 120


def _tiny_result():
    config = dataclasses.replace(default_config(scale=0.25), cores=1)
    return run_one("nonm", "mcf", config, misses_per_core=100)


def _variant_dicts(result):
    """Distinct payloads per writer, distinguishable after a reload."""
    variants = []
    for writer in range(WRITERS):
        clone = RunResult.from_dict(result.to_dict())
        clone.extras = dict(clone.extras, writer_tag=float(writer))
        variants.append(clone.to_dict())
    return variants


def _hammer(root, key, result_dict, iterations, barrier):
    cache = ResultCache(root)
    result = RunResult.from_dict(result_dict)
    barrier.wait()
    for _ in range(iterations):
        cache.store(key, result)


def test_concurrent_same_key_store_never_tears(tmp_path):
    result = _tiny_result()
    variants = _variant_dicts(result)
    key = Cell("nonm", "mcf", default_config(scale=0.25)).key()
    cache = ResultCache(tmp_path)
    path = cache.path(key)

    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(WRITERS + 1)
    writers = [
        ctx.Process(target=_hammer,
                    args=(str(tmp_path), key, variants[i], ITERATIONS,
                          barrier))
        for i in range(WRITERS)
    ]
    for proc in writers:
        proc.start()
    barrier.wait()  # release every writer at once: maximum contention

    allowed_results = {json.dumps(v, sort_keys=True) for v in variants}
    observations = 0
    deadline = time.monotonic() + 60
    while any(proc.is_alive() for proc in writers):
        assert time.monotonic() < deadline, "writers wedged"
        try:
            raw = path.read_text()
        except OSError:
            continue  # not published yet — fine, never torn
        # the raw bytes must always be one writer's complete payload
        data = json.loads(raw)  # a torn interleaving would raise here
        assert data["schema"] is not None
        canonical = json.dumps(data["result"], sort_keys=True)
        assert canonical in allowed_results, "entry mixes two writers"
        observations += 1
    for proc in writers:
        proc.join()
        assert proc.exitcode == 0

    # the survivor is a clean load()-able entry from one writer
    final = cache.load(key)
    assert final is not None
    assert json.dumps(final.to_dict(),
                      sort_keys=True) in allowed_results
    assert observations > 0, "reader never overlapped the writers"
    # no temp droppings left behind, and the store counts exactly one entry
    assert not list(tmp_path.glob("*.tmp"))
    assert len(cache) == 1
