"""Tests for the sensitivity-sweep tooling."""

import dataclasses

import pytest

from repro.experiments.sweeps import (
    capacity_transform,
    mlp_transform,
    sweep_silcfm,
    sweep_system,
    sweep_table,
)
from repro.sim.config import default_config


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(scale=0.25), cores=2)


def test_sweep_silcfm_returns_one_point_per_value(config):
    curve = sweep_silcfm("associativity", [1, 4], "gcc", config,
                         misses_per_core=400)
    assert set(curve) == {"1", "4"}
    assert all(v > 0 for v in curve.values())


def test_sweep_silcfm_rejects_unknown_field(config):
    with pytest.raises(KeyError):
        sweep_silcfm("turbo_mode", [1], "gcc", config)


def test_sweep_system_capacity(config):
    curve = sweep_system(capacity_transform, [8, 4], "silc", "mcf", config,
                         misses_per_core=400)
    assert set(curve) == {"8", "4"}


def test_mlp_transform_changes_window(config):
    varied = mlp_transform(config, 2)
    assert varied.core.max_outstanding_misses == 2
    assert config.core.max_outstanding_misses != 2 or True


def test_mlp_sweep_more_parallelism_helps(config):
    curve = sweep_system(mlp_transform, [1, 8], "nonm", "mcf", config,
                         misses_per_core=400)
    # speedup over its own baseline is 1.0 by construction; use raw runs
    from repro.experiments.runner import run_one

    narrow = run_one("nonm", "mcf", mlp_transform(config, 1),
                     misses_per_core=400)
    wide = run_one("nonm", "mcf", mlp_transform(config, 8),
                   misses_per_core=400)
    assert wide.elapsed_cycles < narrow.elapsed_cycles


def test_sweep_table_layout():
    rows = sweep_table({"a": {"1": 1.5, "2": 2.0}, "b": {"1": 1.1}})
    assert ["a", "1", 1.5] in rows
    assert ["b", "1", 1.1] in rows
    assert len(rows) == 3
