"""Tests for CAMEO and CAMEO+prefetch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes.base import Level
from repro.schemes.cameo import DATA_PLUS_META_BYTES, CameoPrefetchScheme, CameoScheme
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

NM = 4 * BLOCK_BYTES    # 128 subblock slots
FM = 16 * BLOCK_BYTES


def make_space():
    return AddressSpace(NM, FM)


def fm_addr_in_group(space, group, k=0):
    """The k-th FM member of ``group`` (subblock address)."""
    slots = NM // SUBBLOCK_BYTES
    return (group + (k + 1) * slots) * SUBBLOCK_BYTES


def test_nm_hit_is_single_extended_burst():
    scheme = CameoScheme(make_space())
    plan = scheme.access(0, False)
    assert plan.serviced_from is Level.NM
    assert len(plan.stages) == 1
    op = plan.stages[0][0]
    assert op.size == DATA_PLUS_META_BYTES
    assert not plan.background


def test_fm_miss_swaps_line_into_nm():
    space = make_space()
    scheme = CameoScheme(space)
    addr = fm_addr_in_group(space, group=5)
    plan = scheme.access(addr, False)
    assert plan.serviced_from is Level.FM
    assert len(plan.stages) == 2            # NM tag read, then FM data
    assert len(plan.background) == 2        # NM install + FM evict
    # after the swap the line is NM-resident
    assert scheme.locate(addr)[0] is Level.NM
    assert scheme.access(addr, False).serviced_from is Level.NM


def test_swap_is_an_exchange_not_a_copy():
    """The displaced NM line must be retrievable from the vacated FM home."""
    space = make_space()
    scheme = CameoScheme(space)
    nm_native = 5 * SUBBLOCK_BYTES          # subblock 5, slot 5
    fm_member = fm_addr_in_group(space, group=5)
    scheme.access(fm_member, False)
    level, offset = scheme.locate(nm_native)
    assert level is Level.FM
    assert offset == space.fm_offset(fm_member)


def test_native_line_returns_home():
    space = make_space()
    scheme = CameoScheme(space)
    nm_native = 7 * SUBBLOCK_BYTES
    fm_member = fm_addr_in_group(space, group=7)
    scheme.access(fm_member, False)          # native displaced
    scheme.access(nm_native, False)          # native swaps back
    assert scheme.locate(nm_native) == (Level.NM, nm_native)
    assert scheme.locate(fm_member) == (Level.FM, space.fm_offset(fm_member))


def test_direct_mapped_conflicts_thrash():
    """Two FM members of the same group evict each other (the conflict
    problem Section II-B describes)."""
    space = make_space()
    scheme = CameoScheme(space)
    a = fm_addr_in_group(space, group=3, k=0)
    b = fm_addr_in_group(space, group=3, k=1)
    for _ in range(3):
        assert scheme.access(a, False).serviced_from is Level.FM
        assert scheme.access(b, False).serviced_from is Level.FM
    assert scheme.stats.access_rate == 0.0


def test_group_members_share_a_slot():
    space = make_space()
    scheme = CameoScheme(space)
    members = scheme.group_members(0)
    slots = NM // SUBBLOCK_BYTES
    assert members == [0, slots, 2 * slots, 3 * slots, 4 * slots]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=NM + FM - 1),
                min_size=1, max_size=300))
def test_locate_remains_a_bijection(addrs):
    """Part-of-memory invariant: after any access sequence, distinct
    subblocks occupy distinct storage slots."""
    space = make_space()
    scheme = CameoScheme(space)
    for addr in addrs:
        scheme.access(addr - addr % SUBBLOCK_BYTES, False)
    seen = {}
    for sb_addr in range(0, NM + FM, SUBBLOCK_BYTES):
        slot = scheme.locate(sb_addr)
        assert slot not in seen, f"{sb_addr} and {seen[slot]} share {slot}"
        seen[slot] = sb_addr


# ----------------------------------------------------------------------
# prefetching variant
# ----------------------------------------------------------------------
def test_prefetcher_fetches_next_lines():
    space = make_space()
    scheme = CameoPrefetchScheme(space, prefetch_lines=3)
    addr = fm_addr_in_group(space, group=0)
    scheme.access(addr, False)
    assert scheme.prefetches_issued == 3
    # the three following subblocks are now NM hits
    for k in range(1, 4):
        assert scheme.locate(addr + k * SUBBLOCK_BYTES)[0] is Level.NM


def test_prefetch_adds_background_traffic():
    space = make_space()
    plain = CameoScheme(space)
    prefetching = CameoPrefetchScheme(space, prefetch_lines=3)
    addr = fm_addr_in_group(space, group=0)
    plain_bytes = plain.access(addr, False).total_bytes()
    prefetch_bytes = prefetching.access(addr, False).total_bytes()
    assert prefetch_bytes > plain_bytes


def test_nm_hit_triggers_no_prefetch():
    scheme = CameoPrefetchScheme(make_space())
    scheme.access(0, False)
    assert scheme.prefetches_issued == 0


def test_invalid_prefetch_depth_rejected():
    with pytest.raises(ValueError):
        CameoPrefetchScheme(make_space(), prefetch_lines=0)


def test_prefetch_never_displaces_demand_swapped_lines():
    """A speculative prefetch must not evict a line that a demand miss
    installed (the non-displacing prefetch filter)."""
    space = make_space()
    scheme = CameoPrefetchScheme(space, prefetch_lines=3)
    slots = NM // SUBBLOCK_BYTES
    # demand-install a line into slot of (victim_sb % slots)
    victim_target = fm_addr_in_group(space, group=1)
    scheme.access(victim_target, False)
    assert scheme.locate(victim_target)[0] is Level.NM
    # a miss on the line just before it prefetches into slot group=1,
    # which is now owned by a demand-swapped line -> must be skipped
    trigger = victim_target - SUBBLOCK_BYTES
    scheme.access(trigger, False)
    assert scheme.locate(victim_target)[0] is Level.NM


def test_prefetch_installs_into_native_slots():
    space = make_space()
    scheme = CameoPrefetchScheme(space, prefetch_lines=2)
    addr = fm_addr_in_group(space, group=3)
    scheme.access(addr, False)
    # groups 4 and 5 still held their native lines, so both prefetches fired
    assert scheme.prefetches_issued == 2
