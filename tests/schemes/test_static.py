"""Tests for static placement (identity) schemes."""

from repro.schemes.base import Level
from repro.schemes.static import StaticScheme
from repro.sim.config import BLOCK_BYTES
from repro.xmem.address import AddressSpace

NM = 8 * BLOCK_BYTES
FM = 32 * BLOCK_BYTES


def make_scheme():
    return StaticScheme(AddressSpace(NM, FM))


def test_nm_address_serviced_from_nm():
    scheme = make_scheme()
    plan = scheme.access(100, False)
    assert plan.serviced_from is Level.NM
    assert plan.stages[0][0].level is Level.NM
    assert not plan.background


def test_fm_address_serviced_from_fm_with_device_offset():
    scheme = make_scheme()
    plan = scheme.access(NM + 200, False)
    assert plan.serviced_from is Level.FM
    op = plan.stages[0][0]
    assert op.level is Level.FM
    assert op.addr == 192  # 200 aligned down to 64


def test_locate_is_identity():
    scheme = make_scheme()
    assert scheme.locate(42) == (Level.NM, 42)
    assert scheme.locate(NM + 42) == (Level.FM, 42)


def test_ops_are_64_bytes_aligned():
    scheme = make_scheme()
    plan = scheme.access(NM + 777, True)
    op = plan.stages[0][0]
    assert op.addr % 64 == 0
    assert op.size == 64


def test_access_rate_tracks_placement():
    scheme = make_scheme()
    for i in range(4):
        scheme.access(i * BLOCK_BYTES, False)        # NM
    for i in range(12):
        scheme.access(NM + i * BLOCK_BYTES, False)   # FM
    assert scheme.stats.misses == 16
    assert scheme.stats.access_rate == 4 / 16


def test_writeback_goes_to_home_location():
    scheme = make_scheme()
    plan = scheme.writeback(NM + 100)
    assert len(plan.background) == 1
    op = plan.background[0]
    assert op.level is Level.FM
    assert op.is_write
    assert op.addr == 64


def test_no_migration_ever():
    scheme = make_scheme()
    for _ in range(100):
        scheme.access(NM + 64, False)
    assert scheme.stats.subblock_swaps == 0
    assert scheme.stats.block_migrations == 0
    assert scheme.locate(NM + 64) == (Level.FM, 64)
