"""Tests for the Alloy-style DRAM cache scheme."""

import pytest

from repro.schemes.alloycache import TAD_BYTES, AlloyCacheScheme
from repro.schemes.base import Level
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

NM = 4 * BLOCK_BYTES
FM = 16 * BLOCK_BYTES


def make_scheme():
    return AlloyCacheScheme(AddressSpace(NM, FM))


def fm(line, offset=0):
    return NM + line * SUBBLOCK_BYTES + offset


def test_cold_miss_then_hit():
    scheme = make_scheme()
    plan = scheme.access(fm(3), False)
    assert plan.note == "miss"
    assert plan.serviced_from is Level.FM
    assert len(plan.stages) == 2  # tag probe, then FM fill
    plan = scheme.access(fm(3), False)
    assert plan.note == "hit"
    assert plan.serviced_from is Level.NM
    assert plan.stages[0][0].size == TAD_BYTES


def test_direct_mapped_conflict_evicts():
    scheme = make_scheme()
    slots = NM // SUBBLOCK_BYTES
    scheme.access(fm(0), False)
    scheme.access(fm(slots), False)  # same slot
    assert scheme.access(fm(0), False).note == "miss"


def test_dirty_eviction_writes_back():
    scheme = make_scheme()
    slots = NM // SUBBLOCK_BYTES
    scheme.access(fm(0), True)            # dirty fill
    plan = scheme.access(fm(slots), False)
    wb = [op for op in plan.background if op.level is Level.FM and op.is_write]
    assert len(wb) == 1
    assert wb[0].addr == 0
    assert scheme.dirty_writebacks == 1


def test_clean_eviction_is_silent():
    scheme = make_scheme()
    slots = NM // SUBBLOCK_BYTES
    scheme.access(fm(0), False)
    plan = scheme.access(fm(slots), False)
    assert not any(op.is_write and op.level is Level.FM
                   for op in plan.background)


def test_miss_never_swaps_a_line_out():
    """Cache fills copy data; nothing is displaced to FM (no swap)."""
    scheme = make_scheme()
    plan = scheme.access(fm(7), False)
    fm_writes = [op for op in plan.background
                 if op.level is Level.FM and op.is_write]
    assert not fm_writes


def test_locate_tracks_cached_copy():
    scheme = make_scheme()
    assert scheme.locate(fm(5))[0] is Level.FM
    scheme.access(fm(5), False)
    assert scheme.locate(fm(5))[0] is Level.NM


def test_nm_addresses_rejected():
    scheme = make_scheme()
    with pytest.raises(ValueError):
        scheme.access(0, False)
    with pytest.raises(ValueError):
        scheme.locate(0)


def test_capacity_cost_is_visible():
    scheme = make_scheme()
    assert scheme.usable_capacity_bytes == FM
    # a part-of-memory scheme exposes NM + FM; the cache only FM:
    assert scheme.usable_capacity_bytes < NM + FM


def test_hit_rate_accounting():
    scheme = make_scheme()
    scheme.access(fm(1), False)
    scheme.access(fm(1), False)
    scheme.access(fm(1), False)
    assert scheme.hit_rate == pytest.approx(2 / 3)
