"""Tests for the PoM whole-block migration scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes.base import Level
from repro.schemes.pom import PomScheme
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

NM = 4 * BLOCK_BYTES
FM = 16 * BLOCK_BYTES


def make_scheme(threshold=3):
    return PomScheme(AddressSpace(NM, FM), threshold=threshold)


def fm_block_addr(frame, k=0):
    """Address of the k-th FM block competing for ``frame``."""
    frames = NM // BLOCK_BYTES
    return (frame + (k + 1) * frames) * BLOCK_BYTES


def test_migration_requires_threshold():
    scheme = make_scheme(threshold=3)
    addr = fm_block_addr(0)
    for _ in range(2):
        assert scheme.access(addr, False).serviced_from is Level.FM
    assert scheme.stats.block_migrations == 0
    scheme.access(addr, False)  # third access crosses the threshold
    assert scheme.stats.block_migrations == 1
    assert scheme.access(addr, False).serviced_from is Level.NM


def test_migration_moves_whole_2kb_block():
    scheme = make_scheme(threshold=1)
    addr = fm_block_addr(1)
    plan = scheme.access(addr, False)
    # 4 background ops of BLOCK_BYTES each: FM read, NM read, NM write, FM write
    assert len(plan.background) == 4
    assert all(op.size == BLOCK_BYTES for op in plan.background)
    # + 8 B for the cold remap-cache miss metadata fetch
    assert plan.total_bytes() == SUBBLOCK_BYTES + 8 + 4 * BLOCK_BYTES
    # every subblock of the block is now NM-resident
    for k in range(0, BLOCK_BYTES, SUBBLOCK_BYTES):
        assert scheme.locate(addr - addr % BLOCK_BYTES + k)[0] is Level.NM


def test_displaced_native_block_lands_at_fm_home():
    scheme = make_scheme(threshold=1)
    addr = fm_block_addr(2)
    scheme.access(addr, False)
    level, offset = scheme.locate(2 * BLOCK_BYTES)  # native NM block 2
    assert level is Level.FM
    assert offset == addr - NM - addr % BLOCK_BYTES + (addr % BLOCK_BYTES
                                                       - addr % BLOCK_BYTES)


def test_counter_competition_prevents_pingpong():
    """Once a block is migrated in, a competitor must out-access it by
    the threshold before displacing it."""
    scheme = make_scheme(threshold=4)
    hot = fm_block_addr(0, k=0)
    rival = fm_block_addr(0, k=1)
    for _ in range(8):
        scheme.access(hot, False)
    assert scheme.stats.block_migrations == 1
    for _ in range(8):
        scheme.access(rival, False)
    assert scheme.stats.block_migrations == 1  # 8 < 8 (occupant) + 4
    for _ in range(8):
        scheme.access(rival, False)
    assert scheme.stats.block_migrations == 2


def test_nm_native_block_serviced_from_nm_initially():
    scheme = make_scheme()
    plan = scheme.access(0, False)
    assert plan.serviced_from is Level.NM


def test_bad_threshold_rejected():
    with pytest.raises(ValueError):
        make_scheme(threshold=0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=NM + FM - 1),
                min_size=1, max_size=200))
def test_locate_remains_a_bijection(addrs):
    scheme = make_scheme(threshold=2)
    for addr in addrs:
        scheme.access(addr - addr % SUBBLOCK_BYTES, False)
    seen = {}
    for sb in range(0, NM + FM, SUBBLOCK_BYTES):
        slot = scheme.locate(sb)
        assert slot not in seen
        seen[slot] = sb


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=NM + FM - 1),
                min_size=1, max_size=200))
def test_block_contiguity_preserved(addrs):
    """A 2 KB block's subblocks always live contiguously in one level —
    PoM never interleaves."""
    scheme = make_scheme(threshold=2)
    for addr in addrs:
        scheme.access(addr - addr % SUBBLOCK_BYTES, False)
    for block in range((NM + FM) // BLOCK_BYTES):
        levels = set()
        offsets = []
        for k in range(32):
            level, offset = scheme.locate(block * BLOCK_BYTES + k * SUBBLOCK_BYTES)
            levels.add(level)
            offsets.append(offset)
        assert len(levels) == 1
        assert offsets == sorted(offsets)
        assert offsets[-1] - offsets[0] == BLOCK_BYTES - SUBBLOCK_BYTES
