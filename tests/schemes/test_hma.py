"""Tests for the epoch-based HMA scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes.base import Level
from repro.schemes.hma import EPOCH_BASE_OS_CYCLES, PER_PAGE_OS_CYCLES, HmaScheme
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

NM = 4 * BLOCK_BYTES
FM = 16 * BLOCK_BYTES


def make_scheme(threshold=3):
    return HmaScheme(AddressSpace(NM, FM), hot_threshold=threshold)


def test_no_migration_between_epochs():
    scheme = make_scheme(threshold=1)
    addr = NM + 3 * BLOCK_BYTES
    for _ in range(50):
        assert scheme.access(addr, False).serviced_from is Level.FM
    assert scheme.stats.block_migrations == 0


def test_epoch_migrates_hot_pages_into_nm():
    scheme = make_scheme(threshold=3)
    hot = NM + 5 * BLOCK_BYTES
    for _ in range(10):
        scheme.access(hot, False)
    ops, stall = scheme.epoch()
    assert scheme.stats.block_migrations == 1
    assert stall == EPOCH_BASE_OS_CYCLES + PER_PAGE_OS_CYCLES
    # 2 KB each: FM read, NM read, NM write, FM write
    assert sum(op.size for op in ops) == 4 * BLOCK_BYTES
    assert scheme.access(hot, False).serviced_from is Level.NM


def test_cold_pages_not_migrated():
    scheme = make_scheme(threshold=5)
    cold = NM + 2 * BLOCK_BYTES
    scheme.access(cold, False)
    __, stall = scheme.epoch()
    assert scheme.stats.block_migrations == 0
    assert stall == EPOCH_BASE_OS_CYCLES
    assert scheme.access(cold, False).serviced_from is Level.FM


def test_counters_reset_each_epoch():
    scheme = make_scheme(threshold=5)
    addr = NM + 7 * BLOCK_BYTES
    for _ in range(3):
        scheme.access(addr, False)
    scheme.epoch()   # 3 < 5: no migration, counters reset
    for _ in range(3):
        scheme.access(addr, False)
    scheme.epoch()   # still 3 < 5
    assert scheme.stats.block_migrations == 0


def test_placement_is_fully_associative():
    """More hot pages than any one congruence set could hold still all
    land in NM (HMA's advantage over direct-mapped CAMEO)."""
    scheme = make_scheme(threshold=2)
    frames = NM // BLOCK_BYTES
    # pick hot FM pages that would all collide in a direct-mapped design
    hot = [NM + k * frames * BLOCK_BYTES for k in range(frames)]
    for addr in hot:
        for _ in range(5):
            scheme.access(addr, False)
    scheme.epoch()
    assert scheme.stats.block_migrations == frames
    for addr in hot:
        assert scheme.access(addr, False).serviced_from is Level.NM


def test_nm_capacity_respected():
    scheme = make_scheme(threshold=1)
    frames = NM // BLOCK_BYTES
    for k in range(3 * frames):
        for _ in range(5):
            scheme.access(NM + k * BLOCK_BYTES, False)
    scheme.epoch()
    assert scheme.stats.block_migrations <= frames


def test_hottest_pages_win_when_oversubscribed():
    scheme = make_scheme(threshold=1)
    frames = NM // BLOCK_BYTES
    # one page far hotter than the rest
    hottest = NM + 11 * BLOCK_BYTES
    for _ in range(100):
        scheme.access(hottest, False)
    for k in range(2 * frames):
        if NM + k * BLOCK_BYTES != hottest:
            for _ in range(2):
                scheme.access(NM + k * BLOCK_BYTES, False)
    scheme.epoch()
    assert scheme.access(hottest, False).serviced_from is Level.NM


def test_epoch_period_exposed():
    scheme = HmaScheme(AddressSpace(NM, FM), epoch_cycles=123456.0)
    assert scheme.epoch_period_cycles() == 123456.0


def test_bad_parameters_rejected():
    with pytest.raises(ValueError):
        HmaScheme(AddressSpace(NM, FM), epoch_cycles=0)
    with pytest.raises(ValueError):
        HmaScheme(AddressSpace(NM, FM), hot_threshold=0)


@settings(max_examples=15, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=NM + FM - 1),
                      min_size=1, max_size=150),
       epochs=st.integers(min_value=1, max_value=4))
def test_locate_remains_a_bijection_across_epochs(addrs, epochs):
    scheme = make_scheme(threshold=2)
    chunk = max(1, len(addrs) // epochs)
    for start in range(0, len(addrs), chunk):
        for addr in addrs[start:start + chunk]:
            scheme.access(addr - addr % SUBBLOCK_BYTES, False)
        scheme.epoch()
    seen = {}
    for sb in range(0, NM + FM, SUBBLOCK_BYTES):
        slot = scheme.locate(sb)
        assert slot not in seen
        seen[slot] = sb
