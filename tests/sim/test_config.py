"""Tests for the Table II configuration."""

import dataclasses

import pytest

from repro.sim.config import (
    BLOCK_BYTES,
    SUBBLOCK_BYTES,
    SUBBLOCKS_PER_BLOCK,
    SystemConfig,
    default_config,
    paper_config,
)


def test_block_geometry_matches_paper():
    assert SUBBLOCK_BYTES == 64
    assert BLOCK_BYTES == 2048
    assert SUBBLOCKS_PER_BLOCK == 32


def test_default_ratio_is_4_to_1():
    cfg = default_config()
    assert cfg.fm_to_nm_ratio == 4
    assert cfg.total_bytes == cfg.nm_bytes + cfg.fm_bytes


def test_paper_config_capacities():
    cfg = paper_config()
    assert cfg.nm_bytes == 4 * 1024**3
    assert cfg.fm_bytes == 16 * 1024**3


def test_bandwidth_ratio_is_4_to_1():
    cfg = default_config()
    assert cfg.nm_timings.peak_bandwidth_gbs() == pytest.approx(
        4 * cfg.fm_timings.peak_bandwidth_gbs())


def test_with_ratio_sweeps_nm_capacity():
    cfg = default_config()
    for ratio in (16, 8, 4):
        swept = cfg.with_ratio(ratio)
        assert swept.fm_bytes == cfg.fm_bytes
        assert swept.fm_bytes // swept.nm_bytes == ratio


def test_with_silcfm_overrides_only_silcfm():
    cfg = default_config()
    changed = cfg.with_silcfm(associativity=2, enable_bypass=False)
    assert changed.silcfm.associativity == 2
    assert not changed.silcfm.enable_bypass
    assert cfg.silcfm.associativity == 4  # original untouched
    assert changed.nm_bytes == cfg.nm_bytes


def test_invalid_capacities_rejected():
    with pytest.raises(ValueError):
        SystemConfig(nm_bytes=2048 + 7, fm_bytes=4 * 2048)
    with pytest.raises(ValueError):
        SystemConfig(nm_bytes=8 * 2048, fm_bytes=4 * 2048)


def test_table2_core_parameters():
    cfg = default_config()
    assert cfg.core.issue_width == 4
    assert cfg.core.rob_entries == 128
    assert cfg.core.frequency_ghz == 3.2
    assert cfg.cores == 16


def test_table2_dram_parameters():
    cfg = default_config()
    assert cfg.nm_timings.channels == 8
    assert cfg.nm_timings.bus_bits == 128
    assert cfg.fm_timings.channels == 4
    assert cfg.fm_timings.bus_bits == 64
    # rows are scaled alongside capacity (paper: 8 KB rows over GBs;
    # simulation: 1 KB rows over MBs — same rows-per-bank regime)
    assert cfg.nm_timings.row_bytes == 1024
    assert cfg.fm_timings.row_bytes == 1024
    assert cfg.nm_timings.banks == 16  # HBM2 has 16 banks per channel
    assert cfg.fm_timings.banks == 8
    assert cfg.nm_timings.bus_mhz == 800.0


def test_silcfm_defaults_match_paper():
    silc = default_config().silcfm
    assert silc.associativity == 4
    assert silc.hot_threshold == 50
    # the paper's aging period is one million accesses; the simulated
    # period is scaled down with trace length but must stay positive
    # and large relative to the access-rate window
    assert 0 < silc.aging_period_accesses <= 1_000_000
    assert silc.aging_period_accesses > silc.access_rate_window
    assert silc.predictor_entries == 4096
    assert silc.bypass_target_access_rate == pytest.approx(0.8)


def test_config_is_frozen():
    cfg = default_config()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.nm_bytes = 123
