"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_events_dispatch_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(10, order.append, "late")
    engine.schedule(5, order.append, "early")
    engine.schedule(7.5, order.append, "middle")
    engine.run()
    assert order == ["early", "middle", "late"]
    assert engine.now == 10.0


def test_ties_break_by_insertion_order():
    engine = Engine()
    order = []
    for tag in range(5):
        engine.schedule(3.0, order.append, tag)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(42.0, seen.append, "x")
    engine.run()
    assert engine.now == 42.0
    assert seen == ["x"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5.0, lambda: None)


def test_events_can_schedule_more_events():
    engine = Engine()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            engine.schedule(1, chain, depth + 1)

    engine.schedule(0, chain, 0)
    engine.run()
    assert seen == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_run_until_horizon_leaves_future_events_queued():
    engine = Engine()
    seen = []
    engine.schedule(5, seen.append, "a")
    engine.schedule(15, seen.append, "b")
    engine.run(until=10)
    assert seen == ["a"]
    assert engine.now == 10
    assert engine.pending == 1
    engine.run()
    assert seen == ["a", "b"]


def test_max_events_watchdog_trips():
    engine = Engine()

    def forever():
        engine.schedule(1, forever)

    engine.schedule(0, forever)
    with pytest.raises(SimulationError, match="livelock"):
        engine.run(max_events=100)


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(1, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_zero_delay_runs_at_current_time():
    engine = Engine()
    times = []
    engine.schedule(5, lambda: engine.schedule(0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [5.0]


def test_events_dispatched_counter():
    engine = Engine()
    for _ in range(7):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_dispatched == 7
