"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_events_dispatch_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(10, order.append, "late")
    engine.schedule(5, order.append, "early")
    engine.schedule(7.5, order.append, "middle")
    engine.run()
    assert order == ["early", "middle", "late"]
    assert engine.now == 10.0


def test_ties_break_by_insertion_order():
    engine = Engine()
    order = []
    for tag in range(5):
        engine.schedule(3.0, order.append, tag)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(42.0, seen.append, "x")
    engine.run()
    assert engine.now == 42.0
    assert seen == ["x"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5.0, lambda: None)


def test_events_can_schedule_more_events():
    engine = Engine()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            engine.schedule(1, chain, depth + 1)

    engine.schedule(0, chain, 0)
    engine.run()
    assert seen == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_run_until_horizon_leaves_future_events_queued():
    engine = Engine()
    seen = []
    engine.schedule(5, seen.append, "a")
    engine.schedule(15, seen.append, "b")
    engine.run(until=10)
    assert seen == ["a"]
    assert engine.now == 10
    assert engine.pending == 1
    engine.run()
    assert seen == ["a", "b"]


def test_max_events_watchdog_trips():
    engine = Engine()

    def forever():
        engine.schedule(1, forever)

    engine.schedule(0, forever)
    with pytest.raises(SimulationError, match="livelock"):
        engine.run(max_events=100)


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(1, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_zero_delay_runs_at_current_time():
    engine = Engine()
    times = []
    engine.schedule(5, lambda: engine.schedule(0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [5.0]


def test_events_dispatched_counter():
    engine = Engine()
    for _ in range(7):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_dispatched == 7


# ---------------------------------------------------------------------------
# edge cases: horizon ties, watchdog, reentrancy, stepping after drain
# ---------------------------------------------------------------------------

def test_until_horizon_dispatches_ties_exactly_at_horizon():
    """Events timestamped exactly at ``until`` are *inside* the horizon
    and must all fire, in insertion order; later events stay queued."""
    engine = Engine()
    seen = []
    engine.schedule(10, seen.append, "at-horizon-1")
    engine.schedule(10, seen.append, "at-horizon-2")
    engine.schedule(10.0000001, seen.append, "beyond")
    engine.run(until=10)
    assert seen == ["at-horizon-1", "at-horizon-2"]
    assert engine.now == 10
    assert engine.pending == 1


def test_until_horizon_with_no_events_beyond_leaves_clock_at_horizon():
    engine = Engine()
    seen = []
    engine.schedule(3, seen.append, "a")
    engine.schedule(7, lambda: engine.schedule(5, seen.append, "spawned"))
    engine.run(until=8)
    # the event spawned at t=12 is past the horizon and stays queued
    assert seen == ["a"]
    assert engine.now == 8
    assert engine.pending == 1
    engine.run()
    assert seen == ["a", "spawned"]
    assert engine.now == 12


def test_max_events_watchdog_fires_at_exact_boundary():
    engine = Engine()
    for _ in range(5):
        engine.schedule(1, lambda: None)
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=3)
    # the watchdog must release the reentrancy latch so the engine can
    # drain the remainder afterwards
    engine.run()
    assert engine.events_dispatched == 5
    assert engine.pending == 0


def test_max_events_equal_to_queue_size_does_not_trip_early():
    """Unified watchdog semantics: exactly ``max_events`` dispatches are
    allowed, so a queue of exactly that many events completes cleanly —
    the engine raises only when *one more* would have to fire."""
    engine = Engine()
    fired = []
    for tag in range(4):
        engine.schedule(1, fired.append, tag)
    engine.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    assert engine.pending == 0


def test_max_events_one_below_queue_size_trips():
    """The other side of the boundary: one event too many raises, with
    the allowed ``max_events`` dispatches already done."""
    engine = Engine()
    fired = []
    for tag in range(4):
        engine.schedule(1, fired.append, tag)
    with pytest.raises(SimulationError, match="max_events=3"):
        engine.run(max_events=3)
    assert fired == [0, 1, 2]
    assert engine.pending == 1


def test_system_and_engine_watchdogs_agree_at_boundary():
    """`System.run` and `Engine.run` share the watchdog contract; the
    system-level watchdog must not fire on a run that needs exactly the
    budgeted number of events (regression: the two used to disagree,
    ``> max_events`` vs ``>= max_events``)."""
    from repro.cpu.system import System
    from repro.experiments.runner import SCHEMES
    from repro.sim.config import default_config
    from repro.workloads.spec import per_core_spec

    def build():
        config = default_config(scale=0.25)
        setup = SCHEMES["nonm"]
        return System(
            config, scheme_factory=setup.factory,
            workload=per_core_spec("mcf", config), misses_per_core=20,
            alloc_policy=setup.alloc_policy, seed=3)

    # measure the exact event budget, then rerun with precisely it
    probe = build()
    probe.run()
    needed = probe.engine.events_dispatched
    build().run(max_events=needed)  # exactly enough: must not raise
    with pytest.raises(SimulationError, match="max_events"):
        build().run(max_events=needed - 1)


def test_run_is_not_reentrant():
    engine = Engine()
    errors = []

    def nested():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(str(exc))

    engine.schedule(1, nested)
    engine.run()
    assert len(errors) == 1
    assert "reentrant" in errors[0]


def test_step_after_drain_returns_false_then_accepts_new_work():
    engine = Engine()
    engine.schedule(2, lambda: None)
    engine.run()
    # drained: stepping is a no-op, repeatedly
    assert engine.step() is False
    assert engine.step() is False
    assert engine.now == 2.0
    # the engine is still live: new events schedule and step normally
    seen = []
    engine.schedule(5, seen.append, "late")
    assert engine.step() is True
    assert seen == ["late"]
    assert engine.now == 7.0
    assert engine.step() is False


def test_step_interleaves_with_run():
    engine = Engine()
    order = []
    for tag in ("a", "b", "c"):
        engine.schedule(1, order.append, tag)
    assert engine.step() is True
    engine.run()
    assert order == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# edge semantics the two-tier clock leans on: free-list recycling bound,
# integer-timestamp preservation, and the horizon/checkpoint/resume API
# ---------------------------------------------------------------------------
def test_free_list_recycling_is_bounded():
    """A burst of queued events beyond _FREE_LIST_CAP must not pin
    entry lists forever: the free list never exceeds the cap."""
    from repro.sim.engine import _FREE_LIST_CAP

    engine = Engine()
    burst = _FREE_LIST_CAP + 500
    for _ in range(burst):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_dispatched == burst
    assert len(engine._free) <= _FREE_LIST_CAP
    # and the recycled entries are actually reused: scheduling a second
    # burst drains the free list instead of allocating
    before = len(engine._free)
    for _ in range(before):
        engine.schedule(1, lambda: None)
    assert len(engine._free) == 0


def test_recycled_entries_do_not_leak_between_events():
    """An entry recycled mid-run carries no stale callback/args: every
    dispatch sees exactly the payload scheduled for it."""
    engine = Engine()
    seen = []
    # chain long enough to cycle through the same recycled entries
    def tick(n):
        seen.append(n)
        if n < 50:
            engine.schedule(1, tick, n + 1)

    engine.schedule(1, tick, 0)
    engine.run()
    assert seen == list(range(51))


def test_integer_timestamps_survive_int_only_chains():
    """The engine never coerces timestamps: an int-anchored chain
    (``schedule_at`` an int, then int delays — ``now`` stays int inside
    the chain) keeps exact integer arithmetic even past 2**53, where
    consecutive integers stop being representable as floats."""
    engine = Engine()
    big = 2 ** 53
    times = []

    def tick():
        times.append(engine.now)
        if len(times) < 3:
            engine.schedule(1, tick)  # int + int: stays int

    engine.schedule_at(big, tick)
    engine.run()
    assert times == [big, big + 1, big + 2]
    assert all(isinstance(t, int) for t in times)
    # the float chain would have collapsed: big+1.0 rounds back to big
    assert float(big) + 1.0 == float(big)


def test_horizon_empty_queue_is_infinite():
    import math

    engine = Engine()
    assert engine.horizon() == math.inf
    engine.schedule(5, lambda: None)
    engine.run()
    assert engine.horizon() == math.inf


def test_horizon_reports_earliest_event_and_ties_at_now():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.schedule(3, lambda: None)
    assert engine.horizon() == 3

    # an event scheduled exactly at now is part of the horizon:
    # horizon() == now means this cycle still has undispatched work
    engine2 = Engine()
    probe = []

    def at_now():
        engine2.schedule(0, lambda: None)
        probe.append(engine2.horizon())

    engine2.schedule(7, at_now)
    engine2.run()
    assert probe == [7.0]


def test_checkpoint_resume_protocol():
    engine = Engine()
    engine.schedule(100, lambda: None)
    now, seq, dispatched = engine.checkpoint()
    assert (now, dispatched) == (0.0, 0)

    engine.resume_at(40.0)  # within the horizon: clock moves, no dispatch
    assert engine.now == 40.0
    assert engine.events_dispatched == 0
    # dispatch counts attribute to the window via checkpoint deltas
    engine.run()
    assert engine.events_dispatched - dispatched == 1


def test_resume_at_rejects_backwards_and_past_horizon():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.resume_at(5.0)
    with pytest.raises(SimulationError):
        engine.resume_at(4.0)  # backwards
    with pytest.raises(SimulationError):
        engine.resume_at(10.5)  # past the queued Tier-1 event
    # exactly at the horizon is legal (the event has not been skipped)
    engine.resume_at(10.0)
    assert engine.now == 10.0
