"""Two-tier clock attribution: counter reconciliation, the per-scheme
decline rate on the paper's quick cell, the spans_suppressed guard, and
the tier section in ``repro analyze``."""

import dataclasses
import json

import pytest

from repro.cpu.system import System
from repro.experiments.runner import SCHEMES, run_one
from repro.obs import log
from repro.sim.config import default_config
from repro.sim.window import ClockStats, run_closed_form
from repro.telemetry import write_artifacts
from repro.telemetry.analyze import analyze
from repro.workloads.spec import per_core_spec


def batch_config(**overrides):
    base = dataclasses.replace(default_config(scale=0.25), cores=2,
                               batch_window=64)
    return dataclasses.replace(base, **overrides)


def make_system(config, scheme_key="silc", workload="mcf", misses=200):
    setup = SCHEMES[scheme_key]
    return System(config,
                  scheme_factory=setup.factory,
                  workload=per_core_spec(workload, config),
                  misses_per_core=misses,
                  alloc_policy=setup.alloc_policy,
                  mode="miss", seed=7, warmup_fraction=0.0)


# ---------------------------------------------------------------------------
# reconciliation
# ---------------------------------------------------------------------------
def test_clock_counters_reconcile_exactly():
    result = run_one("silc", "mcf", batch_config(), misses_per_core=300,
                     seed=11, warmup_fraction=0.0)
    extras = result.extras
    assert extras["cf.dispatches_total"] == (
        extras["cf.dispatches_fused"] + extras["cf.dispatches_generic"])
    assert extras["cf.dispatches_fused"] == (
        extras["cf.fused_issue"] + extras["cf.fused_complete_fast"]
        + extras["cf.fused_complete_turbo"])
    assert extras["cf.dispatches_generic"] == (
        extras["cf.generic_certificate"]
        + extras["cf.generic_unrecognized"])
    # the fallback histogram sums to the generic total
    fallback = sum(v for k, v in extras.items()
                   if k.startswith("cf.fallback."))
    assert fallback == extras["cf.dispatches_generic"]
    # every fast-path consult landed in exactly one bucket
    consults = extras["cf.fast_accepted"] + extras["cf.fast_declined"]
    assert consults > 0
    assert extras["cf.decline_rate"] == pytest.approx(
        extras["cf.fast_declined"] / consults)


def test_observation_extras_never_reach_the_wire_form():
    result = run_one("silc", "mcf", batch_config(), misses_per_core=200,
                     seed=3, warmup_fraction=0.0)
    assert any(k.startswith("cf.") for k in result.extras)
    wire = json.dumps(result.to_dict(), sort_keys=True)
    assert "cf." not in wire
    assert "spans_suppressed" not in wire
    # and the scalar twin is byte-identical despite carrying no cf.*
    scalar = run_one("silc", "mcf", batch_config(batch_window=0),
                     misses_per_core=200, seed=3, warmup_fraction=0.0)
    assert not any(k.startswith("cf.") for k in scalar.extras)
    assert wire == json.dumps(scalar.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# the paper-scale decline rate (acceptance: 0.73 +/- 0.05 on quick mcf)
# ---------------------------------------------------------------------------
def test_silc_decline_rate_on_the_quick_mcf_cell():
    config = dataclasses.replace(default_config(), mshr_entries=128,
                                 batch_window=256)
    result = run_one("silc", "mcf", config, misses_per_core=1500,
                     seed=1234)
    rate = result.extras["cf.decline_rate"]
    assert 0.68 <= rate <= 0.78, f"decline rate drifted: {rate:.4f}"


# ---------------------------------------------------------------------------
# spans_suppressed guard
# ---------------------------------------------------------------------------
def test_spans_suppressed_flag_and_warning():
    """``System.run`` never routes a span-tracing run through the
    evaluator; if a future gate change does, the suppression must be
    loud — extras flag plus one structured warning."""
    config = batch_config(telemetry_window=2000, span_sample_rate=1)
    system = make_system(config)
    assert system.spans is not None
    for core in system.cores:
        core.start()
    system._halt_on_done = True
    log.reset_once()
    with log.capture() as records:
        run_closed_form(system)
    assert system._spans_suppressed is True
    warnings = [r for r in records if r["event"] == "spans_suppressed"]
    assert len(warnings) == 1
    assert warnings[0]["level"] == "warning"
    assert warnings[0]["scheme"] == "silcfm"
    result = system._result(0.0)
    assert result.extras["spans_suppressed"] == 1.0
    assert "spans_suppressed" not in json.dumps(result.to_dict())

    # warn_once: a second suppressed run in the same process stays quiet
    system2 = make_system(config)
    for core in system2.cores:
        core.start()
    system2._halt_on_done = True
    with log.capture() as records2:
        run_closed_form(system2)
    assert system2._spans_suppressed is True
    assert not [r for r in records2 if r["event"] == "spans_suppressed"]
    log.reset_once()


def test_system_run_gates_span_runs_off_the_evaluator():
    config = batch_config(telemetry_window=2000, span_sample_rate=1)
    result = run_one("silc", "mcf", config, misses_per_core=200, seed=5,
                     warmup_fraction=0.0)
    # generic dispatch ran: spans populated, nothing suppressed
    assert "spans_suppressed" not in result.extras
    assert result.telemetry["spans"]["spans"] > 0
    assert not any(k.startswith("cf.dispatches") for k in result.extras)


# ---------------------------------------------------------------------------
# ClockStats unit surface
# ---------------------------------------------------------------------------
def test_clock_stats_extras_shape():
    clock = ClockStats()
    clock.dispatched = 10
    clock.fused_issue = 4
    clock.fused_complete_fast = 2
    clock.fused_complete_turbo = 1
    clock.generic_certificate = 2
    clock.generic_unrecognized = 1
    clock.fallback["shape:tick"] = 1
    assert clock.fused == 7
    assert clock.generic == 3
    extras = clock.as_extras()
    assert extras["cf.dispatches_total"] == 10.0
    assert extras["cf.dispatches_fused"] == 7.0
    assert extras["cf.dispatches_generic"] == 3.0
    assert extras["cf.fallback.shape:tick"] == 1.0


# ---------------------------------------------------------------------------
# analyze renders the tier section
# ---------------------------------------------------------------------------
def test_analyze_renders_tier_attribution_from_a_series(tmp_path):
    config = batch_config(telemetry_window=2000)
    result = run_one("silc", "mcf", config, misses_per_core=300, seed=9,
                     warmup_fraction=0.0)
    assert result.telemetry is not None
    series, _trace = write_artifacts(tmp_path, "silc-mcf",
                                     result.telemetry)
    report = analyze(series)
    assert "Two-tier clock attribution" in report
    assert "fused inline" in report
    assert "decline rate" in report
    # the rendered totals agree with the run's own extras
    total = result.extras["cf.dispatches_total"]
    assert f"{total:,.0f} total" in report
