"""Tests for the command-line interface."""

import dataclasses

import pytest

import repro.__main__ as cli
from repro.sim.config import default_config
from repro.workloads.io import trace_length


def test_schemes_listing(capsys):
    assert cli.main(["schemes"]) == 0
    out = capsys.readouterr().out
    assert "silc" in out and "cameo" in out.lower()


def test_suite_listing(capsys):
    assert cli.main(["suite"]) == 0
    out = capsys.readouterr().out
    for name in ("mcf", "xalancbmk", "lbm"):
        assert name in out


def test_trace_generation(tmp_path, capsys):
    path = tmp_path / "t.trc"
    assert cli.main(["trace", "lbm", str(path), "--misses", "500"]) == 0
    assert trace_length(path) == 500


def test_run_command(capsys, monkeypatch):
    # shrink the system so the CLI test stays fast
    small = dataclasses.replace(default_config(scale=0.25), cores=2)
    monkeypatch.setattr(cli, "_config", lambda scale, args=None: small)
    assert cli.main(["run", "silc", "mcf", "--misses", "400"]) == 0
    out = capsys.readouterr().out
    assert "NM access rate" in out
    assert "EDP" in out


def test_compare_command(capsys, monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=2)
    monkeypatch.setattr(cli, "_config", lambda scale, args=None: small)
    assert cli.main(["compare", "mcf", "--schemes", "cam", "silc",
                     "--misses", "400"]) == 0
    out = capsys.readouterr().out
    assert "Speedup" in out
    assert "#" in out  # the bar chart rendered


def test_check_flag_attaches_the_oracle(capsys, monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=1)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    seen = {}
    real_run_one = cli.run_one

    def spy(scheme, benchmark, config, **kwargs):
        seen["check_interval"] = config.check_interval
        return real_run_one(scheme, benchmark, config, **kwargs)

    monkeypatch.setattr(cli, "run_one", spy)
    assert cli.main(["run", "silc", "mcf", "--misses", "200",
                     "--check-every", "50"]) == 0
    assert seen["check_interval"] == 50
    assert cli.main(["run", "silc", "mcf", "--misses", "200",
                     "--check"]) == 0
    assert seen["check_interval"] == cli.DEFAULT_CHECK_EVERY


def test_check_flags_left_off_leave_config_unchecked(monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=1)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    assert cli._config(None, None).check_interval == 0


def test_non_positive_check_interval_rejected(monkeypatch, capsys):
    with pytest.raises(SystemExit):
        cli.main(["run", "silc", "mcf", "--check-every", "0"])


def test_run_with_telemetry_writes_artifacts(tmp_path, capsys, monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=2)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    assert cli.main(["run", "silc", "mcf", "--misses", "400", "--telemetry",
                     "--telemetry-out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "telemetry:" in out
    assert (tmp_path / "silc-mcf.series.json").exists()
    assert (tmp_path / "silc-mcf.trace.json").exists()


def test_telemetry_window_implies_telemetry(monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=1)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    seen = {}
    real_run_one = cli.run_one

    def spy(scheme, benchmark, config, **kwargs):
        seen["window"] = config.telemetry_window
        return real_run_one(scheme, benchmark, config, **kwargs)

    monkeypatch.setattr(cli, "run_one", spy)
    assert cli.main(["run", "silc", "mcf", "--misses", "200",
                     "--telemetry-window", "2500",
                     "--telemetry-out", "/tmp/_cli_telemetry_test"]) == 0
    assert seen["window"] == 2500


def test_non_positive_telemetry_window_rejected():
    with pytest.raises(SystemExit):
        cli.main(["run", "silc", "mcf", "--telemetry-window", "0"])


def test_trace_scheme_writes_chrome_trace(tmp_path, capsys, monkeypatch):
    from repro.telemetry import validate_chrome_trace

    small = dataclasses.replace(default_config(scale=0.25), cores=2)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    path = tmp_path / "run.json"
    assert cli.main(["trace", "mcf", str(path), "--scheme", "silc",
                     "--misses", "400"]) == 0
    assert validate_chrome_trace(str(path)) > 0
    assert "Perfetto" in capsys.readouterr().out


def test_bench_quick_command(tmp_path, capsys, monkeypatch):
    import repro.experiments.bench as bench

    payload = {
        "schema": bench.BENCH_SCHEMA_VERSION,
        "date": "2026-01-02",
        "quick": True,
        "seed": bench.BENCH_SEED,
        "platform": {},
        "cells": [{"scheme": "silc", "workload": "mcf", "wall_seconds": 0.5,
                   "accesses_per_sec": 12000.0, "accesses": 6000,
                   "misses_per_core": 1500, "elapsed_cycles": 1.0,
                   "access_rate": 0.5}],
        "throughput": {"total_wall_seconds": 0.5, "total_accesses": 6000,
                       "accesses_per_sec": 12000.0, "batch_speedup": 1.62},
        "figures_of_merit": {"speedup_over_nonm": {}},
        "batch_curve": {"variants": ["silc"], "workloads": ["mcf"],
                        "misses_per_core": 1500,
                        "points": [{"batch_window": 0, "wall_seconds": 0.5,
                                    "speedup": 1.0},
                                   {"batch_window": 256, "wall_seconds": 0.31,
                                    "speedup": 1.62}]},
    }
    seen = {}

    def fake_run_bench(quick=False, **kwargs):
        seen["quick"] = quick
        return payload

    monkeypatch.setattr(bench, "run_bench", fake_run_bench)
    assert cli.main(["bench", "--quick", "--out-dir", str(tmp_path)]) == 0
    assert seen["quick"] is True
    assert (tmp_path / "BENCH_2026-01-02.json").exists()
    out = capsys.readouterr().out
    assert "bench (quick)" in out
    assert "batch speedup 1.62x" in out
    assert "closed-form speedup curve" in out
    assert "w=256: 1.62x" in out
    assert "wrote" in out


def test_run_with_spans_then_analyze(tmp_path, capsys, monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=2)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    assert cli.main(["run", "silc", "mcf", "--misses", "400",
                     "--span-sample-rate", "1",
                     "--telemetry-out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "spans:" in out  # the run advertises the analyze command
    series = tmp_path / "silc-mcf.series.json"
    assert cli.main(["analyze", str(series), "--top", "3"]) == 0
    report = capsys.readouterr().out
    assert "Latency attribution" in report
    assert "Per-stage service time (cycles)" in report
    assert "Table I row breakdown" in report


def test_analyze_rejects_spanless_artifact(tmp_path, capsys):
    path = tmp_path / "plain.series.json"
    path.write_text('{"schema": 2, "samples": []}')
    assert cli.main(["analyze", str(path)]) == 1
    assert "analyze:" in capsys.readouterr().err


def test_span_rate_implies_telemetry(monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=1)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    seen = {}
    real_run_one = cli.run_one

    def spy(scheme, benchmark, config, **kwargs):
        seen["window"] = config.telemetry_window
        seen["rate"] = config.span_sample_rate
        return real_run_one(scheme, benchmark, config, **kwargs)

    monkeypatch.setattr(cli, "run_one", spy)
    assert cli.main(["run", "silc", "mcf", "--misses", "200",
                     "--span-sample-rate", "8",
                     "--telemetry-out", "/tmp/_cli_span_test"]) == 0
    assert seen["window"] == cli.DEFAULT_TELEMETRY_WINDOW
    assert seen["rate"] == 8


def test_non_positive_span_rate_rejected():
    with pytest.raises(SystemExit):
        cli.main(["run", "silc", "mcf", "--span-sample-rate", "0"])


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        cli.main(["run", "bogus", "mcf"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        cli.main(["frobnicate"])


def test_serve_and_submit_round_trip(tmp_path, capsys, monkeypatch):
    """End-to-end over a real subprocess service: serve on an ephemeral
    port, submit twice (simulate, then cache), shut down via a client."""
    import asyncio
    import os
    import re
    import subprocess
    import sys as _sys
    import time as _time

    from repro.service import SweepClient

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(cli.__file__), os.pardir)
    env["PYTHONPATH"] = os.path.abspath(src)
    log = tmp_path / "serve.log"
    with open(log, "w") as log_file:
        server = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
             "--telemetry-interval", "0"],
            stdout=log_file, stderr=subprocess.STDOUT, env=env)
    try:
        deadline = _time.monotonic() + 30
        port = None
        while port is None and _time.monotonic() < deadline:
            match = re.search(r"serving on [\d.]+:(\d+)", log.read_text())
            if match:
                port = int(match.group(1))
            else:
                _time.sleep(0.05)
        assert port is not None, f"no banner in: {log.read_text()!r}"

        small = dataclasses.replace(default_config(scale=0.25), cores=2)
        monkeypatch.setattr(cli, "_config", lambda scale, args=None: small)
        argv = ["submit", "mcf", "--schemes", "cam", "silc",
                "--misses", "300", "--port", str(port)]
        assert cli.main(argv) == 0
        first = capsys.readouterr()
        assert "Speedup" in first.out and "#" in first.out
        assert "<- simulated" in first.err

        assert cli.main(argv + ["--tenant", "again"]) == 0
        second = capsys.readouterr()
        assert "Speedup" in second.out
        assert "<- cache" in second.err
        assert "<- simulated" not in second.err

        async def shut():
            async with SweepClient("127.0.0.1", port) as client:
                stats = await client.stats()
                await client.shutdown()
                return stats

        stats = asyncio.run(shut())
        assert stats["max_executions_per_key"] == 1
        assert stats["cells"]["by_source"]["cache"] == 3
        assert server.wait(timeout=30) == 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def test_submit_without_a_service_fails_cleanly(capsys):
    # a port from the ephemeral range that nothing listens on
    assert cli.main(["submit", "mcf", "--port", "1",
                     "--misses", "100"]) == 1
    assert "cannot reach the service" in capsys.readouterr().err
