"""Tests for the command-line interface."""

import dataclasses

import pytest

import repro.__main__ as cli
from repro.sim.config import default_config
from repro.workloads.io import trace_length


def test_schemes_listing(capsys):
    assert cli.main(["schemes"]) == 0
    out = capsys.readouterr().out
    assert "silc" in out and "cameo" in out.lower()


def test_suite_listing(capsys):
    assert cli.main(["suite"]) == 0
    out = capsys.readouterr().out
    for name in ("mcf", "xalancbmk", "lbm"):
        assert name in out


def test_trace_generation(tmp_path, capsys):
    path = tmp_path / "t.trc"
    assert cli.main(["trace", "lbm", str(path), "--misses", "500"]) == 0
    assert trace_length(path) == 500


def test_run_command(capsys, monkeypatch):
    # shrink the system so the CLI test stays fast
    small = dataclasses.replace(default_config(scale=0.25), cores=2)
    monkeypatch.setattr(cli, "_config", lambda scale, args=None: small)
    assert cli.main(["run", "silc", "mcf", "--misses", "400"]) == 0
    out = capsys.readouterr().out
    assert "NM access rate" in out
    assert "EDP" in out


def test_compare_command(capsys, monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=2)
    monkeypatch.setattr(cli, "_config", lambda scale, args=None: small)
    assert cli.main(["compare", "mcf", "--schemes", "cam", "silc",
                     "--misses", "400"]) == 0
    out = capsys.readouterr().out
    assert "Speedup" in out
    assert "#" in out  # the bar chart rendered


def test_check_flag_attaches_the_oracle(capsys, monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=1)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    seen = {}
    real_run_one = cli.run_one

    def spy(scheme, benchmark, config, **kwargs):
        seen["check_interval"] = config.check_interval
        return real_run_one(scheme, benchmark, config, **kwargs)

    monkeypatch.setattr(cli, "run_one", spy)
    assert cli.main(["run", "silc", "mcf", "--misses", "200",
                     "--check-every", "50"]) == 0
    assert seen["check_interval"] == 50
    assert cli.main(["run", "silc", "mcf", "--misses", "200",
                     "--check"]) == 0
    assert seen["check_interval"] == cli.DEFAULT_CHECK_EVERY


def test_check_flags_left_off_leave_config_unchecked(monkeypatch):
    small = dataclasses.replace(default_config(scale=0.25), cores=1)
    monkeypatch.setattr(cli, "default_config", lambda scale=None: small)
    assert cli._config(None, None).check_interval == 0


def test_non_positive_check_interval_rejected(monkeypatch, capsys):
    with pytest.raises(SystemExit):
        cli.main(["run", "silc", "mcf", "--check-every", "0"])


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        cli.main(["run", "bogus", "mcf"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        cli.main(["frobnicate"])
