"""Fleet-trace stitching: the journal, the per-cell worker span files,
and the merged Chrome-trace container with its s/f flow pairs."""

import dataclasses
import json

import pytest

from repro.experiments.executor import Cell, execute_cell_payload
from repro.obs import trace
from repro.obs.trace import (
    FleetTraceJournal,
    execute_cell_payload_traced,
    new_span_id,
    new_trace_id,
    stitch_fleet_trace,
    worker_span_path,
    write_fleet_trace,
    write_worker_span,
)
from repro.sim.config import default_config
from repro.telemetry.tracer import validate_chrome_trace

MISSES = 120


def tiny_cell(scheme="cam", workload="mcf"):
    config = dataclasses.replace(default_config(scale=0.25), cores=2)
    return Cell(scheme, workload, config, misses_per_core=MISSES)


def make_journal(tmp_path, *, with_error=False, dedup=False):
    """A synthetic two-tenant fleet: two jobs, three or four cells, two
    worker spans — enough structure to exercise every stitcher branch."""
    journal = FleetTraceJournal(tmp_path / "fleet")
    base = 1000.0
    trace_a, trace_b = new_trace_id(), new_trace_id()
    job_a = dict(kind="job", job_id="job-1", tenant="alice",
                 trace_id=trace_a, span_id=new_span_id(), parent_id=None,
                 status="completed", cells=2, t0=base, t1=base + 2.0)
    job_b = dict(kind="job", job_id="job-2", tenant="bob",
                 trace_id=trace_b, span_id=new_span_id(), parent_id=None,
                 status="completed", cells=1, t0=base + 0.5,
                 t1=base + 1.5)
    cells = [
        dict(kind="cell", job_id="job-1", tenant="alice", index=0,
             key="key-sim", source="simulated", status="ok",
             trace_id=trace_a, parent_id=job_a["span_id"],
             span_id=new_span_id(), t0=base + 0.1, t1=base + 1.0),
        dict(kind="cell", job_id="job-1", tenant="alice", index=1,
             key="key-cache", source="cache",
             status="error" if with_error else "ok",
             trace_id=trace_a, parent_id=job_a["span_id"],
             span_id=new_span_id(), t0=base + 1.0, t1=base + 1.2),
        dict(kind="cell", job_id="job-2", tenant="bob", index=0,
             key="key-sim" if dedup else "key-b",
             source="dedup" if dedup else "simulated", status="ok",
             trace_id=trace_b, parent_id=job_b["span_id"],
             span_id=new_span_id(), t0=base + 0.6, t1=base + 1.1),
    ]
    for record in [job_a, job_b] + cells:
        journal.record(**record)
    journal.close()

    spans_dir = journal.spans_dir
    spans_dir.mkdir(parents=True, exist_ok=True)
    worker_keys = ["key-sim"] if dedup else ["key-sim", "key-b"]
    for i, key in enumerate(worker_keys):
        container = {
            "traceEvents": [],
            "otherData": {"kind": "worker_span", "key": key,
                          "trace_id": trace_a, "parent_id": "p",
                          "span_id": new_span_id(),
                          "name": f"cell {key}", "pid": 4000 + i,
                          "t0": base + 0.15, "t1": base + 0.95,
                          "failed": False},
        }
        worker_span_path(spans_dir, key).write_text(
            json.dumps(container), encoding="utf-8")
    return journal.root


def flow_pairs(events):
    """{flow id: set of phases} for every fleet.flow event."""
    pairs = {}
    for event in events:
        if event.get("cat") == "fleet.flow":
            pairs.setdefault((event["name"], event["id"]),
                             set()).add(event["ph"])
    return pairs


def test_stitch_builds_a_valid_connected_fleet_trace(tmp_path):
    root = make_journal(tmp_path)
    container = stitch_fleet_trace(root)
    validate_chrome_trace(container["traceEvents"])
    other = container["otherData"]
    assert other["tenants"] == 2
    assert other["jobs"] == 2
    assert other["cells"] == 3
    assert other["worker_spans"] == 2

    events = container["traceEvents"]
    # every flow id appears exactly as one start + one finish
    pairs = flow_pairs(events)
    assert pairs and all(phases == {"s", "f"} for phases in pairs.values())
    names = {name for name, _ in pairs}
    assert names == {"tenant->job", "job->cell", "cell->worker"}
    # only the two keys with worker spans get cell->worker arrows
    assert sum(1 for name, _ in pairs if name == "cell->worker") == 2

    # service layout: tenants, jobs and cells on distinct pid-0 tracks
    service_tids = {e["tid"] for e in events
                    if e["pid"] == 0 and e["ph"] == "X"}
    assert len(service_tids) == 2 + 2 + 3
    worker_pids = {e["pid"] for e in events
                   if e.get("cat") == "fleet.worker"}
    assert worker_pids == {4000, 4001}


def test_stitch_rebases_timestamps_to_the_earliest_record(tmp_path):
    root = make_journal(tmp_path)
    events = stitch_fleet_trace(root)["traceEvents"]
    slice_ts = [e["ts"] for e in events if e["ph"] == "X"]
    assert min(slice_ts) < 10e6  # rebased: nowhere near epoch-seconds*1e6
    assert all(ts >= 0 for ts in slice_ts)


def test_dedup_cells_share_one_worker_span(tmp_path):
    root = make_journal(tmp_path, dedup=True)
    container = stitch_fleet_trace(root)
    validate_chrome_trace(container["traceEvents"])
    events = container["traceEvents"]
    pairs = flow_pairs(events)
    # both the simulated cell and the deduped cell point at the single
    # worker span — two arrows, one worker slice
    assert sum(1 for name, _ in pairs if name == "cell->worker") == 2
    assert sum(1 for e in events
               if e.get("cat") == "fleet.worker" and e["ph"] == "X") == 1
    # the dedup arrow's start is clamped inside the cell slice
    dedup_cell = next(e for e in events if e.get("cat") == "fleet.cell"
                      and e["args"].get("source") == "dedup")
    starts = [e for e in events if e.get("cat") == "fleet.flow"
              and e["name"] == "cell->worker" and e["ph"] == "s"
              and e["tid"] == dedup_cell["tid"]]
    assert len(starts) == 1
    assert (dedup_cell["ts"] <= starts[0]["ts"]
            <= dedup_cell["ts"] + dedup_cell["dur"])


def test_error_cells_keep_their_status_in_the_trace(tmp_path):
    root = make_journal(tmp_path, with_error=True)
    events = stitch_fleet_trace(root)["traceEvents"]
    statuses = {e["args"]["status"] for e in events
                if e.get("cat") == "fleet.cell"}
    assert statuses == {"ok", "error"}


def test_empty_journal_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text("", encoding="utf-8")
    with pytest.raises(ValueError):
        stitch_fleet_trace(path)
    with pytest.raises((ValueError, OSError)):
        stitch_fleet_trace(tmp_path / "nope")


def test_write_fleet_trace_validates_and_writes(tmp_path):
    root = make_journal(tmp_path)
    out = tmp_path / "fleet-trace.json"
    summary = write_fleet_trace(root, out)
    assert summary["kind"] == "fleet_trace"
    assert summary["cells"] == 3
    loaded = json.loads(out.read_text(encoding="utf-8"))
    validate_chrome_trace(loaded["traceEvents"])


def test_journal_survives_write_after_close(tmp_path):
    journal = FleetTraceJournal(tmp_path / "fleet")
    journal.close()
    journal.record(kind="job", job_id="late")  # no crash, silently dropped
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1  # just the meta record


def test_traced_payload_is_byte_identical_and_writes_a_span(tmp_path):
    cell = tiny_cell()
    ctx = {"key": cell.key(), "trace_id": new_trace_id(),
           "parent_id": new_span_id(), "spans_dir": str(tmp_path / "w")}
    plain_result, plain_error = execute_cell_payload(cell)
    traced_result, traced_error = execute_cell_payload_traced(cell, ctx)
    assert plain_error is None and traced_error is None
    assert (json.dumps(traced_result, sort_keys=True)
            == json.dumps(plain_result, sort_keys=True))

    span_file = worker_span_path(tmp_path / "w", cell.key())
    assert span_file.is_file()
    container = json.loads(span_file.read_text(encoding="utf-8"))
    other = container["otherData"]
    assert other["kind"] == "worker_span"
    assert other["key"] == cell.key()
    assert other["trace_id"] == ctx["trace_id"]
    assert other["failed"] is False
    assert other["t1"] >= other["t0"]
    # the span file is itself a loadable chrome-trace container
    validate_chrome_trace(container["traceEvents"])


def test_traced_payload_without_spans_dir_writes_nothing(tmp_path):
    cell = tiny_cell()
    result, error = execute_cell_payload_traced(cell, {"key": cell.key()})
    assert error is None and result is not None
    assert not list(tmp_path.iterdir())


def test_traced_payload_records_failures(tmp_path):
    cell = Cell("no-such-scheme", "mcf",
                dataclasses.replace(default_config(scale=0.25), cores=2),
                misses_per_core=MISSES)
    ctx = {"key": cell.key(), "trace_id": new_trace_id(),
           "spans_dir": str(tmp_path)}
    result, error = execute_cell_payload_traced(cell, ctx)
    assert result is None and error
    container = json.loads(
        worker_span_path(tmp_path, cell.key()).read_text(encoding="utf-8"))
    assert container["otherData"]["failed"] is True


def test_span_write_failure_never_fails_the_cell(tmp_path, monkeypatch):
    cell = tiny_cell()

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(trace, "write_worker_span", boom)
    result, error = execute_cell_payload_traced(
        cell, {"key": cell.key(), "spans_dir": str(tmp_path)})
    assert error is None and result is not None
