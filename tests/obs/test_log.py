"""Structured JSON-lines logging: levels, sinks, binding, dedup, and
the environment handoff that carries configuration into pool workers."""

import json
import os

import pytest

from repro.obs import log


@pytest.fixture(autouse=True)
def _clean_logging_state():
    """Every test starts from the default config and leaves no env."""
    yield
    log.configure(level="warning", path=None, stream=None,
                  propagate_env=False)
    log.reset_once()
    os.environ.pop(log.ENV_LEVEL, None)
    os.environ.pop(log.ENV_FILE, None)


def read_lines(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_records_are_json_lines_with_context(tmp_path):
    target = tmp_path / "log.jsonl"
    log.configure(level="info", path=str(target), propagate_env=False)
    logger = log.get_logger("repro.test", tenant="alice")
    logger.info("job_created", job="job-1", cells=3)
    records = read_lines(target)
    assert len(records) == 1
    record = records[0]
    assert record["level"] == "info"
    assert record["logger"] == "repro.test"
    assert record["event"] == "job_created"
    assert record["tenant"] == "alice"
    assert record["job"] == "job-1"
    assert record["cells"] == 3
    assert record["pid"] == os.getpid()
    assert isinstance(record["ts"], float)


def test_level_threshold_filters_lower_levels(tmp_path):
    target = tmp_path / "log.jsonl"
    log.configure(level="warning", path=str(target), propagate_env=False)
    logger = log.get_logger("repro.test")
    logger.debug("too_low")
    logger.info("also_too_low")
    logger.warning("kept")
    logger.error("kept_too")
    assert [r["event"] for r in read_lines(target)] == ["kept", "kept_too"]


def test_bind_returns_new_logger_with_merged_fields(tmp_path):
    target = tmp_path / "log.jsonl"
    log.configure(level="info", path=str(target), propagate_env=False)
    base = log.get_logger("repro.test", tenant="alice")
    bound = base.bind(job="job-9")
    bound.info("evt", cells=1)
    base.info("evt2")
    records = read_lines(target)
    assert records[0]["tenant"] == "alice" and records[0]["job"] == "job-9"
    # binding never mutates the parent
    assert "job" not in records[1]


def test_warn_once_emits_exactly_once(tmp_path):
    target = tmp_path / "log.jsonl"
    log.configure(level="warning", path=str(target), propagate_env=False)
    logger = log.get_logger("repro.test")
    assert logger.warn_once("spans_suppressed", scheme="silc") is True
    assert logger.warn_once("spans_suppressed", scheme="silc") is False
    assert len(read_lines(target)) == 1
    log.reset_once()
    assert logger.warn_once("spans_suppressed") is True


def test_capture_sees_records_below_the_threshold():
    log.configure(level="off", propagate_env=False)
    with log.capture() as records:
        log.get_logger("repro.test").debug("invisible_but_captured", x=1)
    assert [r["event"] for r in records] == ["invisible_but_captured"]
    assert records[0]["x"] == 1


def test_configure_propagates_to_env_and_back(tmp_path):
    target = tmp_path / "worker.jsonl"
    log.configure(level="debug", path=str(target), propagate_env=True)
    assert os.environ[log.ENV_LEVEL] == "debug"
    assert os.environ[log.ENV_FILE] == str(target)
    # a worker process adopts the env lazily; force simulates the fresh
    # interpreter the spawn start method gives pool workers
    log.configure(level="warning", path=None, stream=None,
                  propagate_env=False)
    log.configure_from_env(force=True)
    assert log.level_name() == "debug"
    log.get_logger("repro.worker").debug("from_worker")
    assert [r["event"] for r in read_lines(target)] == ["from_worker"]


def test_unserialisable_fields_do_not_crash_the_caller(tmp_path):
    target = tmp_path / "log.jsonl"
    log.configure(level="info", path=str(target), propagate_env=False)
    log.get_logger("repro.test").info("evt", obj=object())
    (record,) = read_lines(target)
    # repr fallback keeps the record a valid JSON line
    assert record["event"] == "evt"
    assert "object object" in record["obj"]


def test_unknown_level_is_rejected():
    with pytest.raises(ValueError):
        log.configure(level="verbose", propagate_env=False)
