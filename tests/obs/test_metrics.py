"""The metrics layer: exposition-format golden, histogram bucket
semantics, registry behaviour under concurrent writers/watchers, and
the in-tree exposition parser the CI witness assertions rely on."""

import math
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    MetricError,
    MetricsRegistry,
    parse_exposition,
    sample_value,
)


# ---------------------------------------------------------------------------
# exposition golden
# ---------------------------------------------------------------------------
def test_exposition_golden():
    """The rendered text is the exact Prometheus 0.0.4 document — HELP
    and TYPE headers, sorted label sets, cumulative buckets, sum and
    count — byte for byte."""
    reg = MetricsRegistry()
    cells = reg.counter("repro_cells_completed_total",
                        "Successful cell events by source.",
                        labelnames=("source",))
    cells.inc(3, source="simulated")
    cells.inc(source="cache")
    depth = reg.gauge("repro_inflight_keys", "Single-flight keys.")
    depth.set(2)
    hist = reg.histogram("repro_cache_hit_latency_seconds",
                         "Cache-hit latency.", buckets=(0.001, 0.01, 0.1))
    hist.observe(0.0004)
    hist.observe(0.01)
    hist.observe(5.0)
    assert reg.render() == (
        "# HELP repro_cells_completed_total Successful cell events by"
        " source.\n"
        "# TYPE repro_cells_completed_total counter\n"
        'repro_cells_completed_total{source="cache"} 1\n'
        'repro_cells_completed_total{source="simulated"} 3\n'
        "# HELP repro_inflight_keys Single-flight keys.\n"
        "# TYPE repro_inflight_keys gauge\n"
        "repro_inflight_keys 2\n"
        "# HELP repro_cache_hit_latency_seconds Cache-hit latency.\n"
        "# TYPE repro_cache_hit_latency_seconds histogram\n"
        'repro_cache_hit_latency_seconds_bucket{le="0.001"} 1\n'
        'repro_cache_hit_latency_seconds_bucket{le="0.01"} 2\n'
        'repro_cache_hit_latency_seconds_bucket{le="0.1"} 2\n'
        'repro_cache_hit_latency_seconds_bucket{le="+Inf"} 3\n'
        "repro_cache_hit_latency_seconds_sum 5.0104\n"
        "repro_cache_hit_latency_seconds_count 3\n"
    )


def test_exposition_parses_back_to_the_same_samples():
    reg = MetricsRegistry()
    counter = reg.counter("c_total", "c", labelnames=("kind",))
    counter.inc(7, kind="a")
    gauge = reg.gauge("g", "g")
    gauge.set(1.5)
    samples = parse_exposition(reg.render())
    assert sample_value(samples, "c_total", kind="a") == 7
    assert sample_value(samples, "g") == 1.5


# ---------------------------------------------------------------------------
# histogram buckets
# ---------------------------------------------------------------------------
def test_histogram_upper_bounds_are_inclusive():
    reg = MetricsRegistry()
    hist = reg.histogram("h", "h", buckets=(1.0, 2.0))
    hist.observe(1.0)   # le="1" inclusive
    hist.observe(2.0)   # le="2" inclusive
    hist.observe(2.0001)  # overflow
    snap = hist.snapshot()
    assert snap["1"] == 1
    assert snap["2"] == 2  # cumulative: includes the le="1" observation
    assert snap["+Inf"] == 3
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(5.0001)


def test_histogram_rejects_unsorted_or_empty_buckets():
    reg = MetricsRegistry()
    with pytest.raises(MetricError):
        reg.histogram("h1", "h", buckets=(2.0, 1.0))
    with pytest.raises(MetricError):
        reg.histogram("h2", "h", buckets=())
    with pytest.raises(MetricError):
        reg.histogram("h3", "h", buckets=(1.0, 1.0))


def test_histogram_trailing_inf_bucket_is_normalised():
    reg = MetricsRegistry()
    hist = reg.histogram("h", "h", buckets=(1.0, math.inf))
    assert hist.bounds == (1.0,)
    hist.observe(0.5)
    assert hist.snapshot()["+Inf"] == 1


def test_default_latency_buckets_cover_sub_ms_to_tens_of_seconds():
    bounds = metrics.DEFAULT_LATENCY_BUCKETS
    assert bounds[0] <= 0.001 and bounds[-1] >= 10.0
    assert list(bounds) == sorted(bounds)


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------
def test_counter_cannot_decrease_and_labels_must_match():
    reg = MetricsRegistry()
    counter = reg.counter("c_total", "c", labelnames=("kind",))
    with pytest.raises(MetricError):
        counter.inc(-1, kind="a")
    with pytest.raises(MetricError):
        counter.inc(1)  # missing label
    with pytest.raises(MetricError):
        counter.inc(1, kind="a", extra="b")


def test_duplicate_metric_names_are_rejected():
    reg = MetricsRegistry()
    reg.counter("c_total", "c")
    with pytest.raises(MetricError):
        reg.gauge("c_total", "again")


def test_callback_gauge_collects_at_render_time():
    reg = MetricsRegistry()
    box = {"v": 1.0}
    reg.gauge("g", "g").set_function(lambda: box["v"])
    assert sample_value(parse_exposition(reg.render()), "g") == 1.0
    box["v"] = 42.0
    assert sample_value(parse_exposition(reg.render()), "g") == 42.0


def test_failing_callback_gauge_renders_nan_not_raises():
    reg = MetricsRegistry()

    def boom():
        raise RuntimeError("collector died")

    reg.gauge("g", "g").set_function(boom)
    rendered = reg.render()
    assert "g NaN" in rendered


def test_registry_under_concurrent_writers_and_watchers():
    """Two incrementing threads race two scraping threads; every scrape
    must parse cleanly and the final count must be exact."""
    reg = MetricsRegistry()
    counter = reg.counter("c_total", "c", labelnames=("worker",))
    hist = reg.histogram("h", "h", buckets=(0.5, 1.0))
    errors = []
    iterations = 3000

    def writer(name):
        for i in range(iterations):
            counter.inc(worker=name)
            hist.observe((i % 3) * 0.5)

    def watcher():
        for _ in range(200):
            try:
                samples = parse_exposition(reg.render())
                # cumulative buckets are never decreasing mid-scrape
                assert (samples['h_bucket{le="0.5"}']
                        <= samples['h_bucket{le="1"}']
                        <= samples['h_bucket{le="+Inf"}'])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

    threads = ([threading.Thread(target=writer, args=(n,))
                for n in ("a", "b")]
               + [threading.Thread(target=watcher) for _ in range(2)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert counter.value(worker="a") == iterations
    assert counter.value(worker="b") == iterations
    assert hist.snapshot()["count"] == 2 * iterations


# ---------------------------------------------------------------------------
# parser strictness
# ---------------------------------------------------------------------------
def test_parser_rejects_malformed_lines():
    for bad in ("just words", "name{unclosed 1", "name =", "n 1 2 3 4"):
        with pytest.raises(MetricError):
            parse_exposition(bad)


def test_parser_skips_comments_and_handles_escapes():
    text = ('# HELP x help\n# TYPE x counter\n'
            'x{msg="a\\"b\\\\c\\nd"} 5\n')
    samples = parse_exposition(text)
    assert sample_value(samples, "x", msg='a"b\\c\nd') == 5


def test_parser_handles_inf_and_label_order():
    samples = parse_exposition('m{b="2",a="1"} +Inf\n')
    # canonical name sorts labels, so lookups are order-independent
    assert sample_value(samples, "m", a="1", b="2") == math.inf


def test_sample_value_raises_on_missing_sample():
    with pytest.raises(MetricError):
        sample_value({}, "nope")
