"""Tests for the optional refresh model."""

import dataclasses

from repro.dram.device import MemoryDevice
from repro.dram.request import Priority
from repro.dram.timing import DDR3_TIMINGS
from repro.sim.engine import Engine

REFRESHING = dataclasses.replace(DDR3_TIMINGS, t_refi=500, t_rfc=88)


def test_refresh_disabled_by_default():
    engine = Engine()
    MemoryDevice(engine, DDR3_TIMINGS, 1 << 20)
    assert engine.pending == 0  # no recurring refresh events queued


def test_refresh_fires_periodically():
    engine = Engine()
    device = MemoryDevice(engine, REFRESHING, 1 << 20)
    engine.run(until=REFRESHING.t_refi * 4 * 3.5)  # ~3.5 intervals (cpu cycles)
    assert all(c.refreshes >= 1 for c in device.channels)


def test_refresh_closes_rows():
    engine = Engine()
    device = MemoryDevice(engine, REFRESHING, 1 << 20)
    device.access(0, 64, False, Priority.DEMAND, None)
    engine.run(until=100)
    channel = device.channels[0]
    assert channel._banks[0].open_row is not None
    engine.run(until=REFRESHING.t_refi * 4 + 10)
    assert channel._banks[0].open_row is None


def test_access_during_refresh_waits():
    engine = Engine()
    device = MemoryDevice(engine, REFRESHING, 1 << 20)
    cpm = REFRESHING.cpu_cycles_per_mem
    refresh_at = REFRESHING.t_refi * cpm
    engine.run(until=refresh_at + 1)
    done = []
    device.access(0, 64, False, Priority.DEMAND, done.append)
    # NOTE: with refresh enabled the event queue never drains (the
    # refresh chain reschedules forever), so run to a horizon
    engine.run(until=refresh_at * 3)
    assert done, "access never completed"
    # the access could not start until tRFC elapsed
    assert done[0] >= refresh_at + REFRESHING.t_rfc * cpm


def test_refresh_costs_throughput():
    def run(timings):
        engine = Engine()
        device = MemoryDevice(engine, timings, 1 << 20)
        remaining = [256]
        for i in range(256):
            device.access((i * 64) % (1 << 20), 64, False, Priority.DEMAND,
                          lambda t: remaining.__setitem__(0, remaining[0] - 1))
        engine.run(until=10_000_000)
        return engine.now if remaining[0] == 0 else float("inf")

    heavy = dataclasses.replace(DDR3_TIMINGS, t_refi=200, t_rfc=100)
    assert run(heavy) > run(DDR3_TIMINGS)
