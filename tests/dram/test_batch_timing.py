"""Property proof for the batch engine's DRAM kernel: random request
windows through :func:`repro.dram.batch.window_timing` must produce the
same completion times — and leave the channel in the same state — as
replaying the chunks one at a time through ``Bank.prepare`` and the bus
recurrence (the scalar fast path's math, written independently here).

Element-wise ``==`` on floats is deliberate: the equivalence contract
is bit-identical, not approximately-equal, so any reassociated float
add in the vectorized kernel fails immediately.
"""

from hypothesis import example, given, settings, strategies as st

from repro.dram.batch import VECTOR_THRESHOLD, window_timing
from repro.dram.channel import Channel
from repro.dram.timing import DRAMTimings
from repro.sim.engine import Engine

TIMINGS = DRAMTimings(name="prop", channels=1, banks_per_rank=4)
N_BANKS = TIMINGS.banks
N_ROWS = 3

# one chunk: (bank, row, size).  Sizes mix sub-beat, subblock, the
# 72 B tag-and-data burst, and row-sized transfers.
chunk = st.tuples(st.integers(0, N_BANKS - 1), st.integers(0, N_ROWS - 1),
                  st.sampled_from([8, 32, 64, 72, 256, 1024]))
windows = st.lists(chunk, min_size=0, max_size=16)
#: a warmup prefix replayed identically on both channels so windows
#: start from arbitrary open-row / busy-until / bus states.
prefixes = st.lists(chunk, min_size=0, max_size=8)


def _fresh_channel() -> Channel:
    return Channel(Engine(), TIMINGS)


def _scalar_replay(channel, chunks, now):
    """Independent scalar reference: per-chunk ``Bank.prepare`` + the
    bus chain + the stats adds, exactly as ``submit_fast`` does them."""
    t = channel._t
    cpm = channel._cpm
    stats = channel.stats
    bus_free = channel._bus_free
    completions = []
    for bank_index, row, size in chunks:
        ready_at = channel._banks[bank_index].prepare(row, now)
        burst = t.burst_mem_cycles(size) * cpm
        data_start = ready_at if ready_at > bus_free else bus_free
        bus_free = data_start + burst
        stats.bus_busy_cycles += burst
        stats.total_queue_wait += data_start - now
        completions.append(bus_free)
    channel._bus_free = bus_free
    return completions


def _state(channel):
    return (
        channel._bus_free,
        channel.stats.bus_busy_cycles,
        channel.stats.total_queue_wait,
        [(b.open_row, b.ready, b._activated_at,
          b.stats.row_hits, b.stats.row_closed, b.stats.row_conflicts)
         for b in channel._banks],
    )


def _assert_equivalent(prefix, window, now):
    vec = _fresh_channel()
    ref = _fresh_channel()
    if prefix:
        assert _scalar_replay(vec, prefix, 0.0) == \
            _scalar_replay(ref, prefix, 0.0)
    got = window_timing(vec, window, now)
    expected = _scalar_replay(ref, window, now)
    assert got == expected
    assert _state(vec) == _state(ref)


# pinned boundary cases: each is a shape that would falsify a specific
# batch-kernel bug (they predate hypothesis shrinking — keep them even
# if the strategies change).
@example(prefix=[], window=[(0, 0, 64)] * VECTOR_THRESHOLD, now=0.0)
# conflict seed: the prefix opens row 0, the window's first access to
# bank 0 must pay the precharge/activate chain (drop-row-close shape)
@example(prefix=[(0, 0, 64)], window=[(0, 1, 64)] * VECTOR_THRESHOLD,
         now=100.0)
# stale-busy shape: back-to-back same-bank hits must chain off the
# bank's advancing ready time, not its pre-window value
@example(prefix=[(1, 2, 1024)],
         window=[(1, 2, 64), (1, 2, 64), (1, 2, 64), (1, 2, 64)], now=0.0)
# bus-bound window: four banks ready at once serialize on the data bus
@example(prefix=[], window=[(0, 0, 256), (1, 0, 256), (2, 0, 256),
                            (3, 0, 256)], now=5.5)
@given(prefix=prefixes, window=windows,
       now=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                     allow_infinity=False))
@settings(deadline=None, max_examples=200)
def test_window_timing_matches_scalar_replay(prefix, window, now):
    _assert_equivalent(prefix, window, now)


@given(prefix=prefixes,
       window=st.lists(
           st.tuples(st.integers(0, N_BANKS - 1),
                     st.sampled_from([8, 64, 72, 1024])),
           min_size=VECTOR_THRESHOLD, max_size=16),
       row_of_bank=st.lists(st.integers(0, N_ROWS - 1), min_size=N_BANKS,
                            max_size=N_BANKS),
       now=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                     allow_infinity=False))
@settings(deadline=None, max_examples=200)
def test_vector_path_matches_scalar_replay(prefix, window, row_of_bank, now):
    """Same property restricted to windows with one row per bank group —
    the shape the numpy path (rather than its scalar fallback) handles —
    so the CAS-chain accumulate is exercised on every example."""
    chunks = [(bank, row_of_bank[bank], size) for bank, size in window]
    _assert_equivalent(prefix, chunks, now)
