"""Tests for the channel scheduler, bank timing and device splitting."""

import pytest

from repro.dram.device import MemoryDevice
from repro.dram.request import DRAMRequest, Priority
from repro.dram.timing import DDR3_TIMINGS, HBM2_TIMINGS
from repro.sim.engine import Engine

CAP = 1 << 20


def make_device(timings=DDR3_TIMINGS):
    engine = Engine()
    return engine, MemoryDevice(engine, timings, CAP)


def run_access(device, engine, addr, size, is_write=False,
               priority=Priority.DEMAND):
    done = []
    device.access(addr, size, is_write, priority, done.append)
    engine.run()
    assert len(done) == 1
    return done[0]


def test_single_read_latency_is_closed_bank_access():
    engine, device = make_device()
    t = run_access(device, engine, 0, 64)
    expected = (DDR3_TIMINGS.t_rcd + DDR3_TIMINGS.t_cas
                + DDR3_TIMINGS.burst_mem_cycles(64)) * 4
    assert t == pytest.approx(expected)


def test_row_hit_is_faster_than_first_access():
    engine, device = make_device()
    t1 = run_access(device, engine, 0, 64)
    start = engine.now
    done = []
    device.access(0, 64, False, Priority.DEMAND, done.append)
    engine.run()
    t2 = done[0] - start
    assert t2 < t1
    expected = (DDR3_TIMINGS.t_cas + DDR3_TIMINGS.burst_mem_cycles(64)) * 4
    assert t2 == pytest.approx(expected)


def test_row_conflict_pays_precharge():
    engine, device = make_device()
    run_access(device, engine, 0, 64)  # opens row 0 on (ch0, bank0)
    # same channel + bank, different row: stride = row_bytes * channels
    conflict_addr = DDR3_TIMINGS.row_bytes * DDR3_TIMINGS.channels * DDR3_TIMINGS.banks
    start = engine.now
    done = []
    device.access(conflict_addr, 64, False, Priority.DEMAND, done.append)
    engine.run()
    latency = done[0] - start
    hit = (DDR3_TIMINGS.t_cas + DDR3_TIMINGS.burst_mem_cycles(64)) * 4
    assert latency > hit


def test_channel_stats_track_reads_and_writes():
    engine, device = make_device()
    run_access(device, engine, 0, 64)
    run_access(device, engine, 64, 64, is_write=True)
    stats = device.stats()
    assert stats.reads == 1
    assert stats.writes == 1
    assert stats.bytes_read == 64
    assert stats.bytes_written == 64


def test_priority_classes_accounted_separately():
    engine, device = make_device()
    run_access(device, engine, 0, 64, priority=Priority.DEMAND)
    run_access(device, engine, 64, 64, priority=Priority.BACKGROUND)
    stats = device.stats()
    assert stats.demand_bytes == 64
    assert stats.background_bytes == 64


def test_demand_beats_background_in_scheduling():
    engine, device = make_device()
    order = []
    # fill one channel with a background request, then a demand one;
    # submit both before running so the scheduler chooses.
    device.access(0, 64, False, Priority.BACKGROUND, lambda t: order.append("bg"))
    device.access(64 * DDR3_TIMINGS.channels, 64, False, Priority.DEMAND,
                  lambda t: order.append("demand"))
    # both land on channel 0 (64 * channels keeps channel 0)
    engine.run()
    assert set(order) == {"bg", "demand"}


def test_large_access_splits_across_channels():
    engine, device = make_device(HBM2_TIMINGS)
    done = []
    device.access(0, 2048, False, Priority.DEMAND, done.append)
    engine.run()
    assert len(done) == 1
    stats = device.stats()
    assert stats.bytes_read == 2048
    # 2 KB at 64 B interleave = 32 chunks over 8 channels = 4 per channel
    per_channel = [c.stats.reads for c in device.channels]
    assert per_channel == [4] * 8


def test_sub_64b_access_is_single_chunk():
    engine, device = make_device()
    run_access(device, engine, 8, 8)
    assert device.stats().reads == 1


def test_unaligned_access_crossing_boundary_splits():
    engine, device = make_device()
    run_access(device, engine, 60, 8)  # crosses the 64 B line
    assert device.stats().reads == 2


def test_out_of_range_access_rejected():
    engine, device = make_device()
    with pytest.raises(ValueError):
        device.access(CAP, 64, False)
    with pytest.raises(ValueError):
        device.access(CAP - 32, 64, False)
    with pytest.raises(ValueError):
        device.access(0, 0, False)


def test_bandwidth_under_saturation_approaches_peak():
    """Back-to-back sequential reads should keep the bus mostly busy."""
    engine, device = make_device(HBM2_TIMINGS)
    n = 512
    remaining = [n]

    def done(_):
        remaining[0] -= 1

    for i in range(n):
        device.access((i * 64) % CAP, 64, False, Priority.DEMAND, done)
    engine.run()
    assert remaining[0] == 0
    utilization = device.utilization(engine.now)
    assert utilization > 0.5


def test_mean_queue_wait_grows_under_load():
    engine, device = make_device()
    # hammer a single channel (stride = 64 * channels keeps channel 0)
    stride = 64 * DDR3_TIMINGS.channels
    for i in range(64):
        device.access((i * stride) % CAP, 64, False, Priority.DEMAND, None)
    engine.run()
    stats = device.stats()
    assert stats.max_queue_depth > 1
    assert stats.mean_queue_wait > 0
