"""Tests for address -> (channel, bank, row) mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.mapping import CHANNEL_INTERLEAVE_BYTES, AddressMapper
from repro.dram.timing import DDR3_TIMINGS, HBM2_TIMINGS


def test_consecutive_64b_units_rotate_channels():
    mapper = AddressMapper(HBM2_TIMINGS)
    channels = [mapper.map(i * 64).channel for i in range(16)]
    assert channels == [i % 8 for i in range(16)]


def test_within_unit_same_coordinates():
    mapper = AddressMapper(DDR3_TIMINGS)
    a = mapper.map(128)
    b = mapper.map(128 + 63)
    assert (a.channel, a.bank, a.row) == (b.channel, b.bank, b.row)
    assert b.column_offset == a.column_offset + 63


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        AddressMapper(DDR3_TIMINGS).map(-1)


def test_rows_rotate_banks():
    mapper = AddressMapper(DDR3_TIMINGS)
    # same channel, consecutive rows within the channel
    row_bytes = DDR3_TIMINGS.row_bytes
    channels = DDR3_TIMINGS.channels
    # addresses that stay on channel 0, one per channel-row
    addr_a = 0
    addr_b = row_bytes * channels  # next row's worth on channel 0
    a, b = mapper.map(addr_a), mapper.map(addr_b)
    assert a.channel == b.channel == 0
    assert b.bank == (a.bank + 1) % DDR3_TIMINGS.banks


@given(addr=st.integers(min_value=0, max_value=1 << 32))
def test_coordinates_always_in_range(addr):
    mapper = AddressMapper(HBM2_TIMINGS)
    c = mapper.map(addr)
    assert 0 <= c.channel < HBM2_TIMINGS.channels
    assert 0 <= c.bank < HBM2_TIMINGS.banks
    assert c.row >= 0
    assert 0 <= c.column_offset < HBM2_TIMINGS.row_bytes


@given(a=st.integers(min_value=0, max_value=1 << 24),
       b=st.integers(min_value=0, max_value=1 << 24))
def test_mapping_is_injective_over_bytes(a, b):
    """Distinct byte addresses never collide on the full coordinate."""
    if a == b:
        return
    mapper = AddressMapper(HBM2_TIMINGS)
    ca, cb = mapper.map(a), mapper.map(b)
    assert (ca.channel, ca.bank, ca.row, ca.column_offset) != (
        cb.channel, cb.bank, cb.row, cb.column_offset)
