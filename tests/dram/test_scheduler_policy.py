"""Channel-scheduler policy tests: FR-FCFS, priority sharing,
starvation protection."""

from repro.dram.channel import Channel
from repro.dram.mapping import AddressMapper
from repro.dram.request import DRAMRequest, Priority
from repro.dram.timing import DDR3_TIMINGS
from repro.sim.engine import Engine


def make_channel():
    engine = Engine()
    return engine, Channel(engine, DDR3_TIMINGS)


def request(engine, addr, priority=Priority.DEMAND, order=None):
    mapper = AddressMapper(DDR3_TIMINGS)
    # map through channel-local coordinates like the device would
    coords = mapper.map(addr * DDR3_TIMINGS.channels)
    req = DRAMRequest(addr=addr, size=64, is_write=False, priority=priority,
                      arrival=engine.now, coords=coords,
                      on_complete=(lambda t: order.append(addr))
                      if order is not None else None)
    return req


def test_row_hits_scheduled_before_conflicts():
    engine, channel = make_channel()
    order = []
    row_bytes = DDR3_TIMINGS.row_bytes  # 16 x 64 B units per row
    # saturate the pipeline with row-0/bank-0 accesses
    for i in range(Channel.pipeline_depth):
        channel.submit(request(engine, (i % 12) * 64, order=order))
    # one bank-0 request to a different row, then more row-0 hits
    conflict_addr = row_bytes * DDR3_TIMINGS.banks
    channel.submit(request(engine, conflict_addr, order=order))
    for i in range(4):
        channel.submit(request(engine, (12 + i) * 64, order=order))
    engine.run()
    # the conflict request completes after at least some later-submitted
    # same-row hits (FR-FCFS reordered past it)
    conflict_pos = order.index(conflict_addr)
    assert conflict_pos > Channel.pipeline_depth


def test_background_not_starved():
    """With both queues loaded, background requests complete well before
    all demand traffic drains (the 4:1 share, not strict priority)."""
    engine, channel = make_channel()
    order = []
    channel.submit(request(engine, 0, Priority.BACKGROUND, order=order))
    for i in range(1, 40):
        channel.submit(request(engine, i * 64, Priority.DEMAND, order=order))
    engine.run()
    # the background request is not the last to finish
    assert order.index(0) < len(order) - 1


def test_demand_preferred_over_background():
    engine, channel = make_channel()
    order = []
    # fill the pipeline first so the queues actually form
    for i in range(Channel.pipeline_depth):
        channel.submit(request(engine, (100 + i) * 64, Priority.DEMAND,
                               order=order))
    bg = [request(engine, (200 + i) * 64, Priority.BACKGROUND, order=order)
          for i in range(8)]
    dm = [request(engine, (300 + i) * 64, Priority.DEMAND, order=order)
          for i in range(8)]
    for req in bg:
        channel.submit(req)
    for req in dm:
        channel.submit(req)
    engine.run()
    bg_mean = sum(order.index((200 + i) * 64) for i in range(8)) / 8
    dm_mean = sum(order.index((300 + i) * 64) for i in range(8)) / 8
    assert dm_mean < bg_mean


def test_starvation_cap_forces_oldest():
    """An ancient request at the queue head is served even when younger
    row hits are available."""
    engine, channel = make_channel()
    # open row 0 and keep the bus busy
    order = []
    for i in range(Channel.pipeline_depth + 2):
        channel.submit(request(engine, i * 64, order=order))
    # a conflict request that will age past the cap
    old = request(engine, DDR3_TIMINGS.row_bytes * DDR3_TIMINGS.banks,
                  order=order)
    channel.submit(old)
    # keep feeding row hits for longer than the cap
    def feed(n):
        if n <= 0:
            return
        channel.submit(request(engine, (50 + n) * 64, order=order))
        engine.schedule(Channel.starvation_cap / 10, feed, n - 1)
    feed(25)
    engine.run()
    assert old.done
    # it completed before the last few row hits
    assert order.index(old.addr) < len(order) - 1
