"""Tests for the dedicated metadata channel (Section III-D layout)."""

import pytest

from repro.dram.device import MemoryDevice
from repro.dram.request import Priority
from repro.dram.timing import HBM2_TIMINGS
from repro.sim.engine import Engine

DATA = 1 << 20
META = 1 << 16


def make_device():
    engine = Engine()
    device = MemoryDevice(engine, HBM2_TIMINGS, DATA + META,
                          metadata_base=DATA)
    return engine, device


def test_metadata_routes_to_dedicated_channel():
    engine, device = make_device()
    device.access(DATA + 8, 8, False, Priority.DEMAND, None)
    engine.run()
    assert device.meta_channel.stats.reads == 1
    assert all(c.stats.reads == 0 for c in device.channels)


def test_data_does_not_touch_meta_channel():
    engine, device = make_device()
    device.access(0, 64, False, Priority.DEMAND, None)
    engine.run()
    assert device.meta_channel.stats.reads == 0
    assert sum(c.stats.reads for c in device.channels) == 1


def test_metadata_groups_spread_over_banks():
    """Consecutive 32 B metadata groups land in different banks so hot
    sets do not serialise on one bank."""
    engine, device = make_device()
    for group in range(HBM2_TIMINGS.banks):
        device.access(DATA + group * 32, 8, False, Priority.DEMAND, None)
    engine.run()
    banks_used = {
        bank for bank, b in enumerate(device.meta_channel._banks)
        if b.stats.accesses > 0
    }
    assert len(banks_used) == HBM2_TIMINGS.banks


def test_one_groups_entries_share_a_row():
    """The 4 entries (8 B each) of one congruence set share a bank+row,
    so a serial way scan is a row-hit stream."""
    engine, device = make_device()
    for way in range(4):
        device.access(DATA + way * 8, 8, False, Priority.DEMAND, None)
    engine.run()
    bank = device.meta_channel._banks[0]
    assert bank.stats.accesses == 4
    # first access opens the row, the other three hit it
    assert bank.stats.row_hits == 3


def test_aggregate_stats_include_meta_channel():
    engine, device = make_device()
    device.access(DATA + 8, 8, False, Priority.DEMAND, None)
    device.access(0, 64, False, Priority.DEMAND, None)
    engine.run()
    stats = device.stats()
    assert stats.reads == 2
    assert stats.bytes_read == 72


def test_invalid_metadata_base_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        MemoryDevice(engine, HBM2_TIMINGS, DATA, metadata_base=DATA + 1)
    with pytest.raises(ValueError):
        MemoryDevice(engine, HBM2_TIMINGS, DATA, metadata_base=0)


def test_device_without_metadata_region_has_no_meta_channel():
    engine = Engine()
    device = MemoryDevice(engine, HBM2_TIMINGS, DATA)
    assert device.meta_channel is None
