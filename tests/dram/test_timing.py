"""Tests for DRAM timing parameters."""

import pytest

from repro.dram.timing import DDR3_TIMINGS, HBM2_TIMINGS, DRAMTimings


def test_nm_fm_bandwidth_ratio_is_4_to_1():
    assert HBM2_TIMINGS.peak_bandwidth_gbs() == pytest.approx(
        4 * DDR3_TIMINGS.peak_bandwidth_gbs())


def test_hbm_peak_bandwidth():
    # 8 channels x 128 bit x 1.6 GT/s = 204.8 GB/s
    assert HBM2_TIMINGS.peak_bandwidth_gbs() == pytest.approx(204.8)


def test_ddr3_peak_bandwidth():
    # 4 channels x 64 bit x 1.6 GT/s = 51.2 GB/s
    assert DDR3_TIMINGS.peak_bandwidth_gbs() == pytest.approx(51.2)


def test_cpu_cycles_per_mem_cycle():
    # 3.2 GHz CPU over 800 MHz bus = 4 CPU cycles per memory cycle
    assert HBM2_TIMINGS.cpu_cycles_per_mem == pytest.approx(4.0)
    assert DDR3_TIMINGS.cpu_cycles_per_mem == pytest.approx(4.0)


def test_hbm_latency_slightly_lower_than_ddr3():
    assert HBM2_TIMINGS.row_hit_cycles() < DDR3_TIMINGS.row_hit_cycles()
    assert HBM2_TIMINGS.row_conflict_cycles() < DDR3_TIMINGS.row_conflict_cycles()


def test_latency_ordering_hit_closed_conflict():
    for t in (HBM2_TIMINGS, DDR3_TIMINGS):
        assert t.row_hit_cycles() < t.row_closed_cycles() < t.row_conflict_cycles()


def test_burst_cycles_scale_with_size():
    # 128-bit DDR bus moves 32 B per memory cycle
    assert HBM2_TIMINGS.burst_mem_cycles(64) == pytest.approx(2.0)
    assert HBM2_TIMINGS.burst_mem_cycles(2048) == pytest.approx(64.0)
    # 64-bit DDR bus moves 16 B per memory cycle
    assert DDR3_TIMINGS.burst_mem_cycles(64) == pytest.approx(4.0)


def test_tiny_transfer_occupies_at_least_one_beat():
    assert HBM2_TIMINGS.burst_mem_cycles(8) == 1.0


def test_banks_counts_ranks():
    t = DRAMTimings(name="x", ranks_per_channel=2, banks_per_rank=8)
    assert t.banks == 16


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        DRAMTimings(name="bad", bus_bits=31)
    with pytest.raises(ValueError):
        DRAMTimings(name="bad", channels=0)
