"""Bank advance-by-window protocol (two-tier clock support).

The closed-form window evaluator advances bank timing state in
window-sized steps; :meth:`Bank.snapshot`/:meth:`Bank.restore` and
:meth:`Bank.prepare_window` are the tested protocol for that.  The
contract everywhere is *bit-identity* with the per-access ``prepare``
path — equality assertions here are exact (``==``), never approx.
"""

import math

import pytest

from repro.dram.bank import Bank
from repro.dram.timing import DDR3_TIMINGS, HBM2_TIMINGS


@pytest.fixture(params=[HBM2_TIMINGS, DDR3_TIMINGS],
                ids=["hbm2", "ddr3"])
def timings(request):
    return request.param


def _twin_banks(timings):
    return Bank(timings), Bank(timings)


# ---------------------------------------------------------------------------
# snapshot / restore
# ---------------------------------------------------------------------------
def test_snapshot_restore_roundtrip_is_exact(timings):
    bank = Bank(timings)
    bank.prepare(3, 10.0)
    bank.prepare(7, 20.0)  # conflict: populates _activated_at
    state = bank.snapshot()
    ref = (bank.open_row, bank.ready, bank._activated_at)

    bank.prepare(11, 30.0)
    bank.prepare(11, 40.0)
    assert (bank.open_row, bank.ready, bank._activated_at) != ref

    bank.restore(state)
    assert (bank.open_row, bank.ready, bank._activated_at) == ref


def test_restored_bank_times_identically(timings):
    """After restore, the next prepare returns the same float the
    original trajectory would have — state capture is complete."""
    bank, twin = _twin_banks(timings)
    for row, now in [(1, 0.0), (2, 50.0), (2, 60.0)]:
        bank.prepare(row, now)
        twin.prepare(row, now)
    state = bank.snapshot()
    expected = twin.prepare(9, 75.0)

    bank.prepare(5, 70.0)  # diverge
    bank.restore(state)
    assert bank.prepare(9, 75.0) == expected


def test_snapshot_excludes_counters(timings):
    bank = Bank(timings)
    bank.prepare(1, 0.0)
    state = bank.snapshot()
    hits_before = bank.stats.row_hits
    bank.prepare(1, 1.0)
    bank.restore(state)
    # restore rolls back timing state only; counters accumulate
    assert bank.stats.row_hits == hits_before + 1


# ---------------------------------------------------------------------------
# prepare_window vs sequential prepare
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("count", [1, 2, 3, 8, 17])
def test_window_matches_sequential_from_closed_bank(timings, count):
    bank, twin = _twin_banks(timings)
    window = bank.prepare_window(4, count, 100.0)
    sequential = [twin.prepare(4, 100.0) for _ in range(count)]
    assert window == sequential  # exact, including float bit patterns
    assert bank.snapshot() == twin.snapshot()
    assert bank.stats.__dict__ == twin.stats.__dict__


@pytest.mark.parametrize("count", [1, 4])
def test_window_matches_sequential_on_row_hit(timings, count):
    bank, twin = _twin_banks(timings)
    bank.prepare(4, 0.0)
    twin.prepare(4, 0.0)
    assert (bank.prepare_window(4, count, 200.0)
            == [twin.prepare(4, 200.0) for _ in range(count)])
    assert bank.snapshot() == twin.snapshot()
    assert bank.stats.__dict__ == twin.stats.__dict__


@pytest.mark.parametrize("count", [1, 4])
def test_window_matches_sequential_on_row_conflict(timings, count):
    bank, twin = _twin_banks(timings)
    bank.prepare(9, 0.0)
    twin.prepare(9, 0.0)
    assert (bank.prepare_window(4, count, 5.0)
            == [twin.prepare(4, 5.0) for _ in range(count)])
    assert bank.snapshot() == twin.snapshot()
    assert bank.stats.__dict__ == twin.stats.__dict__


def test_window_results_are_monotone_and_gapped(timings):
    """Later accesses in a window finish exactly one column gap apart
    (the open row streams at the column-to-column rate)."""
    bank = Bank(timings)
    ready = bank.prepare_window(4, 6, 0.0)
    ccd = timings.t_ccd * timings.cpu_cycles_per_mem
    for earlier, later in zip(ready, ready[1:]):
        assert math.isclose(later - earlier, ccd)


def test_window_leaves_bank_ready_for_the_next_hit(timings):
    """The access *after* a window is a row hit continuing the same CAS
    chain, exactly as after the equivalent sequential calls."""
    bank, twin = _twin_banks(timings)
    bank.prepare_window(4, 5, 0.0)
    for _ in range(5):
        twin.prepare(4, 0.0)
    assert bank.prepare(4, 0.0) == twin.prepare(4, 0.0)
