"""Byte-identity regression: fixed config+seed runs must reproduce the
committed golden JSONs exactly.

The goldens were captured at the pre-transaction-pipeline seed, so this
suite is the proof that the MSHR/transaction refactor's compatibility
mode (``mshr_entries=0``) and the allocation-lean hot path changed *no*
simulated behaviour: every counter, timestamp and derived float in
``RunResult.to_dict()`` is compared byte-for-byte.

Regenerate with ``python scripts/gen_golden_results.py`` only when a
change intends to alter simulated behaviour.
"""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

from gen_golden_results import GOLDEN_DIR, SCHEMES, WORKLOAD, golden_json  # noqa: E402


@pytest.mark.parametrize("scheme", SCHEMES)
def test_run_matches_golden(scheme):
    golden = (GOLDEN_DIR / f"{scheme}-{WORKLOAD}.json").read_text()
    assert golden_json(scheme) == golden, (
        f"{scheme} RunResult JSON drifted from the committed golden; if "
        "the change is intentional, regenerate via "
        "scripts/gen_golden_results.py and explain why in the commit"
    )
