"""Byte-identity regression: fixed config+seed runs must reproduce the
committed golden JSONs exactly.

Two pinned modes per scheme since the MSHR pipeline became the default:

* ``{scheme}-mcf.json`` — the default MSHR transaction pipeline
  (``mshr_entries`` at the config default), regenerated when the
  default flipped after the silc-mshr32 postmortem;
* ``{scheme}-mcf-compat.json`` — the compatibility front door
  (``mshr_entries=0``).  These bytes are the original
  pre-transaction-pipeline goldens carried forward unchanged, so the
  suite remains the proof that compat mode and the allocation-lean hot
  path changed *no* simulated behaviour: every counter, timestamp and
  derived float in ``RunResult.to_dict()`` is compared byte-for-byte
  against the seed-era pins.

Regenerate with ``python scripts/gen_golden_results.py`` only when a
change intends to alter simulated behaviour.
"""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

from gen_golden_results import GOLDEN_DIR, SCHEMES, WORKLOAD, golden_json  # noqa: E402


@pytest.mark.parametrize("scheme", SCHEMES)
def test_run_matches_golden(scheme):
    golden = (GOLDEN_DIR / f"{scheme}-{WORKLOAD}.json").read_text()
    assert golden_json(scheme) == golden, (
        f"{scheme} RunResult JSON drifted from the committed golden; if "
        "the change is intentional, regenerate via "
        "scripts/gen_golden_results.py and explain why in the commit"
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_compat_run_matches_pre_mshr_golden(scheme):
    """``mshr_entries=0`` must still reproduce the pre-MSHR pins: the
    compat files' bytes predate the transaction pipeline entirely."""
    golden = (GOLDEN_DIR / f"{scheme}-{WORKLOAD}-compat.json").read_text()
    assert golden_json(scheme, mshr_entries=0) == golden, (
        f"{scheme} compat-mode RunResult drifted from the pre-MSHR "
        "golden — mshr_entries=0 is the bit-identical escape hatch and "
        "must never change behaviour"
    )
