"""Mutation self-tests: prove the differential harness has teeth.

A harness asserting scalar == batched proves nothing if it would also
pass with a broken batch engine.  Here three deliberate, realistic
batch-path bugs are planted behind the test-only hook in
:mod:`repro.sim.faults` — a window-boundary off-by-one in the trace
generator, a dropped row-buffer close, and a stale bank busy-until time
in the channel fast path — and each must make the equivalence check
FAIL.  The scalar reference never consults the fault hook, so any
surviving mutant means the harness lost its sensitivity to that class
of bug.
"""

import dataclasses
import json

import pytest

from repro.experiments.runner import run_one
from repro.sim import faults
from repro.sim.config import default_config

SEED = 7
MISSES = 300
BATCH_WINDOW = 64


def _run_json(batch_window: int) -> str:
    config = dataclasses.replace(
        default_config(0.25), seed=SEED, batch_window=batch_window,
        mshr_entries=8)
    result = run_one("silc", "mcf", config, misses_per_core=MISSES)
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.parametrize("fault", faults.KNOWN)
def test_planted_fault_trips_the_equivalence_check(fault):
    scalar = _run_json(0)
    with faults.inject(fault):
        mutated = _run_json(BATCH_WINDOW)
    assert mutated != scalar, (
        f"planted fault {fault!r} survived the equivalence check — the "
        "differential harness cannot detect this bug class")


def test_fault_free_rerun_recovers_equivalence():
    """The fault hook must leave no residue: after a mutated run, a
    clean batched run is byte-identical to scalar again."""
    scalar = _run_json(0)
    with faults.inject(faults.KNOWN[0]):
        _run_json(BATCH_WINDOW)
    assert _run_json(BATCH_WINDOW) == scalar


def test_inject_rejects_unknown_and_nested_faults():
    with pytest.raises(ValueError):
        with faults.inject("not-a-fault"):
            pass
    with faults.inject(faults.KNOWN[0]):
        with pytest.raises(RuntimeError):
            with faults.inject(faults.KNOWN[1]):
                pass
