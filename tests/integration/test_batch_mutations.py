"""Mutation self-tests: prove the differential harness has teeth.

A harness asserting scalar == batched proves nothing if it would also
pass with a broken batch engine.  Here six deliberate, realistic
batch-path bugs are planted behind the test-only hook in
:mod:`repro.sim.faults` — three in the original batch data plane (a
window-boundary off-by-one in the trace generator, a dropped row-buffer
close, and a stale bank busy-until time in the channel fast path) and
three in the closed-form window evaluator's transcriptions (a dropped
epoch-stall check, a lost MSHR read-coalesce lookup, and a forgotten
issue-width division) — and each must make the equivalence check FAIL.
The scalar reference never consults the fault hook, so any surviving
mutant means the harness lost its sensitivity to that class of bug.

Each fault runs against a configuration that actually exercises its
hook site: ``cf-stall-skip`` lives inside an HMA epoch-stall window, so
it gets the one scheme with epochs and a run long enough to cross
several boundaries; the rest fire on every SILC-FM miss stream.
"""

import dataclasses
import functools
import json

import pytest

from repro.experiments.runner import run_one
from repro.sim import faults
from repro.sim.config import default_config

SEED = 7
MISSES = 300
BATCH_WINDOW = 64

#: fault -> (scheme, misses_per_core, mshr_entries) whose run exercises
#: the hook site.  ``cf-stall-skip`` needs compat mode (``mshr 0``): at
#: the MLP-default file a full MSHR routes every dispatch through the
#: pending-queue drain — the *un*-transcribed ``handle_request`` — so
#: the evaluator's inline stall check (where the bug is planted) would
#: never run.
CASES = {fault: ("silc", MISSES, 8) for fault in faults.KNOWN}
CASES["cf-stall-skip"] = ("hma", 4000, 0)


def _run_json(scheme: str, batch_window: int, misses: int,
              mshr: int) -> str:
    config = dataclasses.replace(
        default_config(0.25), seed=SEED, batch_window=batch_window,
        mshr_entries=mshr)
    result = run_one(scheme, "mcf", config, misses_per_core=misses)
    return json.dumps(result.to_dict(), sort_keys=True)


@functools.lru_cache(maxsize=None)
def _scalar_json(scheme: str, misses: int, mshr: int) -> str:
    """Fault-free scalar baselines, shared across the parametrized
    cases (the fault hook is never consulted on the scalar path, so
    caching cannot leak an injected fault into a baseline)."""
    return _run_json(scheme, 0, misses, mshr)


@pytest.mark.parametrize("fault", faults.KNOWN)
def test_planted_fault_trips_the_equivalence_check(fault):
    scheme, misses, mshr = CASES[fault]
    scalar = _scalar_json(scheme, misses, mshr)
    with faults.inject(fault):
        mutated = _run_json(scheme, BATCH_WINDOW, misses, mshr)
    assert mutated != scalar, (
        f"planted fault {fault!r} survived the equivalence check — the "
        "differential harness cannot detect this bug class")


def test_fault_free_rerun_recovers_equivalence():
    """The fault hook must leave no residue: after a mutated run, a
    clean batched run is byte-identical to scalar again."""
    scalar = _scalar_json("silc", MISSES, 8)
    with faults.inject(faults.KNOWN[0]):
        _run_json("silc", BATCH_WINDOW, MISSES, 8)
    assert _run_json("silc", BATCH_WINDOW, MISSES, 8) == scalar


def test_inject_rejects_unknown_and_nested_faults():
    with pytest.raises(ValueError):
        with faults.inject("not-a-fault"):
            pass
    with faults.inject(faults.KNOWN[0]):
        with pytest.raises(RuntimeError):
            with faults.inject(faults.KNOWN[1]):
                pass
