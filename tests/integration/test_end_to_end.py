"""End-to-end integration tests: full systems, small traces."""

import dataclasses

import pytest

from repro.experiments.runner import SCHEMES, SuiteRunner, run_one
from repro.sim.config import default_config

MISSES = 1500


@pytest.fixture(scope="module")
def config():
    # a small config keeps the integration suite quick while preserving
    # every structural property (ratios, channels, associativity)
    return dataclasses.replace(
        default_config(scale=0.5), cores=4,
    )


@pytest.fixture(scope="module")
def baseline(config):
    return run_one("nonm", "mcf", config, misses_per_core=MISSES)


def test_baseline_runs_to_completion(baseline):
    assert baseline.elapsed_cycles > 0
    assert all(c.misses_retired == MISSES for c in baseline.core_stats)
    assert baseline.access_rate == 0.0  # no NM in the baseline
    assert baseline.nm_stats.accesses == 0


@pytest.mark.parametrize("scheme_key", sorted(SCHEMES))
def test_every_scheme_completes(config, scheme_key):
    result = run_one(scheme_key, "mcf", config, misses_per_core=500)
    assert result.elapsed_cycles > 0
    # the default 20% warmup is discarded from the statistics; the
    # default MSHR additionally coalesces a few same-subblock reads,
    # which consult no scheme (the warmup boundary is measured in
    # consults, so reads coalesced *before* the reset widen the gap by
    # at most that handful)
    expected = int(500 * 0.8) * config.cores
    coalesced = int(result.extras.get("mshr_coalesced", 0.0))
    assert result.scheme_stats.misses <= expected
    assert result.scheme_stats.misses + coalesced >= round(expected * 0.995)


def test_warmup_discards_cold_start(config):
    cold = run_one("silc", "mcf", config, misses_per_core=1000,
                   warmup_fraction=0.0)
    warm = run_one("silc", "mcf", config, misses_per_core=1000,
                   warmup_fraction=0.4)
    # warm measurement sees fewer misses and a better access rate
    assert warm.scheme_stats.misses < cold.scheme_stats.misses
    assert warm.access_rate >= cold.access_rate


def test_hardware_schemes_beat_baseline(config, baseline):
    """On a bandwidth-bound workload every migrating scheme should
    comfortably beat the no-NM baseline."""
    for key in ("cam", "pom", "silc"):
        result = run_one(key, "mcf", config, misses_per_core=MISSES)
        assert result.speedup_over(baseline) > 1.0, key


def test_silcfm_access_rate_positive(config):
    result = run_one("silc", "mcf", config, misses_per_core=MISSES)
    assert 0.2 < result.access_rate < 1.0


def test_energy_accounting_consistent(config):
    result = run_one("silc", "mcf", config, misses_per_core=MISSES)
    assert result.energy.total_joules > 0
    assert result.edp > 0
    # traffic reached both devices
    assert result.nm_stats.bytes_total > 0
    assert result.fm_stats.bytes_total > 0


def test_determinism_across_runs(config):
    a = run_one("silc", "lbm", config, misses_per_core=800, seed=5)
    b = run_one("silc", "lbm", config, misses_per_core=800, seed=5)
    assert a.elapsed_cycles == b.elapsed_cycles
    assert a.scheme_stats.nm_serviced == b.scheme_stats.nm_serviced


def test_different_seeds_differ(config):
    a = run_one("silc", "lbm", config, misses_per_core=800, seed=5)
    b = run_one("silc", "lbm", config, misses_per_core=800, seed=6)
    assert a.elapsed_cycles != b.elapsed_cycles


def test_reference_mode_runs_through_hierarchy(config):
    result = run_one("silc", "omnetpp", config, misses_per_core=300,
                     mode="reference")
    assert result.elapsed_cycles > 0
    # the hierarchy absorbed re-references: accesses > misses
    total_accesses = sum(c.accesses for c in result.core_stats)
    total_misses = sum(c.misses_issued for c in result.core_stats)
    assert total_accesses > total_misses


def test_suite_runner_memoises_baseline(config):
    runner = SuiteRunner(config, misses_per_core=300)
    s1 = runner.speedup("cam", "lbm")
    s2 = runner.speedup("cam", "lbm")
    assert s1 == s2
    grid = runner.grid(["cam"], ["lbm"])
    assert grid["cam"]["lbm"] == s1


def test_unknown_scheme_rejected(config):
    with pytest.raises(KeyError):
        run_one("nosuch", "mcf", config)


def test_unknown_workload_rejected(config):
    with pytest.raises(KeyError):
        run_one("silc", "quake", config)
