"""Oracle-checked runs with MSHR coalescing enabled.

The shadow-memory differential oracle validates every scheme's metadata
and the bijection invariant while misses coalesce in the MSHR file —
the acceptance gate for the transaction-pipeline refactor: coalescing
must not let two same-subblock misses observe inconsistent remap state.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_one
from repro.sim.config import default_config

SCHEMES = ["nonm", "silc", "cam", "pom", "hma", "alloy"]


def _checked_config(mshr_entries):
    return dataclasses.replace(
        default_config(scale=0.25),
        mshr_entries=mshr_entries,
        check_interval=100,
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_oracle_passes_with_coalescing(scheme):
    result = run_one(scheme, "mcf", _checked_config(8),
                     misses_per_core=200, seed=5)
    assert result.extras["oracle_accesses_checked"] > 0
    assert result.extras["mshr_allocations"] > 0


@pytest.mark.parametrize("entries", [1, 8, 32])
def test_oracle_passes_across_mshr_sweep(entries):
    """The bijection invariant holds at every MSHR size: heavy
    structural stalling (1 entry) through effectively-unbounded
    coalescing (32 entries)."""
    result = run_one("silc", "mcf", _checked_config(entries),
                     misses_per_core=200, seed=5)
    assert result.extras["oracle_accesses_checked"] > 0
    assert result.extras["mshr_peak_occupancy"] <= entries


# ----------------------------------------------------------------------
# the silc-mshr32 anomaly knee (postmortem in docs/architecture.md)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["silc", "nonm"])
def test_mshr_sweep_speedup_is_monotone(scheme):
    """Postmortem regression: elapsed time falls monotonically as the
    MSHR file grows through the knee.  The silc-mshr32 anomaly was a
    structural concurrency cap — any file smaller than the aggregate
    MLP (cores × per-core outstanding misses) serializes independent
    misses behind ``structural_stalls``, and no dispatch or coalescing
    policy can tune that away.  A non-monotonic point here means a
    timing bug crept back into the admission/drain path."""
    elapsed = []
    for entries in (1, 2, 4, 8, 16, 32):
        result = run_one(scheme, "mcf", _checked_config(entries),
                         misses_per_core=200, seed=5)
        assert result.extras["oracle_accesses_checked"] > 0
        elapsed.append((entries, result.elapsed_cycles))
    for (e_small, t_small), (e_big, t_big) in zip(elapsed, elapsed[1:]):
        assert t_big < t_small, (
            f"{scheme}: elapsed rose from {t_small} at {e_small} "
            f"entries to {t_big} at {e_big} — the MSHR sweep must be "
            "monotone (see the silc-mshr32 postmortem)")


@pytest.mark.parametrize("scheme", ["silc", "nonm"])
def test_default_mshr_dominates_compat(scheme):
    """The flip gate: the default (nonzero) MSHR file must be at least
    as fast as the compat front door it replaced — sized to the
    aggregate MLP and coalescing reads only, the pipeline is a pure
    win, not a modeling tax."""
    default = run_one(scheme, "mcf",
                      _checked_config(default_config().mshr_entries),
                      misses_per_core=200, seed=5)
    compat = run_one(scheme, "mcf", _checked_config(0),
                     misses_per_core=200, seed=5)
    assert default.extras["oracle_accesses_checked"] > 0
    assert "mshr_allocations" not in compat.extras  # truly MSHR-free
    assert default.elapsed_cycles <= compat.elapsed_cycles, (
        f"{scheme}: default MSHR mode ({default.elapsed_cycles}) lost "
        f"to compat mode ({compat.elapsed_cycles})")
