"""Oracle-checked runs with MSHR coalescing enabled.

The shadow-memory differential oracle validates every scheme's metadata
and the bijection invariant while misses coalesce in the MSHR file —
the acceptance gate for the transaction-pipeline refactor: coalescing
must not let two same-subblock misses observe inconsistent remap state.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_one
from repro.sim.config import default_config

SCHEMES = ["nonm", "silc", "cam", "pom", "hma", "alloy"]


def _checked_config(mshr_entries):
    return dataclasses.replace(
        default_config(scale=0.25),
        mshr_entries=mshr_entries,
        check_interval=100,
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_oracle_passes_with_coalescing(scheme):
    result = run_one(scheme, "mcf", _checked_config(8),
                     misses_per_core=200, seed=5)
    assert result.extras["oracle_accesses_checked"] > 0
    assert result.extras["mshr_allocations"] > 0


@pytest.mark.parametrize("entries", [1, 8, 32])
def test_oracle_passes_across_mshr_sweep(entries):
    """The bijection invariant holds at every MSHR size: heavy
    structural stalling (1 entry) through effectively-unbounded
    coalescing (32 entries)."""
    result = run_one("silc", "mcf", _checked_config(entries),
                     misses_per_core=200, seed=5)
    assert result.extras["oracle_accesses_checked"] > 0
    assert result.extras["mshr_peak_occupancy"] <= entries
