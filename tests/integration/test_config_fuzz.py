"""Robustness fuzzing: the system must run to completion (and keep its
invariants) for ANY structurally valid configuration, not just the
defaults the benches use."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import System
from repro.sim.config import BLOCK_BYTES, SilcFmConfig, SystemConfig
from repro.workloads.model import WorkloadSpec
from repro.xmem.address import AddressSpace


@st.composite
def system_configs(draw):
    nm_blocks = draw(st.sampled_from([16, 32, 64]))
    ratio = draw(st.sampled_from([2, 4, 8]))
    cores = draw(st.integers(min_value=1, max_value=4))
    assoc = draw(st.sampled_from([1, 2, 4]))
    silc = SilcFmConfig(
        associativity=assoc,
        hot_threshold=draw(st.integers(min_value=2, max_value=60)),
        aging_period_accesses=draw(st.sampled_from([100, 1000, 50_000])),
        bitvector_table_entries=64,
        predictor_entries=64,
        metadata_cache_entries=draw(st.sampled_from([1, 8, 64])),
        access_rate_window=32,
        enable_locking=draw(st.booleans()),
        enable_bypass=draw(st.booleans()),
        enable_predictor=draw(st.booleans()),
        enable_bitvector_history=draw(st.booleans()),
    )
    base = SystemConfig(
        cores=cores,
        nm_bytes=nm_blocks * BLOCK_BYTES,
        fm_bytes=nm_blocks * ratio * BLOCK_BYTES,
        silcfm=silc,
        # 0 = no oracle; otherwise every fuzzed run also carries the
        # shadow-memory differential checker (repro.validate).
        check_interval=draw(st.sampled_from([0, 40, 400])),
    )
    return base


@st.composite
def workload_specs(draw):
    return WorkloadSpec(
        name="fuzz",
        mpki=draw(st.floats(min_value=2.0, max_value=60.0)),
        footprint_pages=draw(st.integers(min_value=4, max_value=40)),
        hot_fraction=draw(st.floats(min_value=0.05, max_value=1.0)),
        hot_weight=draw(st.floats(min_value=0.0, max_value=1.0)),
        spatial_run=draw(st.floats(min_value=1.0, max_value=32.0)),
        write_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        page_density=draw(st.floats(min_value=1 / 32, max_value=1.0)),
        phase_misses=draw(st.one_of(st.none(),
                                    st.integers(min_value=50, max_value=500))),
    )


@settings(max_examples=15, deadline=None)
@given(config=system_configs(), spec=workload_specs(),
       seed=st.integers(min_value=1, max_value=100))
def test_any_valid_system_runs_and_keeps_invariants(config, spec, seed):
    def factory(space: AddressSpace, cfg: SystemConfig) -> SilcFmScheme:
        return SilcFmScheme(space, cfg.silcfm)

    system = System(config, factory, spec, misses_per_core=150,
                    alloc_policy="interleaved", seed=seed)
    result = system.run(max_events=2_000_000)
    assert result.elapsed_cycles > 0
    # coalesced reads never consult the scheme; together the two counts
    # conserve the issued miss total exactly
    coalesced = int(result.extras.get("mshr_coalesced", 0.0))
    assert result.scheme_stats.misses + coalesced == 150 * config.cores
    # the part-of-memory bijection must survive arbitrary configs
    seen = set()
    for sb in range(0, system.space.total_bytes, 64):
        slot = system.scheme.locate(sb)
        assert slot not in seen
        seen.add(slot)


@settings(max_examples=10, deadline=None)
@given(config=system_configs(), seed=st.integers(min_value=1, max_value=50))
def test_deterministic_under_fuzzed_configs(config, seed):
    spec = WorkloadSpec(name="fuzz", mpki=20.0, footprint_pages=20)

    def factory(space, cfg):
        return SilcFmScheme(space, cfg.silcfm)

    def run():
        system = System(config, factory, spec, misses_per_core=100,
                        alloc_policy="interleaved", seed=seed)
        return system.run(max_events=2_000_000).elapsed_cycles

    assert run() == run()
