"""Cross-cutting invariants checked on full system runs."""

import dataclasses

import pytest

from repro.experiments.runner import SCHEMES, run_one
from repro.sim.config import default_config


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(scale=0.5), cores=4)


@pytest.mark.parametrize("scheme_key", ["cam", "camp", "pom", "hma", "silc"])
def test_post_run_bijection(config, scheme_key):
    """After a full multi-core run, the flat space is still a bijection
    onto the storage slots (for part-of-memory schemes)."""
    from repro.cpu.system import System
    from repro.workloads.spec import per_core_spec

    setup = SCHEMES[scheme_key]
    system = System(config, setup.factory, per_core_spec("milc", config),
                    misses_per_core=600, alloc_policy=setup.alloc_policy)
    system.run()
    scheme = system.scheme
    seen = set()
    for sb in range(0, system.space.total_bytes, 64):
        slot = scheme.locate(sb)
        assert slot not in seen
        seen.add(slot)


@pytest.mark.parametrize("scheme_key", sorted(SCHEMES))
def test_oracle_checked_run_is_clean(config, scheme_key):
    """Every registered scheme survives a full run with the shadow-memory
    differential oracle attached (serviced-from, Table I tags, locate
    round-trips and periodic whole-space bijection scans)."""
    checked = dataclasses.replace(config, check_interval=500)
    result = run_one(scheme_key, "milc", checked, misses_per_core=400,
                     warmup_fraction=0.0)
    # the default MSHR coalesces same-subblock reads, which never reach
    # the scheme (and so are invisible to the oracle) by design
    coalesced = int(result.extras.get("mshr_coalesced", 0.0))
    assert (result.extras["oracle_accesses_checked"] + coalesced
            == 400 * config.cores)
    assert result.extras["oracle_full_scans"] >= 1


@pytest.mark.parametrize("scheme_key", ["nonm", "cam", "pom", "silc"])
def test_conservation_of_misses(config, scheme_key):
    """Every issued miss is retired exactly once and counted once."""
    result = run_one(scheme_key, "soplex", config, misses_per_core=500,
                     warmup_fraction=0.0)
    issued = sum(c.misses_issued for c in result.core_stats)
    retired = sum(c.misses_retired for c in result.core_stats)
    assert issued == retired == 500 * config.cores
    # under the default MSHR a coalesced read retires through the
    # surviving transaction's waiter list: it consults no scheme and
    # completes no controller transaction of its own, so the exact
    # conservation law carries the coalesced count on one side
    coalesced = int(result.extras.get("mshr_coalesced", 0.0))
    assert result.scheme_stats.misses + coalesced == issued
    assert result.controller_stats.misses_completed + coalesced == issued


def test_nm_plus_fm_service_counts_add_up(config):
    result = run_one("silc", "soplex", config, misses_per_core=500,
                     warmup_fraction=0.0)
    stats = result.scheme_stats
    assert stats.nm_serviced + stats.fm_serviced == stats.misses


def test_demand_bytes_at_least_one_line_per_miss(config):
    result = run_one("silc", "soplex", config, misses_per_core=500,
                     warmup_fraction=0.0)
    total_demand = (result.controller_stats.demand_nm_bytes
                    + result.controller_stats.demand_fm_bytes)
    assert total_demand >= result.scheme_stats.misses * 64


def test_elapsed_time_monotone_in_trace_length(config):
    short = run_one("silc", "lbm", config, misses_per_core=300,
                    warmup_fraction=0.0)
    long = run_one("silc", "lbm", config, misses_per_core=900,
                   warmup_fraction=0.0)
    assert long.elapsed_cycles > short.elapsed_cycles


def test_more_nm_capacity_never_catastrophic(config):
    """Growing NM from 1/16 to 1/4 of FM must not hurt SILC-FM badly."""
    small = run_one("silc", "gcc", config.with_ratio(16), misses_per_core=600)
    big = run_one("silc", "gcc", config.with_ratio(4), misses_per_core=600)
    base_small = run_one("nonm", "gcc", config.with_ratio(16),
                         misses_per_core=600)
    base_big = run_one("nonm", "gcc", config.with_ratio(4),
                       misses_per_core=600)
    speedup_small = small.speedup_over(base_small)
    speedup_big = big.speedup_over(base_big)
    assert speedup_big > speedup_small * 0.8
