"""Smoke tests: every shipped example must run end to end.

Run as subprocesses at a tiny scale (REPRO_SCALE=0.25) so the whole set
stays fast; the assertions check each example produced its headline
output, not specific numbers.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

SMALL_ENV = dict(os.environ, REPRO_SCALE="0.25")


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, env=SMALL_ENV,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "mcf", "400")
    assert "speedup" in out
    assert "SILC-FM" in out


def test_scheme_shootout():
    out = run_example("scheme_shootout.py", "400")
    assert "Geometric-mean speedup" in out
    assert "SILC-FM vs best other" in out


def test_capacity_planning():
    out = run_example("capacity_planning.py", "gcc", "400")
    assert "1:16" in out and "1:4" in out
    assert "access rate" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "Key-value store" in out
    assert "SILC-FM" in out


def test_consolidation_mix():
    out = run_example("consolidation_mix.py", "mix-blend", "300")
    assert "Speedup over no-NM baseline" in out
    assert "per-core progress" in out


def test_anatomy():
    out = run_example("anatomy.py", "gcc", "400")
    assert "frame state" in out
    assert "Congruence-set occupancy" in out


def test_examples_reject_bad_arguments():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "quake"],
        capture_output=True, text=True, timeout=60, env=SMALL_ENV,
    )
    assert result.returncode != 0
    assert "unknown benchmark" in result.stderr