"""The batch engine's equivalence contract: ``batch_window > 0`` must
reproduce the scalar engine's ``RunResult`` byte for byte.

Three layers of proof, from broad to anchored:

* the **differential grid** — every registered scheme x three workload
  shapes (pointer-chasing mcf, stream-like lbm, and the heterogeneous
  mix-blend) x three MSHR configurations (compatibility 0, stall-heavy
  8, roomy 32), scalar vs batched from the same seed;
* an **oracle-checked pass** per scheme — the validation oracle rides a
  batched run (forcing the controller's per-request scalar fallback
  while batched trace generation stays), proving ``--check`` coverage
  is unchanged;
* the **golden anchor** — the batched engine must reproduce the
  committed ``tests/data/golden/*.json`` bytes, tying the equivalence
  class to the repository's pinned history, not just to whatever the
  scalar engine currently does.

``tests/integration/test_batch_mutations.py`` proves this suite has
teeth: three deliberately planted batch-path bugs each make it fail.
"""

import dataclasses
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.mixes import run_mix
from repro.experiments.runner import SCHEMES, run_one
from repro.sim.config import default_config

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

from gen_golden_results import (  # noqa: E402
    GOLDEN_DIR, SCHEMES as GOLDEN_SCHEMES, WORKLOAD as GOLDEN_WORKLOAD,
    golden_json)

SEED = 7
MISSES = 300
SCALE = 0.25
#: the window under test; odd-sized vs the 300-miss trace so window
#: boundaries land mid-stream (the off-by-one surface).
BATCH_WINDOW = 64

WORKLOADS = ("mcf", "lbm", "mix-blend")
#: compat mode, two undersized files (queue/drain stressed), and the
#: MLP-sized shipping default
MSHR_CONFIGS = (0, 8, 32, 128)


def _run_json(scheme: str, workload: str, mshr_entries: int,
              batch_window: int, check_interval: float = 0.0) -> str:
    config = dataclasses.replace(
        default_config(SCALE), seed=SEED, batch_window=batch_window,
        mshr_entries=mshr_entries, check_interval=check_interval)
    if workload.startswith("mix-"):
        result = run_mix(scheme, workload, config,
                         misses_per_core=MISSES, seed=SEED)
    else:
        result = run_one(scheme, workload, config, misses_per_core=MISSES)
    if batch_window > 0 and check_interval == 0.0:
        # two-tier clock attribution must reconcile exactly on every
        # cell of the matrix (each dispatch lands in exactly one tier)
        # and must never leak into the canonical wire form.  (The
        # oracle-checked pass runs generic dispatch throughout, so it
        # legitimately has no attribution block.)
        extras = result.extras
        assert (extras["cf.dispatches_fused"]
                + extras["cf.dispatches_generic"]
                == extras["cf.dispatches_total"]), (
            f"tier attribution does not reconcile for {scheme}/"
            f"{workload}/mshr={mshr_entries}")
        assert (extras["cf.fused_issue"] + extras["cf.fused_complete_fast"]
                + extras["cf.fused_complete_turbo"]
                == extras["cf.dispatches_fused"])
        assert not any(k.startswith("cf.") for k in result.to_dict()["extras"])
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.parametrize("mshr_entries", MSHR_CONFIGS)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_batched_run_is_byte_identical(scheme, workload, mshr_entries):
    scalar = _run_json(scheme, workload, mshr_entries, 0)
    batched = _run_json(scheme, workload, mshr_entries, BATCH_WINDOW)
    assert batched == scalar, (
        f"batch engine diverged from scalar for {scheme}/{workload}/"
        f"mshr={mshr_entries}")


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_oracle_checked_batched_run(scheme):
    """The differential oracle must pass (no InvariantViolation) on a
    batched run and leave the result identical to a scalar checked run:
    ``--check`` loses no coverage to the batch engine."""
    scalar = _run_json(scheme, "mcf", 8, 0, check_interval=5_000.0)
    batched = _run_json(scheme, "mcf", 8, BATCH_WINDOW,
                        check_interval=5_000.0)
    assert batched == scalar


@pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
def test_batched_run_matches_committed_golden(scheme):
    """Anchor: the batched engine reproduces the committed golden bytes
    (captured on the scalar engine), not merely the scalar engine's
    current output."""
    golden = (GOLDEN_DIR / f"{scheme}-{GOLDEN_WORKLOAD}.json").read_text()
    assert golden_json(scheme, batch_window=BATCH_WINDOW) == golden, (
        f"{scheme} batched RunResult drifted from the committed golden")
