"""Assorted edge-case tests across modules (pure-unit, fast)."""

import pytest

from repro.schemes.base import AccessPlan, Level, Op
from repro.sim.config import BLOCK_BYTES
from repro.sim.engine import Engine, SimulationError
from repro.workloads.trace import MemoryAccess, interleave_round_robin, trace_stats
from repro.xmem.address import AddressSpace


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
def test_engine_is_not_reentrant():
    engine = Engine()

    def recurse():
        with pytest.raises(SimulationError, match="reentrant"):
            engine.run()

    engine.schedule(1, recurse)
    engine.run()


# ----------------------------------------------------------------------
# address space
# ----------------------------------------------------------------------
def test_frames_of_set_rejects_bad_index():
    space = AddressSpace(8 * BLOCK_BYTES, 32 * BLOCK_BYTES)
    with pytest.raises(ValueError):
        space.nm_frames_of_set(99, 4)
    with pytest.raises(ValueError):
        space.nm_frames_of_set(-1, 4)


def test_block_base_roundtrip():
    space = AddressSpace(8 * BLOCK_BYTES, 32 * BLOCK_BYTES)
    for block in (0, 7, 8, 39):
        assert space.block_of(space.block_base(block)) == block


# ----------------------------------------------------------------------
# access plans / ops
# ----------------------------------------------------------------------
def test_op_validation():
    """Validation is hoisted out of ``__post_init__`` (constructing an
    op is allocation-lean); the explicit debug check still rejects
    malformed ops, and the oracle calls it on every checked plan."""
    with pytest.raises(ValueError):
        Op(Level.NM, -1, 64, False).validate()
    with pytest.raises(ValueError):
        Op(Level.FM, 0, 0, True).validate()
    op = Op(Level.NM, 0, 64, False)
    assert op.validate() is op  # chainable on well-formed ops


def test_plan_validate_checks_every_op():
    plan = AccessPlan(
        serviced_from=Level.FM,
        stages=[[Op(Level.NM, 0, 8, False)]],
        background=[Op(Level.FM, 0, 0, True)],  # malformed
    )
    with pytest.raises(ValueError):
        plan.validate()
    ok = AccessPlan.single(Level.NM, Op(Level.NM, 0, 64, False))
    assert ok.validate() is ok


def test_empty_plan_totals():
    plan = AccessPlan(serviced_from=Level.NM)
    assert plan.critical_ops() == []
    assert plan.total_bytes() == 0


def test_plan_total_bytes_counts_both_kinds():
    plan = AccessPlan(
        serviced_from=Level.FM,
        stages=[[Op(Level.NM, 0, 8, False)], [Op(Level.FM, 0, 64, False)]],
        background=[Op(Level.FM, 64, 64, True)],
    )
    assert plan.total_bytes() == 8 + 64 + 64
    assert len(plan.critical_ops()) == 2


# ----------------------------------------------------------------------
# trace helpers
# ----------------------------------------------------------------------
def test_trace_stats_empty():
    stats = trace_stats([])
    assert stats["accesses"] == 0
    assert stats["mpki"] == 0.0
    assert stats["footprint_bytes"] == 0


def test_trace_record_validation():
    with pytest.raises(ValueError):
        MemoryAccess(pc=-1, vaddr=0, is_write=False, gap_instr=1)
    with pytest.raises(ValueError):
        MemoryAccess(pc=0, vaddr=-5, is_write=False, gap_instr=1)


def test_round_robin_interleave():
    a = iter([MemoryAccess(1, 0, False, 1), MemoryAccess(1, 64, False, 1)])
    b = iter([MemoryAccess(2, 128, False, 1)])
    merged = list(interleave_round_robin([a, b]))
    assert [m.vaddr for m in merged] == [0, 128, 64]
