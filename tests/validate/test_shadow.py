"""Unit tests for the shadow-memory exchange-matching replay.

Each test hand-builds the exact ``Op`` sequences the schemes emit
(subblock swap triplet, restore quartet, 2 KB migration, Alloy fill)
and checks the ledger tracks the movement — or stays put for traffic
that moves nothing.
"""

import pytest

from repro.schemes.base import Level, Op
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.validate.shadow import ShadowMemory, ShadowViolation
from repro.xmem.address import AddressSpace

NM_BLOCKS = 4
FM_BLOCKS = 16
SPACE = AddressSpace(NM_BLOCKS * BLOCK_BYTES, FM_BLOCKS * BLOCK_BYTES)
NM_SLOTS = NM_BLOCKS * (BLOCK_BYTES // SUBBLOCK_BYTES)


def nm_op(slot, write=False, size=SUBBLOCK_BYTES):
    return Op(Level.NM, slot * SUBBLOCK_BYTES, size, write)


def fm_op(slot, write=False, size=SUBBLOCK_BYTES):
    return Op(Level.FM, slot * SUBBLOCK_BYTES, size, write)


def shadow():
    return ShadowMemory(SPACE)


# ----------------------------------------------------------------------
# identity + queries
# ----------------------------------------------------------------------
def test_initial_state_is_the_identity_mapping():
    s = shadow()
    assert s.location(0) == (Level.NM, 0)
    assert s.location(NM_SLOTS - 1) == (Level.NM, NM_SLOTS - 1)
    assert s.location(NM_SLOTS) == (Level.FM, 0)
    assert s.id_at(Level.NM, 7) == 7
    assert s.id_at(Level.FM, 3) == NM_SLOTS + 3
    s.check_self_bijection()


def test_out_of_space_id_rejected():
    s = shadow()
    with pytest.raises(ValueError):
        s.location(NM_SLOTS + FM_BLOCKS * 32)


# ----------------------------------------------------------------------
# the exchange primitive
# ----------------------------------------------------------------------
def test_subblock_swap_triplet_exchanges_contents():
    # SILC-FM row 2: critical FM read + background (NM out, NM in, FM out)
    s = shadow()
    index = 5
    s.apply([fm_op(index),
             nm_op(index), nm_op(index, write=True), fm_op(index, write=True)])
    assert s.exchanges_replayed == 1
    assert s.id_at(Level.NM, index) == NM_SLOTS + index
    assert s.id_at(Level.FM, index) == index
    assert s.location(index) == (Level.FM, index)
    assert s.location(NM_SLOTS + index) == (Level.NM, index)
    s.check_self_bijection()


def test_swap_back_restores_the_identity():
    s = shadow()
    index = 5
    swap = [fm_op(index), nm_op(index),
            nm_op(index, write=True), fm_op(index, write=True)]
    s.apply(swap)
    s.apply(swap)  # row 3 drains with the same position-for-position ops
    assert s.exchanges_replayed == 2
    assert s.location(index) == (Level.NM, index)
    assert s.location(NM_SLOTS + index) == (Level.FM, index)
    s.check_self_bijection()


def test_restore_quartet_order_is_accepted():
    # _restore emits per index: NM read, FM write, FM read, NM write —
    # the FM slot completes before the NM one; pairing must not care.
    s = shadow()
    s.apply([fm_op(3), nm_op(3), nm_op(3, write=True), fm_op(3, write=True)])
    s.apply([nm_op(3), fm_op(3, write=True), fm_op(3), nm_op(3, write=True)])
    assert s.location(3) == (Level.NM, 3)
    assert s.location(NM_SLOTS + 3) == (Level.FM, 3)
    s.check_self_bijection()


def test_whole_block_migration_swaps_32_subblocks():
    # PoM: FM read 2KB, NM read 2KB, NM write 2KB, FM write 2KB
    s = shadow()
    fm_block_base = 2 * BLOCK_BYTES  # FM device offset of FM block 2
    s.apply([
        Op(Level.FM, fm_block_base, BLOCK_BYTES, False),
        Op(Level.NM, 0, BLOCK_BYTES, False),
        Op(Level.NM, 0, BLOCK_BYTES, True),
        Op(Level.FM, fm_block_base, BLOCK_BYTES, True),
    ])
    assert s.exchanges_replayed == 32
    for j in range(32):
        assert s.id_at(Level.NM, j) == NM_SLOTS + 64 + j
        assert s.id_at(Level.FM, 64 + j) == j
    s.check_self_bijection()


def test_two_sequential_migrations_pair_within_their_own_group():
    # HMA epoch migrating two pages: group A fully precedes group B in
    # the op list, so index-j pairs must never cross groups.
    s = shadow()
    ops = []
    for frame, fm_block in ((0, 2), (1, 3)):
        base = fm_block * BLOCK_BYTES
        ops.extend([
            Op(Level.FM, base, BLOCK_BYTES, False),
            Op(Level.NM, frame * BLOCK_BYTES, BLOCK_BYTES, False),
            Op(Level.NM, frame * BLOCK_BYTES, BLOCK_BYTES, True),
            Op(Level.FM, base, BLOCK_BYTES, True),
        ])
    s.apply(ops)
    for j in range(32):
        assert s.id_at(Level.NM, j) == NM_SLOTS + 64 + j
        assert s.id_at(Level.NM, 32 + j) == NM_SLOTS + 96 + j
    s.check_self_bijection()


# ----------------------------------------------------------------------
# traffic that must move nothing
# ----------------------------------------------------------------------
def test_reads_and_writes_alone_move_nothing():
    s = shadow()
    s.apply([nm_op(0), fm_op(0), fm_op(9)])            # demand reads
    s.apply([nm_op(1, write=True), fm_op(4, write=True)])  # writebacks
    assert s.exchanges_replayed == 0
    s.check_self_bijection()
    assert s.location(0) == (Level.NM, 0)


def test_completed_slot_without_a_partner_stays_in_place():
    # read + write of one NM slot with no opposite-level counterpart is
    # an in-place rewrite (e.g. metadata-adjacent data update).
    s = shadow()
    s.apply([nm_op(2), nm_op(2, write=True)])
    assert s.exchanges_replayed == 0
    assert s.location(2) == (Level.NM, 2)


def test_metadata_region_and_partial_slots_are_filtered():
    s = ShadowMemory(SPACE)
    meta = Op(Level.NM, SPACE.nm_bytes + 16, 8, False)       # remap entry
    tad = Op(Level.NM, 3 * SUBBLOCK_BYTES, SUBBLOCK_BYTES + 8, False)
    tiny = Op(Level.FM, 0, 8, True)
    assert list(s.data_slots(meta)) == []
    assert list(s.data_slots(tad)) == [3]   # the 8 B tag tail is dropped
    assert list(s.data_slots(tiny)) == []
    s.apply([meta, tad, tiny])
    assert s.exchanges_replayed == 0


def test_self_bijection_check_detects_ledger_corruption():
    s = shadow()
    s._nm[0] = s._nm[1] = 1  # duplicate an identity
    with pytest.raises(ShadowViolation):
        s.check_self_bijection()


# ----------------------------------------------------------------------
# copy mode (Alloy)
# ----------------------------------------------------------------------
def test_copy_mode_fill_installs_a_copy():
    s = ShadowMemory(SPACE, copy_mode=True)
    line = 2 * NM_SLOTS + 7  # FM line congruent to NM slot 7
    slot = line % NM_SLOTS
    sid = NM_SLOTS + line
    assert s.location(sid) == (Level.FM, line)
    s.apply([
        Op(Level.NM, slot * SUBBLOCK_BYTES, SUBBLOCK_BYTES + 8, False),  # tag
        fm_op(line),                                                     # fill read
        Op(Level.NM, slot * SUBBLOCK_BYTES, SUBBLOCK_BYTES + 8, True),   # install
    ])
    assert s.location(sid) == (Level.NM, slot)
    assert s.id_at(Level.NM, slot) == sid
    s.check_self_bijection()


def test_copy_mode_dirty_victim_writeback_is_not_a_fill():
    s = ShadowMemory(SPACE, copy_mode=True)
    old_line, new_line = 7, NM_SLOTS + 7
    slot = 7
    s.apply([fm_op(old_line), Op(Level.NM, slot * SUBBLOCK_BYTES, 72, True)])
    assert s.location(NM_SLOTS + old_line) == (Level.NM, slot)
    # miss on new_line: dirty victim written back to FM, new line filled
    s.apply([
        Op(Level.NM, slot * SUBBLOCK_BYTES, 72, False),  # tag probe
        fm_op(new_line),                                 # fill read
        fm_op(old_line, write=True),                     # victim writeback
        Op(Level.NM, slot * SUBBLOCK_BYTES, 72, True),   # install
    ])
    assert s.location(NM_SLOTS + new_line) == (Level.NM, slot)
    assert s.location(NM_SLOTS + old_line) == (Level.FM, old_line)


def test_copy_mode_in_place_writeback_keeps_the_copy():
    s = ShadowMemory(SPACE, copy_mode=True)
    s.apply([fm_op(3), Op(Level.NM, 3 * SUBBLOCK_BYTES, 72, True)])
    s.apply([nm_op(3, write=True)])  # LLC writeback to the cached copy
    assert s.location(NM_SLOTS + 3) == (Level.NM, 3)


def test_copy_mode_ambiguous_fill_is_a_violation():
    s = ShadowMemory(SPACE, copy_mode=True)
    with pytest.raises(ShadowViolation):
        s.apply([fm_op(3), fm_op(NM_SLOTS + 3), nm_op(3, write=True)])


def test_copy_mode_rejects_nm_native_ids():
    s = ShadowMemory(SPACE, copy_mode=True)
    with pytest.raises(ValueError):
        s.location(0)
