"""Oracle tests: clean runs pass, seeded metadata corruption trips.

The mutation tests are the oracle's proof of usefulness: each subclasses
a real scheme, re-introduces a representative bookkeeping bug (skipped
``set_bit``, dropped reverse-map entry, metadata swap without device
traffic) and asserts the differential oracle aborts the run.
"""

import dataclasses

import pytest

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import System
from repro.schemes.base import InvariantViolation
from repro.schemes.cameo import CameoScheme
from repro.sim.config import BLOCK_BYTES, SilcFmConfig, SystemConfig
from repro.validate import OracleViolation, ValidationOracle
from repro.workloads.model import WorkloadSpec
from repro.xmem.address import AddressSpace

SPEC = WorkloadSpec(name="t", mpki=20.0, footprint_pages=12,
                    spatial_run=8.0, write_fraction=0.3)


def small_config(check_interval: int) -> SystemConfig:
    silc = SilcFmConfig(
        associativity=4,
        hot_threshold=12,
        aging_period_accesses=300,
        bitvector_table_entries=64,
        predictor_entries=64,
        metadata_cache_entries=8,
        access_rate_window=32,
    )
    return SystemConfig(cores=1, nm_bytes=16 * BLOCK_BYTES,
                        fm_bytes=64 * BLOCK_BYTES, silcfm=silc,
                        check_interval=check_interval)


def run_system(factory, check_interval=50, misses=400):
    config = small_config(check_interval)
    system = System(config, factory, SPEC, misses_per_core=misses,
                    alloc_policy="interleaved", seed=7)
    return system.run()


# ----------------------------------------------------------------------
# clean runs
# ----------------------------------------------------------------------
def test_clean_silcfm_run_passes_and_reports_counters():
    result = run_system(lambda space, cfg: SilcFmScheme(space, cfg.silcfm))
    # reads coalesced by the default MSHR never reach the scheme, so
    # the oracle checks every consult: checked + coalesced == issued
    coalesced = int(result.extras.get("mshr_coalesced", 0.0))
    assert result.extras["oracle_accesses_checked"] + coalesced == 400
    # 400 misses / check_every=50 periodic scans + the end-of-run scan
    assert result.extras["oracle_full_scans"] >= 8


def test_unchecked_run_has_no_oracle_counters():
    config = dataclasses.replace(small_config(0))
    system = System(config, lambda space, cfg: SilcFmScheme(space, cfg.silcfm),
                    SPEC, misses_per_core=50, alloc_policy="interleaved",
                    seed=7)
    result = system.run()
    assert system.oracle is None
    assert "oracle_accesses_checked" not in result.extras


def test_oracle_violation_is_an_invariant_violation():
    assert issubclass(OracleViolation, InvariantViolation)
    assert issubclass(OracleViolation, AssertionError)


# ----------------------------------------------------------------------
# seeded mutations the oracle must catch
# ----------------------------------------------------------------------
class _DropsResidencyBit(SilcFmScheme):
    """Bug: moves the subblock but forgets to record it in the bitvector
    (the metadata says FM, the data is in NM)."""

    def _swap_subblock_in(self, way, block, index, paddr, pc):
        ops = super()._swap_subblock_in(way, block, index, paddr, pc)
        self.frames[way].clear_bit(index)
        return ops


class _ForgetsReverseMap(SilcFmScheme):
    """Bug: installs a block into a frame without the reverse-map entry,
    so ``locate`` sends every later access to the stale FM home."""

    def _install(self, way, block, index, paddr, pc):
        ops = super()._install(way, block, index, paddr, pc)
        self._frame_of_block.pop(block, None)
        return ops


@pytest.mark.parametrize("broken_scheme",
                         [_DropsResidencyBit, _ForgetsReverseMap])
def test_oracle_catches_seeded_silcfm_corruption(broken_scheme):
    with pytest.raises(InvariantViolation):
        run_system(lambda space, cfg: broken_scheme(space, cfg.silcfm))


def test_baseline_sanity_clean_parent_passes():
    # the mutation tests prove nothing unless the unmutated parent
    # passes the very same harness
    run_system(lambda space, cfg: SilcFmScheme(space, cfg.silcfm))


def test_full_check_catches_metadata_only_swap():
    """A swap recorded in metadata without any device traffic leaves the
    shadow behind; the whole-space scan must notice."""
    space = AddressSpace(4 * BLOCK_BYTES, 16 * BLOCK_BYTES)
    scheme = CameoScheme(space)
    oracle = ValidationOracle(scheme, check_every=1)
    oracle.full_check()  # identity state is consistent
    scheme._swap_in(0, scheme.num_slots, scheme.num_slots)  # ops discarded
    with pytest.raises(OracleViolation):
        oracle.full_check()
