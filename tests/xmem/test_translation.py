"""Tests for frame allocation policies and page tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import BLOCK_BYTES
from repro.xmem.address import AddressSpace
from repro.xmem.translation import FrameAllocator, OutOfMemoryError, PageTable

NM_BLOCKS = 16
FM_BLOCKS = 64


def make_space():
    return AddressSpace(NM_BLOCKS * BLOCK_BYTES, FM_BLOCKS * BLOCK_BYTES)


def test_fm_only_never_allocates_nm():
    allocator = FrameAllocator(make_space(), policy="fm_only")
    frames = [allocator.allocate() for _ in range(FM_BLOCKS)]
    assert all(f >= NM_BLOCKS for f in frames)
    with pytest.raises(OutOfMemoryError):
        allocator.allocate()


def test_nm_first_fills_nm_then_fm():
    allocator = FrameAllocator(make_space(), policy="nm_first")
    first = [allocator.allocate() for _ in range(NM_BLOCKS)]
    assert first == list(range(NM_BLOCKS))
    assert allocator.allocate() == NM_BLOCKS


def test_random_policy_is_seeded_and_complete():
    a = FrameAllocator(make_space(), policy="random", seed=7)
    b = FrameAllocator(make_space(), policy="random", seed=7)
    frames_a = [a.allocate() for _ in range(NM_BLOCKS + FM_BLOCKS)]
    frames_b = [b.allocate() for _ in range(NM_BLOCKS + FM_BLOCKS)]
    assert frames_a == frames_b
    assert sorted(frames_a) == list(range(NM_BLOCKS + FM_BLOCKS))


def test_random_policy_differs_across_seeds():
    a = FrameAllocator(make_space(), policy="random", seed=1)
    b = FrameAllocator(make_space(), policy="random", seed=2)
    assert [a.allocate() for _ in range(20)] != [b.allocate() for _ in range(20)]


def test_interleaved_mixes_nm_proportionally():
    allocator = FrameAllocator(make_space(), policy="interleaved")
    frames = [allocator.allocate() for _ in range(10)]
    nm_count = sum(1 for f in frames if f < NM_BLOCKS)
    # ratio is 4:1 so roughly one in five early frames is NM
    assert 1 <= nm_count <= 3


def test_interleaved_exhausts_all_frames():
    allocator = FrameAllocator(make_space(), policy="interleaved")
    frames = [allocator.allocate() for _ in range(NM_BLOCKS + FM_BLOCKS)]
    assert sorted(frames) == list(range(NM_BLOCKS + FM_BLOCKS))


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        FrameAllocator(make_space(), policy="chaotic")


# ----------------------------------------------------------------------
# page table
# ----------------------------------------------------------------------
def test_translation_is_stable():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    a = table.translate(12345)
    assert table.translate(12345) == a
    assert table.translate(12345 + 1) == a + 1


def test_offsets_preserved():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    paddr = table.translate(5 * BLOCK_BYTES + 99)
    assert paddr % BLOCK_BYTES == 99


def test_distinct_vpages_get_distinct_frames():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    frames = {table.translate(v * BLOCK_BYTES) // BLOCK_BYTES for v in range(10)}
    assert len(frames) == 10


def test_processes_never_share_frames():
    allocator = FrameAllocator(make_space(), policy="interleaved")
    t1, t2 = PageTable(allocator, asid=0), PageTable(allocator, asid=1)
    f1 = {t1.translate(v * BLOCK_BYTES) // BLOCK_BYTES for v in range(8)}
    f2 = {t2.translate(v * BLOCK_BYTES) // BLOCK_BYTES for v in range(8)}
    assert not f1 & f2


def test_remap_moves_page():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    table.translate(0)
    old = table.frame_of(0)
    new_frame = 0  # an NM frame, unused by fm_only
    returned = table.remap(0, new_frame)
    assert returned == old
    assert table.frame_of(0) == new_frame
    assert table.vpage_of(new_frame) == 0
    assert table.translate(17) == new_frame * BLOCK_BYTES + 17


def test_remap_to_occupied_frame_rejected():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    table.translate(0)
    table.translate(BLOCK_BYTES)
    with pytest.raises(ValueError):
        table.remap(0, table.frame_of(1))


def test_remap_unmapped_page_rejected():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    with pytest.raises(KeyError):
        table.remap(42, 0)


def test_swap_frames_exchanges_two_pages():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    table.translate(0)
    table.translate(BLOCK_BYTES)
    fa, fb = table.frame_of(0), table.frame_of(1)
    table.swap_frames(0, 1)
    assert table.frame_of(0) == fb
    assert table.frame_of(1) == fa


def test_footprint_accounting():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    for v in range(6):
        table.translate(v * BLOCK_BYTES)
    assert table.resident_pages == 6
    assert table.footprint_bytes() == 6 * BLOCK_BYTES


@settings(max_examples=25)
@given(vaddrs=st.lists(st.integers(min_value=0, max_value=50 * BLOCK_BYTES - 1),
                       min_size=1, max_size=60))
def test_translation_injective_over_pages(vaddrs):
    """Distinct virtual pages always land in distinct physical frames."""
    table = PageTable(FrameAllocator(make_space(), policy="interleaved"))
    mapping = {}
    for vaddr in vaddrs:
        paddr = table.translate(vaddr)
        vpage, ppage = vaddr // BLOCK_BYTES, paddr // BLOCK_BYTES
        assert mapping.setdefault(vpage, ppage) == ppage
    assert len(set(mapping.values())) == len(mapping)


# ----------------------------------------------------------------------
# graceful exhaustion (regression for the config-fuzz OutOfMemoryError)
# ----------------------------------------------------------------------
def test_release_returns_frame_for_reuse():
    allocator = FrameAllocator(make_space(), policy="fm_only")
    first = allocator.allocate()
    before = allocator.frames_allocated
    allocator.release(first)
    assert allocator.frames_allocated == before - 1
    assert allocator.allocate() == first


def test_page_table_reclaims_oldest_when_memory_is_full():
    """Touching more distinct pages than there are physical frames must
    reclaim (FIFO) instead of raising mid-run."""
    total = NM_BLOCKS + FM_BLOCKS
    table = PageTable(FrameAllocator(make_space(), policy="interleaved"))
    for v in range(total + 10):
        table.translate(v * BLOCK_BYTES)
    assert table.reclaims == 10
    assert table.resident_pages == total
    # the ten oldest pages were evicted; the newest are still mapped
    assert table.frame_of(0) is None
    assert table.frame_of(9) is None
    assert table.frame_of(total + 9) is not None
    # a re-touch of an evicted page faults it back in (evicting another)
    paddr = table.translate(0)
    assert paddr // BLOCK_BYTES == table.frame_of(0)
    assert table.reclaims == 11


def test_reclaimed_translation_stays_injective():
    total = NM_BLOCKS + FM_BLOCKS
    table = PageTable(FrameAllocator(make_space(), policy="interleaved"))
    for v in range(2 * total):
        table.translate(v * BLOCK_BYTES)
    frames = [table.frame_of(v) for v in table.mapped_pages()]
    assert len(frames) == len(set(frames)) == total


def test_empty_table_on_full_machine_still_raises():
    allocator = FrameAllocator(make_space(), policy="fm_only")
    hog, latecomer = PageTable(allocator, asid=0), PageTable(allocator, asid=1)
    for v in range(FM_BLOCKS):
        hog.translate(v * BLOCK_BYTES)
    with pytest.raises(OutOfMemoryError):
        latecomer.translate(0)


def test_fuzz_falsifying_config_runs_to_completion():
    """The exact Hypothesis counterexample from the seed suite: 2 cores
    with 25-page footprints on a 16-NM + 32-FM-frame machine (50 pages
    wanted, 48 frames exist) raised OutOfMemoryError mid-run."""
    from repro.core.silcfm import SilcFmScheme
    from repro.cpu.system import System
    from repro.sim.config import SilcFmConfig, SystemConfig
    from repro.workloads.model import WorkloadSpec

    config = SystemConfig(
        cores=2,
        nm_bytes=16 * BLOCK_BYTES,
        fm_bytes=32 * BLOCK_BYTES,
        silcfm=SilcFmConfig(
            associativity=1,
            hot_threshold=2,
            aging_period_accesses=100,
            bitvector_table_entries=64,
            predictor_entries=64,
            metadata_cache_entries=1,
            access_rate_window=32,
            enable_locking=False,
            enable_bypass=False,
            enable_predictor=False,
            enable_bitvector_history=False,
        ),
    )
    spec = WorkloadSpec(
        name="fuzz", mpki=2.0, footprint_pages=25, hot_fraction=1.0,
        hot_weight=0.0, spatial_run=1.0, write_fraction=0.0,
        page_density=1.0, phase_misses=None,
    )
    system = System(config, lambda space, cfg: SilcFmScheme(space, cfg.silcfm),
                    spec, misses_per_core=150, alloc_policy="interleaved",
                    seed=1)
    result = system.run(max_events=2_000_000)
    assert result.elapsed_cycles > 0
    assert result.scheme_stats.misses == 150 * config.cores
    # oversubscription is absorbed by FIFO page reclaim, not a crash
    assert result.extras["page_reclaims"] > 0
    total_resident = sum(t.resident_pages for t in system.page_tables)
    assert total_resident <= 48


def test_no_reclaims_when_memory_suffices():
    from repro.core.silcfm import SilcFmScheme
    from repro.cpu.system import System
    from repro.sim.config import SystemConfig
    from repro.workloads.model import WorkloadSpec

    config = SystemConfig(cores=2, nm_bytes=16 * BLOCK_BYTES,
                          fm_bytes=64 * BLOCK_BYTES)
    spec = WorkloadSpec(name="small", mpki=10.0, footprint_pages=10)
    system = System(config, lambda space, cfg: SilcFmScheme(space, cfg.silcfm),
                    spec, misses_per_core=50, alloc_policy="interleaved",
                    seed=1)
    result = system.run(max_events=1_000_000)
    assert result.extras["page_reclaims"] == 0.0
