"""Tests for frame allocation policies and page tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import BLOCK_BYTES
from repro.xmem.address import AddressSpace
from repro.xmem.translation import FrameAllocator, OutOfMemoryError, PageTable

NM_BLOCKS = 16
FM_BLOCKS = 64


def make_space():
    return AddressSpace(NM_BLOCKS * BLOCK_BYTES, FM_BLOCKS * BLOCK_BYTES)


def test_fm_only_never_allocates_nm():
    allocator = FrameAllocator(make_space(), policy="fm_only")
    frames = [allocator.allocate() for _ in range(FM_BLOCKS)]
    assert all(f >= NM_BLOCKS for f in frames)
    with pytest.raises(OutOfMemoryError):
        allocator.allocate()


def test_nm_first_fills_nm_then_fm():
    allocator = FrameAllocator(make_space(), policy="nm_first")
    first = [allocator.allocate() for _ in range(NM_BLOCKS)]
    assert first == list(range(NM_BLOCKS))
    assert allocator.allocate() == NM_BLOCKS


def test_random_policy_is_seeded_and_complete():
    a = FrameAllocator(make_space(), policy="random", seed=7)
    b = FrameAllocator(make_space(), policy="random", seed=7)
    frames_a = [a.allocate() for _ in range(NM_BLOCKS + FM_BLOCKS)]
    frames_b = [b.allocate() for _ in range(NM_BLOCKS + FM_BLOCKS)]
    assert frames_a == frames_b
    assert sorted(frames_a) == list(range(NM_BLOCKS + FM_BLOCKS))


def test_random_policy_differs_across_seeds():
    a = FrameAllocator(make_space(), policy="random", seed=1)
    b = FrameAllocator(make_space(), policy="random", seed=2)
    assert [a.allocate() for _ in range(20)] != [b.allocate() for _ in range(20)]


def test_interleaved_mixes_nm_proportionally():
    allocator = FrameAllocator(make_space(), policy="interleaved")
    frames = [allocator.allocate() for _ in range(10)]
    nm_count = sum(1 for f in frames if f < NM_BLOCKS)
    # ratio is 4:1 so roughly one in five early frames is NM
    assert 1 <= nm_count <= 3


def test_interleaved_exhausts_all_frames():
    allocator = FrameAllocator(make_space(), policy="interleaved")
    frames = [allocator.allocate() for _ in range(NM_BLOCKS + FM_BLOCKS)]
    assert sorted(frames) == list(range(NM_BLOCKS + FM_BLOCKS))


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        FrameAllocator(make_space(), policy="chaotic")


# ----------------------------------------------------------------------
# page table
# ----------------------------------------------------------------------
def test_translation_is_stable():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    a = table.translate(12345)
    assert table.translate(12345) == a
    assert table.translate(12345 + 1) == a + 1


def test_offsets_preserved():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    paddr = table.translate(5 * BLOCK_BYTES + 99)
    assert paddr % BLOCK_BYTES == 99


def test_distinct_vpages_get_distinct_frames():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    frames = {table.translate(v * BLOCK_BYTES) // BLOCK_BYTES for v in range(10)}
    assert len(frames) == 10


def test_processes_never_share_frames():
    allocator = FrameAllocator(make_space(), policy="interleaved")
    t1, t2 = PageTable(allocator, asid=0), PageTable(allocator, asid=1)
    f1 = {t1.translate(v * BLOCK_BYTES) // BLOCK_BYTES for v in range(8)}
    f2 = {t2.translate(v * BLOCK_BYTES) // BLOCK_BYTES for v in range(8)}
    assert not f1 & f2


def test_remap_moves_page():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    table.translate(0)
    old = table.frame_of(0)
    new_frame = 0  # an NM frame, unused by fm_only
    returned = table.remap(0, new_frame)
    assert returned == old
    assert table.frame_of(0) == new_frame
    assert table.vpage_of(new_frame) == 0
    assert table.translate(17) == new_frame * BLOCK_BYTES + 17


def test_remap_to_occupied_frame_rejected():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    table.translate(0)
    table.translate(BLOCK_BYTES)
    with pytest.raises(ValueError):
        table.remap(0, table.frame_of(1))


def test_remap_unmapped_page_rejected():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    with pytest.raises(KeyError):
        table.remap(42, 0)


def test_swap_frames_exchanges_two_pages():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    table.translate(0)
    table.translate(BLOCK_BYTES)
    fa, fb = table.frame_of(0), table.frame_of(1)
    table.swap_frames(0, 1)
    assert table.frame_of(0) == fb
    assert table.frame_of(1) == fa


def test_footprint_accounting():
    table = PageTable(FrameAllocator(make_space(), policy="fm_only"))
    for v in range(6):
        table.translate(v * BLOCK_BYTES)
    assert table.resident_pages == 6
    assert table.footprint_bytes() == 6 * BLOCK_BYTES


@settings(max_examples=25)
@given(vaddrs=st.lists(st.integers(min_value=0, max_value=50 * BLOCK_BYTES - 1),
                       min_size=1, max_size=60))
def test_translation_injective_over_pages(vaddrs):
    """Distinct virtual pages always land in distinct physical frames."""
    table = PageTable(FrameAllocator(make_space(), policy="interleaved"))
    mapping = {}
    for vaddr in vaddrs:
        paddr = table.translate(vaddr)
        vpage, ppage = vaddr // BLOCK_BYTES, paddr // BLOCK_BYTES
        assert mapping.setdefault(vpage, ppage) == ppage
    assert len(set(mapping.values())) == len(mapping)
