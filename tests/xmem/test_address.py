"""Tests for flat address-space arithmetic, including the property-based
congruence-set invariants every scheme relies on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SUBBLOCKS_PER_BLOCK
from repro.xmem.address import AddressSpace

NM = 64 * BLOCK_BYTES
FM = 256 * BLOCK_BYTES


@pytest.fixture
def space():
    return AddressSpace(nm_bytes=NM, fm_bytes=FM)


def test_capacity_is_sum_of_levels(space):
    assert space.total_bytes == NM + FM
    assert space.nm_blocks == 64
    assert space.fm_blocks == 256
    assert space.total_blocks == 320


def test_nm_occupies_low_addresses(space):
    assert space.is_nm(0)
    assert space.is_nm(NM - 1)
    assert space.is_fm(NM)
    assert space.is_fm(NM + FM - 1)


def test_out_of_range_rejected(space):
    with pytest.raises(ValueError):
        space.is_nm(NM + FM)
    with pytest.raises(ValueError):
        space.is_fm(-1)


def test_block_and_subblock_arithmetic(space):
    addr = 3 * BLOCK_BYTES + 5 * SUBBLOCK_BYTES + 17
    assert space.block_of(addr) == 3
    assert space.subblock_index(addr) == 5
    assert space.subblock_addr(3, 5) == 3 * BLOCK_BYTES + 5 * SUBBLOCK_BYTES


def test_subblock_addr_range_checked(space):
    with pytest.raises(ValueError):
        space.subblock_addr(0, SUBBLOCKS_PER_BLOCK)


def test_device_offsets(space):
    assert space.nm_offset(100) == 100
    assert space.fm_offset(NM + 100) == 100
    with pytest.raises(ValueError):
        space.fm_offset(100)
    with pytest.raises(ValueError):
        space.nm_offset(NM)


def test_fm_block_numbering(space):
    assert space.fm_block_of(NM) == 0
    assert space.fm_block_of(NM + BLOCK_BYTES) == 1


@pytest.mark.parametrize("assoc,expected_sets", [(1, 64), (2, 32), (4, 16)])
def test_num_sets(space, assoc, expected_sets):
    assert space.num_sets(assoc) == expected_sets


def test_bad_associativity_rejected(space):
    with pytest.raises(ValueError):
        space.num_sets(3)  # does not divide 64? 64 % 3 != 0
    with pytest.raises(ValueError):
        space.num_sets(0)


def test_frames_of_set_partition_nm(space):
    assoc = 4
    sets = space.num_sets(assoc)
    seen = set()
    for s in range(sets):
        frames = space.nm_frames_of_set(s, assoc)
        assert len(frames) == assoc
        for f in frames:
            assert space.set_of_block(f, assoc) == s
            seen.add(f)
    assert seen == set(range(space.nm_blocks))


@given(block=st.integers(min_value=0, max_value=319),
       assoc=st.sampled_from([1, 2, 4]))
def test_every_block_maps_to_valid_set(block, assoc):
    space = AddressSpace(nm_bytes=NM, fm_bytes=FM)
    s = space.set_of_block(block, assoc)
    assert 0 <= s < space.num_sets(assoc)
    # the block's set contains at least one NM frame
    frames = space.nm_frames_of_set(s, assoc)
    assert all(space.is_nm(f * BLOCK_BYTES) for f in frames)


@given(addr=st.integers(min_value=0, max_value=NM + FM - 1))
def test_subblock_roundtrip(addr):
    space = AddressSpace(nm_bytes=NM, fm_bytes=FM)
    block = space.block_of(addr)
    index = space.subblock_index(addr)
    base = space.subblock_addr(block, index)
    assert base <= addr < base + SUBBLOCK_BYTES


@given(addr=st.integers(min_value=0, max_value=NM + FM - 1))
def test_levels_partition_the_space(addr):
    space = AddressSpace(nm_bytes=NM, fm_bytes=FM)
    assert space.is_nm(addr) != space.is_fm(addr)


def test_misaligned_capacity_rejected():
    with pytest.raises(ValueError):
        AddressSpace(nm_bytes=1000, fm_bytes=FM)
    with pytest.raises(ValueError):
        AddressSpace(nm_bytes=0, fm_bytes=FM)
