"""Tests for the L1/L2 hierarchy."""

from repro.cache.hierarchy import CacheHierarchy
from repro.sim.config import CacheConfig, CacheHierarchyConfig

KB = 1024


def small_hierarchy(cores=2):
    config = CacheHierarchyConfig(
        l1i=CacheConfig(4 * KB, 2, 4),
        l1d=CacheConfig(2 * KB, 4, 4),
        l2=CacheConfig(16 * KB, 8, 11),
    )
    return CacheHierarchy(config, cores)


def test_l1_hit_has_l1_latency():
    h = small_hierarchy()
    h.access(0, 0, False)
    outcome = h.access(0, 0, False)
    assert not outcome.llc_miss
    assert outcome.latency_cycles == 4


def test_l2_hit_after_l1_eviction():
    h = small_hierarchy()
    h.access(0, 0, False)
    # blow L1 (2KB, 32 lines) but stay within L2 (16KB)
    for i in range(1, 64):
        h.access(0, i * 64, False)
    outcome = h.access(0, 0, False)
    assert not outcome.llc_miss
    assert outcome.latency_cycles == 4 + 11


def test_cold_miss_reaches_memory():
    h = small_hierarchy()
    outcome = h.access(0, 12345, False)
    assert outcome.llc_miss
    assert outcome.latency_cycles == 15


def test_private_l1_per_core_shared_l2():
    h = small_hierarchy()
    h.access(0, 0, False)            # core 0 warms L1 and L2
    outcome = h.access(1, 0, False)  # core 1 misses its L1, hits shared L2
    assert not outcome.llc_miss
    assert outcome.latency_cycles == 15


def test_instruction_accesses_use_l1i():
    h = small_hierarchy()
    h.access(0, 0, False, is_instruction=True)
    assert h.l1i[0].stats.accesses == 1
    assert h.l1d[0].stats.accesses == 0


def test_dirty_llc_eviction_produces_writeback():
    h = small_hierarchy()
    h.access(0, 0, True)
    # evict line 0 out of L2 entirely: fill its L2 set (8 ways)
    sets = h.l2.num_sets
    writebacks = []
    for i in range(1, 12):
        outcome = h.access(0, i * sets * 64, False)
        if outcome.writeback_addr is not None:
            writebacks.append(outcome.writeback_addr)
    assert 0 in writebacks


def test_llc_mpki():
    h = small_hierarchy()
    for i in range(10):
        h.access(0, i * 64 * h.l2.num_sets * 8, False)  # all misses
    assert h.llc_mpki(instructions=10_000) == 1.0


def test_llc_mpki_rejects_bad_input():
    h = small_hierarchy()
    import pytest

    with pytest.raises(ValueError):
        h.llc_mpki(0)
