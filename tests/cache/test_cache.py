"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache


def make_cache(sets=4, ways=2, line=64):
    return Cache(size_bytes=sets * ways * line, ways=ways, line_bytes=line)


def test_first_access_misses_then_hits():
    cache = make_cache()
    assert not cache.access(0, False).hit
    assert cache.access(0, False).hit
    assert cache.access(32, False).hit  # same line


def test_distinct_lines_tracked_separately():
    cache = make_cache()
    cache.access(0, False)
    assert not cache.access(64, False).hit


def test_lru_eviction_order():
    cache = make_cache(sets=1, ways=2)
    cache.access(0, False)     # line A
    cache.access(64, False)    # line B
    cache.access(0, False)     # touch A -> B is LRU
    cache.access(128, False)   # evicts B
    assert cache.access(0, False).hit
    assert not cache.access(64, False).hit


def test_dirty_eviction_produces_writeback():
    cache = make_cache(sets=1, ways=1)
    cache.access(0, True)                 # dirty A
    outcome = cache.access(64, False)     # evicts A
    assert outcome.writeback_addr == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_has_no_writeback():
    cache = make_cache(sets=1, ways=1)
    cache.access(0, False)
    outcome = cache.access(64, False)
    assert outcome.writeback_addr is None


def test_write_hit_marks_dirty():
    cache = make_cache(sets=1, ways=1)
    cache.access(0, False)
    cache.access(0, True)  # write hit dirties the line
    outcome = cache.access(64, False)
    assert outcome.writeback_addr == 0


def test_writeback_address_is_line_aligned():
    cache = make_cache(sets=2, ways=1)
    cache.access(64 + 17, True)
    outcome = cache.access(64 * 3 + 5, False)  # same set (index 1)
    assert outcome.writeback_addr == 64


def test_probe_does_not_disturb_lru_or_stats():
    cache = make_cache(sets=1, ways=2)
    cache.access(0, False)
    cache.access(64, False)
    hits_before = cache.stats.hits
    assert cache.probe(0)
    assert not cache.probe(128)
    assert cache.stats.hits == hits_before
    cache.access(128, False)  # evicts line 0 (LRU despite the probe)
    assert not cache.probe(0)


def test_invalidate():
    cache = make_cache()
    cache.access(0, True)
    assert cache.invalidate(0)
    assert not cache.invalidate(0)
    assert not cache.access(0, False).hit  # and no writeback happened


def test_flush_returns_dirty_lines():
    cache = make_cache()
    cache.access(0, True)
    cache.access(64, False)
    cache.access(128, True)
    dirty = sorted(cache.flush())
    assert dirty == [0, 128]
    assert cache.resident_lines == 0


def test_stats_hit_rate():
    cache = make_cache()
    cache.access(0, False)
    cache.access(0, False)
    cache.access(0, False)
    assert cache.stats.accesses == 3
    assert cache.stats.hit_rate == pytest.approx(2 / 3)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        Cache(size_bytes=1000, ways=3, line_bytes=64)
    with pytest.raises(ValueError):
        Cache(size_bytes=3 * 64 * 2, ways=2, line_bytes=64)  # 3 sets


def test_capacity_bound_respected():
    cache = make_cache(sets=4, ways=2)
    for i in range(100):
        cache.access(i * 64, False)
    assert cache.resident_lines <= 8


@settings(max_examples=30)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                      max_size=300))
def test_rereference_within_capacity_always_hits(addrs):
    """Any address re-accessed immediately must hit."""
    cache = make_cache(sets=8, ways=4)
    for addr in addrs:
        cache.access(addr, False)
        assert cache.access(addr, False).hit


@settings(max_examples=30)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                      max_size=200),
       writes=st.lists(st.booleans(), min_size=200, max_size=200))
def test_writeback_conservation(addrs, writes):
    """Every writeback must be for a line that was written at some point."""
    cache = make_cache(sets=2, ways=2)
    written = set()
    for addr, is_write in zip(addrs, writes):
        line = addr // 64 * 64
        if is_write:
            written.add(line)
        outcome = cache.access(addr, is_write)
        if outcome.writeback_addr is not None:
            assert outcome.writeback_addr in written
