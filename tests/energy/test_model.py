"""Tests for the energy/EDP model."""

import pytest

from repro.energy.model import DDR3_ENERGY, HBM_ENERGY, EnergyModel


def test_nm_access_energy_cheaper_per_byte():
    assert HBM_ENERGY.access_pj_per_bit < DDR3_ENERGY.access_pj_per_bit


def test_cycles_to_seconds():
    model = EnergyModel(cpu_ghz=3.2)
    assert model.cycles_to_seconds(3.2e9) == pytest.approx(1.0)


def test_breakdown_components():
    model = EnergyModel(cpu_ghz=3.2)
    b = model.breakdown(nm_bytes=10 ** 6, fm_bytes=10 ** 6,
                        elapsed_cycles=3.2e9)
    # same bytes: FM access energy must exceed NM access energy
    assert b.fm_access_joules > b.nm_access_joules
    assert b.nm_background_joules == pytest.approx(HBM_ENERGY.background_watts)
    assert b.fm_background_joules == pytest.approx(DDR3_ENERGY.background_watts)
    assert b.total_joules == pytest.approx(
        b.nm_access_joules + b.fm_access_joules
        + b.nm_background_joules + b.fm_background_joules)


def test_access_energy_scales_linearly():
    model = EnergyModel()
    b1 = model.breakdown(1000, 0, 1e6)
    b2 = model.breakdown(2000, 0, 1e6)
    assert b2.nm_access_joules == pytest.approx(2 * b1.nm_access_joules)


def test_edp_penalises_slow_runs_quadratically():
    model = EnergyModel()
    # same traffic, double the time: background energy doubles and delay
    # doubles, so EDP grows more than 2x
    fast = model.edp(10 ** 6, 10 ** 6, 1e9)
    slow = model.edp(10 ** 6, 10 ** 6, 2e9)
    assert slow > 2 * fast


def test_moving_traffic_to_nm_reduces_energy():
    model = EnergyModel()
    all_fm = model.breakdown(0, 10 ** 7, 1e9).total_joules
    mostly_nm = model.breakdown(8 * 10 ** 6, 2 * 10 ** 6, 1e9).total_joules
    assert mostly_nm < all_fm
