"""Tests for statistics collectors and ASCII reporting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.collectors import Histogram, RunningStat, geometric_mean
from repro.stats.report import bar_chart, format_table, grouped_series


# ----------------------------------------------------------------------
# geometric mean
# ----------------------------------------------------------------------
def test_geometric_mean_basics():
    assert geometric_mean([2, 8]) == pytest.approx(4.0)
    assert geometric_mean([5]) == pytest.approx(5.0)


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -2.0])


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                max_size=30))
def test_geometric_mean_bounded_by_min_max(values):
    g = geometric_mean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


# ----------------------------------------------------------------------
# running stat
# ----------------------------------------------------------------------
def test_running_stat_mean_variance():
    stat = RunningStat()
    for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        stat.add(v)
    assert stat.mean == pytest.approx(5.0)
    assert stat.stddev == pytest.approx(math.sqrt(32 / 7))
    assert stat.minimum == 2.0
    assert stat.maximum == 9.0


def test_running_stat_empty():
    stat = RunningStat()
    assert stat.mean == 0.0
    assert stat.variance == 0.0


@settings(deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                max_size=100))
def test_running_stat_matches_numpy(values):
    import numpy as np

    stat = RunningStat()
    for v in values:
        stat.add(v)
    # tolerances account for catastrophic cancellation at 1e6 magnitudes
    assert stat.mean == pytest.approx(float(np.mean(values)), rel=1e-9,
                                      abs=1e-3)
    assert stat.variance == pytest.approx(float(np.var(values, ddof=1)),
                                          rel=1e-4, abs=1e-2)


# ----------------------------------------------------------------------
# histogram
# ----------------------------------------------------------------------
def test_histogram_percentiles():
    hist = Histogram(bucket_width=10)
    for v in range(100):
        hist.add(v)
    assert hist.percentile(50) == pytest.approx(50.0)
    assert hist.percentile(100) == pytest.approx(100.0)


def test_histogram_overflow_bucket():
    """Out-of-range values land in the explicit overflow bucket instead
    of being folded into the last regular one."""
    hist = Histogram(bucket_width=1, max_buckets=4)
    hist.add(1000)
    assert hist.overflow == 1
    assert hist.buckets() == []
    assert hist.max_value == 1000
    assert hist.percentile(100) == math.inf


def test_histogram_overflow_percentile_split():
    """Percentiles inside the bucketed range stay exact while the tail
    honestly reports as out of range."""
    hist = Histogram(bucket_width=10, max_buckets=10)  # span = 100
    for v in range(90):
        hist.add(v)
    for _ in range(10):
        hist.add(500)
    assert hist.overflow == 10
    assert hist.count == 100
    assert hist.percentile(50) == pytest.approx(50.0)
    assert hist.percentile(90) == pytest.approx(90.0)
    assert hist.percentile(95) == math.inf
    assert hist.span == 100.0


def test_histogram_rejects_bad_values():
    hist = Histogram(bucket_width=1)
    with pytest.raises(ValueError):
        hist.add(-1)
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        Histogram(bucket_width=0)


def test_histogram_empty_percentile():
    assert Histogram(1.0).percentile(50) == 0.0


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["bbbb", 20.25]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.500" in text and "20.250" in text


def test_bar_chart_scales_to_peak():
    text = bar_chart({"a": 1.0, "b": 2.0}, width=10)
    lines = text.splitlines()
    assert lines[1].count("#") == 10  # b is the peak
    assert lines[0].count("#") == 5


def test_bar_chart_empty():
    assert bar_chart({}, title="empty") == "empty"


def test_grouped_series_missing_cells():
    text = grouped_series({"s1": {"x": 1.0}, "s2": {"y": 2.0}})
    assert "-" in text
    assert "s1" in text and "s2" in text
    assert "x" in text and "y" in text
