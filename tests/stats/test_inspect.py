"""Tests for the scheme/run inspectors."""

import dataclasses

import pytest

from repro.core.silcfm import SilcFmScheme
from repro.experiments.runner import SCHEMES, run_one
from repro.sim.config import SilcFmConfig, default_config
from repro.stats.inspect import (
    describe_run,
    describe_silcfm,
    set_occupancy_histogram,
)
from repro.xmem.address import AddressSpace

NM = 16 * 2048
FM = 64 * 2048


@pytest.fixture
def scheme():
    s = SilcFmScheme(AddressSpace(NM, FM), SilcFmConfig(
        associativity=4, enable_bypass=False, bitvector_table_entries=64,
        metadata_cache_entries=8, access_rate_window=32))
    for i in range(200):
        addr = (NM + (i * 3 % 60) * 2048 + (i % 32) * 64) % (NM + FM)
        s.access(addr - addr % 64, False, pc=(1 << 40) + (i % 7) * 4)
    return s


def test_describe_silcfm_renders(scheme):
    text = describe_silcfm(scheme)
    assert "frames" in text
    assert "interleaved" in text
    assert "predictor way accuracy" in text
    assert str(len(scheme.frames)) in text


def test_frame_categories_partition(scheme):
    text = describe_silcfm(scheme)
    # counts parsed back out must sum to the frame count
    values = {}
    for line in text.splitlines()[2:]:
        parts = line.split("  ")
        parts = [p.strip() for p in parts if p.strip()]
        if len(parts) == 2:
            values[parts[0]] = parts[1]
    total = (int(values["clean (native only)"])
             + int(values["interleaved (two blocks)"])
             + int(values["fully remapped"])
             + int(values["locked (fm owner)"])
             + int(values["locked (nm owner)"]))
    assert total == len(scheme.frames)


def test_set_occupancy_histogram(scheme):
    histogram = set_occupancy_histogram(scheme)
    assert set(histogram) == {0, 1, 2, 3, 4}
    assert sum(histogram.values()) == scheme.num_sets
    assert sum(k * v for k, v in histogram.items()) == \
        sum(1 for f in scheme.frames if f.remap is not None)


def test_describe_run_renders():
    config = dataclasses.replace(default_config(scale=0.25), cores=2)
    result = run_one("silc", "lbm", config, misses_per_core=400)
    text = describe_run(result)
    assert "NM access rate" in text
    assert "lbm" in text
    assert "EDP" in text
