"""Boundary-condition tests for :mod:`repro.stats.collectors`.

The report tests cover the bulk behaviour; these pin the edges — the
single-sample variance convention, geometric-mean error paths, and the
exact bucket an on-boundary value lands in (off-by-one bait whenever
``value / width`` is an integer).
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.collectors import Histogram, RunningStat, geometric_mean


# ----------------------------------------------------------------------
# RunningStat edges
# ----------------------------------------------------------------------
def test_single_sample_variance_is_zero():
    """One sample has no spread: variance must be 0, not a division by
    ``count - 1 == 0``."""
    stat = RunningStat()
    stat.add(42.0)
    assert stat.count == 1
    assert stat.mean == 42.0
    assert stat.variance == 0.0
    assert stat.stddev == 0.0
    assert stat.minimum == 42.0
    assert stat.maximum == 42.0


def test_two_identical_samples_have_zero_variance():
    stat = RunningStat()
    stat.add(3.0)
    stat.add(3.0)
    assert stat.variance == pytest.approx(0.0)


def test_running_stat_extremes_track_order_independent():
    stat = RunningStat()
    for v in [5.0, -2.0, 9.0, 0.0]:
        stat.add(v)
    assert stat.minimum == -2.0
    assert stat.maximum == 9.0


# ----------------------------------------------------------------------
# geometric_mean error paths
# ----------------------------------------------------------------------
def test_geometric_mean_empty_raises_value_error():
    with pytest.raises(ValueError, match="nothing"):
        geometric_mean([])


def test_geometric_mean_zero_raises_value_error():
    with pytest.raises(ValueError, match="positive"):
        geometric_mean([1.0, 0.0, 2.0])


def test_geometric_mean_negative_raises_value_error():
    with pytest.raises(ValueError, match="positive"):
        geometric_mean([-1.0])


def test_geometric_mean_consumes_generators():
    """The input is listified before validation, so a generator is
    checked and averaged like a list (it can only be iterated once)."""
    assert geometric_mean(v for v in [2.0, 8.0]) == pytest.approx(4.0)


# ----------------------------------------------------------------------
# Histogram bucket boundaries
# ----------------------------------------------------------------------
def test_value_on_bucket_boundary_goes_to_upper_bucket():
    """Buckets are half-open ``[k*w, (k+1)*w)``: a value exactly on the
    edge belongs to the *upper* bucket."""
    hist = Histogram(bucket_width=10, max_buckets=8)
    hist.add(10.0)
    assert hist.buckets() == [(1, 1)]


def test_zero_lands_in_first_bucket():
    hist = Histogram(bucket_width=10, max_buckets=8)
    hist.add(0.0)
    assert hist.buckets() == [(0, 1)]


def test_value_just_below_boundary_stays_in_lower_bucket():
    hist = Histogram(bucket_width=10, max_buckets=8)
    hist.add(10.0 - 1e-9)
    assert hist.buckets() == [(0, 1)]


def test_span_edge_is_overflow():
    """``span`` itself is the first out-of-range value (half-open)."""
    hist = Histogram(bucket_width=10, max_buckets=4)
    hist.add(hist.span)          # 40 overflows
    hist.add(hist.span - 1e-9)   # 39.999... is the last in-range value
    assert hist.overflow == 1
    assert hist.buckets() == [(3, 1)]


def test_histogram_rejects_zero_buckets():
    with pytest.raises(ValueError):
        Histogram(bucket_width=1.0, max_buckets=0)


def test_all_overflow_percentile_is_inf():
    hist = Histogram(bucket_width=1.0, max_buckets=2)
    hist.add(100.0)
    hist.add(200.0)
    assert hist.percentile(50) == math.inf
    assert hist.max_value == 200.0


@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=1, max_value=100))
def test_bucket_index_consistent_with_span(value, width):
    """Every added value is either bucketed in-range or counted as
    overflow — never both, never neither.  (Integer values and widths
    keep the edge comparisons exact.)"""
    hist = Histogram(bucket_width=width, max_buckets=16)
    hist.add(value)
    in_range = sum(count for _, count in hist.buckets())
    assert in_range + hist.overflow == hist.count == 1
    if value >= hist.span:
        assert hist.overflow == 1
    else:
        assert hist.overflow == 0
        ((bucket, _),) = hist.buckets()
        assert bucket * width <= value < (bucket + 1) * width
