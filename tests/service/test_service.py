"""End-to-end tests for the asyncio sweep service.

Each test spins a real service on an ephemeral localhost port and talks
to it through :class:`SweepClient` over TCP — the same path production
clients take.  Simulations use a shrunken config so the whole module
stays fast.
"""

import asyncio
import dataclasses
import json

import pytest

from repro.experiments.executor import Cell, ExperimentExecutor
from repro.experiments.runner import run_one
from repro.service import ServiceError, SweepClient, SweepService
from repro.sim.config import default_config

MISSES = 150


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(scale=0.25), cores=2)


def make_cells(config, schemes=("nonm", "silc", "cam"), workload="mcf",
               **overrides):
    kwargs = dict(misses_per_core=MISSES)
    kwargs.update(overrides)
    return [Cell(s, workload, config, **kwargs) for s in schemes]


def canonical(result_dict):
    return json.dumps(result_dict, sort_keys=True)


# ---------------------------------------------------------------------------
# submit / results / progress
# ---------------------------------------------------------------------------
def test_submit_streams_byte_identical_results(config):
    cells = make_cells(config)

    async def go():
        async with SweepService(jobs=2, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                outcome = await client.run(cells, tenant="t1")
        return outcome

    outcome = asyncio.run(go())
    assert outcome.status == "completed" and outcome.ok
    assert set(outcome.results) == {0, 1, 2}
    assert set(outcome.sources.values()) == {"simulated"}
    for index, cell in enumerate(cells):
        direct = run_one(cell.scheme_key, cell.workload_name, cell.config,
                         misses_per_core=cell.misses_per_core)
        assert canonical(outcome.results[index]) == canonical(
            direct.to_dict()), f"cell {index} diverged from solo run"
    # per-job progress rides the executor's Progress machinery
    assert outcome.progress["total"] == 3
    assert outcome.progress["completed"] == 3
    assert outcome.progress["simulated"] == 3
    assert outcome.progress["failed"] == 0


def test_repeat_submission_is_served_from_cache(config):
    cells = make_cells(config)

    async def go():
        async with SweepService(jobs=2, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                first = await client.run(cells, tenant="t1")
                second = await client.run(cells, tenant="t2")
                stats = await client.stats()
        return first, second, stats

    first, second, stats = asyncio.run(go())
    assert set(second.sources.values()) == {"cache"}
    for index in second.results:
        assert canonical(second.results[index]) == canonical(
            first.results[index])
    assert stats["unique_simulated"] == len(cells)
    assert stats["max_executions_per_key"] == 1
    assert stats["cells"]["by_source"]["cache"] == len(cells)
    latency = stats["cache_hit_latency"]
    assert latency["count"] == len(cells)
    assert latency["p50_ms"] is not None and latency["p50_ms"] >= 0
    # conservation: every completed cell has exactly one source
    by_source = stats["cells"]["by_source"]
    assert stats["cells"]["completed"] == sum(by_source.values())


# ---------------------------------------------------------------------------
# single-flight dedup across tenants
# ---------------------------------------------------------------------------
def test_concurrent_tenants_share_single_flight_execution(config):
    """Two tenants submitting overlapping sweeps concurrently: shared
    cells execute exactly once, results fan out to both, and the
    latecomer's events are tagged ``dedup``."""
    shared = make_cells(config, schemes=("nonm", "silc"))
    only_b = make_cells(config, schemes=("cam",))

    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            client_a = await SweepClient("127.0.0.1", service.port).connect()
            client_b = await SweepClient("127.0.0.1", service.port).connect()
            try:
                outcome_a, outcome_b = await asyncio.gather(
                    client_a.run(shared, tenant="a"),
                    client_b.run(shared + only_b, tenant="b"))
                stats = await client_a.stats()
            finally:
                await client_a.close()
                await client_b.close()
        return outcome_a, outcome_b, stats

    outcome_a, outcome_b, stats = asyncio.run(go())
    assert outcome_a.ok and outcome_b.ok
    # every tenant received its full result set
    assert set(outcome_a.results) == {0, 1}
    assert set(outcome_b.results) == {0, 1, 2}
    # the overlapping cells are identical objects wire-to-wire
    for index in (0, 1):
        assert canonical(outcome_a.results[index]) == canonical(
            outcome_b.results[index])
    # exactly-once: 3 unique keys, no key executed twice
    assert stats["unique_simulated"] == 3
    assert stats["max_executions_per_key"] == 1
    assert stats["cells"]["by_source"]["dedup"] == 2
    assert stats["dedup_hit_rate"] == pytest.approx(2 / 5)
    sources = set(outcome_a.sources.values()) | set(
        outcome_b.sources.values())
    assert "dedup" in sources and "simulated" in sources


def test_duplicate_cells_within_one_job_dedupe(config):
    """Intra-job duplicates also single-flight, yet every submitted
    index gets its event — tenants never have to pre-dedupe."""
    cell = make_cells(config, schemes=("nonm",))[0]
    cells = [cell, cell, cell]

    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                outcome = await client.run(cells)
                stats = await client.stats()
        return outcome, stats

    outcome, stats = asyncio.run(go())
    assert outcome.ok and set(outcome.results) == {0, 1, 2}
    assert stats["unique_simulated"] == 1
    assert stats["max_executions_per_key"] == 1
    assert stats["cells"]["by_source"]["dedup"] == 2


# ---------------------------------------------------------------------------
# shared on-disk cache with the CLI executor
# ---------------------------------------------------------------------------
def test_service_serves_results_the_cli_simulated(tmp_path, config):
    cells = make_cells(config, schemes=("silc",))
    executor = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    direct = executor.run_cell(cells[0])

    async def go():
        async with SweepService(jobs=1, cache_dir=str(tmp_path),
                                telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                outcome = await client.run(cells)
                stats = await client.stats()
        return outcome, stats

    outcome, stats = asyncio.run(go())
    assert outcome.sources[0] == "cache"
    assert canonical(outcome.results[0]) == canonical(direct.to_dict())
    assert stats["unique_simulated"] == 0


def test_cli_resumes_from_results_the_service_simulated(tmp_path, config):
    cells = make_cells(config, schemes=("nonm", "silc"))

    async def go():
        async with SweepService(jobs=2, cache_dir=str(tmp_path),
                                telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                return await client.run(cells)

    outcome = asyncio.run(go())
    assert outcome.ok
    executor = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
    results = executor.run_cells(cells)
    assert executor.last_progress.simulated == 0
    assert executor.last_progress.cache_hits == 2
    for index, cell in enumerate(cells):
        assert canonical(results[cell].to_dict()) == canonical(
            outcome.results[index])


# ---------------------------------------------------------------------------
# worker-failure isolation under the service
# ---------------------------------------------------------------------------
def test_poisoned_cell_fails_alone_and_tenants_are_isolated(config):
    """A job with one poisoned cell: only that cell fails, the failure
    is reported on the job's own event stream, and a concurrent
    tenant's healthy job is untouched."""
    poisoned = [Cell("no-such-scheme", "mcf", config,
                     misses_per_core=MISSES)] + make_cells(
        config, schemes=("nonm", "silc"))
    healthy = make_cells(config, schemes=("cam",), workload="milc")

    async def go():
        async with SweepService(jobs=2, telemetry_interval=0) as service:
            client_a = await SweepClient("127.0.0.1", service.port).connect()
            client_b = await SweepClient("127.0.0.1", service.port).connect()
            try:
                outcome_a, outcome_b = await asyncio.gather(
                    client_a.run(poisoned, tenant="victim"),
                    client_b.run(healthy, tenant="bystander"))
                stats = await client_b.stats()
            finally:
                await client_a.close()
                await client_b.close()
        return outcome_a, outcome_b, stats

    outcome_a, outcome_b, stats = asyncio.run(go())
    # the poisoned job: exactly one cell_error, the rest delivered
    assert outcome_a.status == "failed"
    assert set(outcome_a.errors) == {0}
    assert "no-such-scheme" in outcome_a.errors[0]
    assert "KeyError" in outcome_a.errors[0]
    assert set(outcome_a.results) == {1, 2}
    assert outcome_a.progress["failed"] == 1
    assert outcome_a.progress["completed"] == 3
    # the bystander tenant never noticed
    assert outcome_b.ok
    assert outcome_b.progress["failed"] == 0
    assert stats["cells"]["failed"] == 1
    assert stats["jobs"]["failed"] == 1
    assert stats["jobs"]["completed"] == 1


def test_failed_keys_are_retried_on_resubmission(config):
    """Failures are not memoised: a resubmitted poisoned cell fails
    again (fresh attempt) rather than replaying a cached traceback."""
    poisoned = [Cell("no-such-scheme", "mcf", config,
                     misses_per_core=MISSES)]

    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                first = await client.run(poisoned)
                second = await client.run(poisoned)
        return first, second

    first, second = asyncio.run(go())
    assert first.status == "failed" and second.status == "failed"
    assert 0 in first.errors and 0 in second.errors


# ---------------------------------------------------------------------------
# job control: status / cancel
# ---------------------------------------------------------------------------
def test_status_and_cancel_from_a_second_connection(config):
    """A slow job (jobs=1, several cells) can be observed and cancelled
    from another connection; the submitter still gets job_done."""
    cells = make_cells(config,
                       schemes=("nonm", "silc", "cam", "pom", "hma"),
                       misses_per_core=600)

    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            submitter = await SweepClient(
                "127.0.0.1", service.port).connect()
            controller = await SweepClient(
                "127.0.0.1", service.port).connect()
            try:
                job_id = await submitter.submit(cells, tenant="slow")
                status = await controller.status(job_id)
                assert status["status"] in ("pending", "running")
                cancelled = await controller.cancel(job_id)
                assert cancelled["job_id"] == job_id
                # the submitter's stream terminates with job_done
                done = await submitter.recv_type("job_done")
                # cancelling twice is an error
                with pytest.raises(ServiceError, match="already"):
                    await controller.cancel(job_id)
                final = await controller.status(job_id)
            finally:
                await submitter.close()
                await controller.close()
        return done, final

    done, final = asyncio.run(go())
    assert done["status"] == "cancelled"
    assert final["status"] == "cancelled"
    assert done["progress"]["completed"] < len(cells)


def test_unknown_job_is_an_error(config):
    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                with pytest.raises(ServiceError, match="unknown job"):
                    await client.status("job-999")
                with pytest.raises(ServiceError, match="unknown job"):
                    await client.cancel("job-999")

    asyncio.run(go())


def test_cancel_spares_other_tenants_shared_cells(config):
    """Cancelling tenant A must not starve tenant B of cells both
    jobs share single-flight: the execution belongs to the key, not
    the job."""
    shared = make_cells(config, schemes=("nonm", "silc", "cam"),
                        misses_per_core=600)

    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            client_a = await SweepClient("127.0.0.1", service.port).connect()
            client_b = await SweepClient("127.0.0.1", service.port).connect()
            try:
                job_a = await client_a.submit(shared, tenant="a")
                collect_b = asyncio.ensure_future(
                    client_b.run(shared, tenant="b"))
                await asyncio.sleep(0.05)
                await client_a.cancel(job_a)
                done_a = await client_a.recv_type("job_done")
                outcome_b = await collect_b
            finally:
                await client_a.close()
                await client_b.close()
        return done_a, outcome_b

    done_a, outcome_b = asyncio.run(go())
    assert done_a["status"] == "cancelled"
    assert outcome_b.ok
    assert set(outcome_b.results) == {0, 1, 2}


# ---------------------------------------------------------------------------
# telemetry stream / protocol errors / shutdown
# ---------------------------------------------------------------------------
def test_watcher_receives_windowed_telemetry(config):
    cells = make_cells(config)

    async def go():
        async with SweepService(jobs=2,
                                telemetry_interval=0.05) as service:
            watcher = await SweepClient("127.0.0.1", service.port).connect()
            submitter = await SweepClient(
                "127.0.0.1", service.port).connect()
            try:
                await watcher.watch()
                outcome = await submitter.run(cells)
                telemetry = await asyncio.wait_for(
                    watcher.recv_type("telemetry"), timeout=5)
            finally:
                await watcher.close()
                await submitter.close()
        return outcome, telemetry

    outcome, telemetry = asyncio.run(go())
    assert outcome.ok
    assert telemetry["interval_seconds"] == pytest.approx(0.05)
    assert {"completed", "failed", "cache", "simulated", "dedup",
            "cells_per_second"} <= set(telemetry["window"])
    assert telemetry["totals"]["completed"] >= 0
    assert "active_jobs" in telemetry and "inflight" in telemetry


def test_submitter_stream_carries_telemetry_snapshots(config):
    """Active submitters get telemetry interleaved with cell events
    without asking."""
    cells = make_cells(config, misses_per_core=800)
    seen = []

    async def go():
        async with SweepService(jobs=1,
                                telemetry_interval=0.05) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                return await client.run(cells, on_event=seen.append)

    outcome = asyncio.run(go())
    assert outcome.ok
    kinds = {event["type"] for event in seen}
    assert "cell" in kinds and "job_done" in kinds
    assert "telemetry" in kinds, "no windowed snapshot reached the tenant"


def test_malformed_request_gets_error_reply(config):
    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                await client.send({"type": "teleport"})
                with pytest.raises(ServiceError, match="unknown request"):
                    await client.recv_type("pong")
                # the connection survives a bad request

    asyncio.run(go())


def test_shutdown_request_stops_run_until_shutdown(config):
    async def go():
        service = SweepService(jobs=1, telemetry_interval=0)
        await service.start()
        runner = asyncio.ensure_future(service.run_until_shutdown())
        async with SweepClient("127.0.0.1", service.port) as client:
            reply = await client.shutdown()
        await asyncio.wait_for(runner, timeout=5)
        return reply

    reply = asyncio.run(go())
    assert reply["type"] == "shutting_down"
