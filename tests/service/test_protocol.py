"""Wire-protocol unit tests: framing, validation, cell round trips."""

import asyncio
import dataclasses
import json

import pytest

from repro.experiments.executor import Cell
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    cells_from_submit,
    encode,
    read_message,
    submit_request,
    validate_request,
)
from repro.sim.config import default_config


def _reader_with(data: bytes, limit: int = 1 << 20) -> asyncio.StreamReader:
    reader = asyncio.StreamReader(limit=limit)
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read_all(data: bytes, limit: int = 1 << 20):
    async def go():
        reader = _reader_with(data, limit)
        messages = []
        while True:
            message = await read_message(reader)
            if message is None:
                return messages
            messages.append(message)

    return asyncio.run(go())


def test_encode_is_one_canonical_line():
    line = encode({"b": 1, "a": 2})
    assert line == b'{"a":2,"b":1}\n'


def test_read_message_round_trips_and_skips_blanks():
    payload = encode({"type": "ping"}) + b"\n\n" + encode(
        {"type": "stats", "req_id": "r1"})
    messages = _read_all(payload)
    assert messages == [{"type": "ping"},
                        {"type": "stats", "req_id": "r1"}]


def test_read_message_eof_is_none():
    assert _read_all(b"") == []


def test_invalid_json_raises():
    with pytest.raises(ProtocolError, match="invalid JSON"):
        _read_all(b"{not json}\n")


def test_non_object_message_raises():
    with pytest.raises(ProtocolError, match="object with a 'type'"):
        _read_all(b"[1,2,3]\n")


def test_oversized_line_raises_protocol_error():
    blob = b'{"type":"ping","pad":"' + b"x" * 4096 + b'"}\n'
    with pytest.raises(ProtocolError):
        _read_all(blob, limit=256)


def test_validate_request_rejects_unknown_type():
    with pytest.raises(ProtocolError, match="unknown request type"):
        validate_request({"type": "teleport"})


def test_validate_request_requires_job_id():
    for kind in ("status", "cancel"):
        with pytest.raises(ProtocolError, match="job_id"):
            validate_request({"type": kind})
        assert validate_request({"type": kind, "job_id": "job-1"}) == kind


def test_validate_request_requires_cells():
    with pytest.raises(ProtocolError, match="cells"):
        validate_request({"type": "submit", "cells": []})


def test_submit_round_trip_preserves_cell_keys():
    config = dataclasses.replace(default_config(scale=0.25), cores=2)
    cells = [Cell("silc", "mcf", config, misses_per_core=300, seed=7),
             Cell("nonm", "milc", config, misses_per_core=200)]
    message = submit_request(cells, tenant="t1", req_id="r9")
    assert message["tenant"] == "t1" and message["req_id"] == "r9"
    # through the wire: encode -> readline -> decode
    decoded = json.loads(encode(message).decode())
    rebuilt = cells_from_submit(decoded)
    assert rebuilt == cells
    assert [c.key() for c in rebuilt] == [c.key() for c in cells]


def test_cells_from_submit_flags_undecodable_cells():
    with pytest.raises(ProtocolError, match="undecodable cell"):
        cells_from_submit({"type": "submit", "cells": [{"bogus": True}]})


def test_line_limit_fits_hundreds_of_cells():
    """A submit line carries full configs; the limit must hold a
    hundreds-of-cells sweep with room to spare."""
    config = default_config(scale=0.25)
    one_cell = len(encode(submit_request(
        [Cell("silc", "mcf", config, misses_per_core=5000)])))
    assert one_cell * 500 < MAX_LINE_BYTES
