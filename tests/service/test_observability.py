"""Observability of the live service: the ``metrics`` NDJSON verb, the
HTTP ``/metrics``/``/healthz`` listener, error-path counters + logs,
and the trace journal that :func:`write_fleet_trace` stitches."""

import asyncio
import dataclasses
import json
import urllib.error
import urllib.request

import pytest

from repro.experiments.executor import Cell
from repro.obs import log
from repro.obs.metrics import parse_exposition, sample_value
from repro.obs.trace import stitch_fleet_trace, write_fleet_trace
from repro.service import SweepClient, SweepService
from repro.sim.config import default_config
from repro.telemetry.tracer import validate_chrome_trace

MISSES = 150


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(scale=0.25), cores=2)


def make_cells(config, schemes=("nonm", "cam"), workload="mcf"):
    return [Cell(s, workload, config, misses_per_core=MISSES)
            for s in schemes]


def scrape(samples_text):
    return parse_exposition(samples_text)


# ---------------------------------------------------------------------------
# metrics verb
# ---------------------------------------------------------------------------
def test_metrics_verb_agrees_with_the_exactly_once_witness(config):
    cells = make_cells(config)

    async def go():
        async with SweepService(jobs=2, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                await client.run(cells, tenant="t1")
                await client.run(cells, tenant="t2")  # memo cache hits
                stats = await client.stats()
                metrics = await client.metrics()
        return stats, metrics

    stats, metrics = asyncio.run(go())
    assert metrics["content_type"].startswith("text/plain; version=0.0.4")
    samples = scrape(metrics["exposition"])

    completed = sum(
        sample_value(samples, "repro_cells_completed_total", default=0,
                     source=s)
        for s in ("cache", "simulated", "dedup"))
    # conservation: the counters tell the same story as stats
    assert completed == stats["cells"]["completed"] == 2 * len(cells)
    assert sample_value(samples, "repro_cells_completed_total",
                        source="simulated") == len(cells)
    assert sample_value(samples, "repro_cells_completed_total",
                        source="cache") == len(cells)
    # exactly-once: unique executions == unique keys submitted
    assert sample_value(
        samples, "repro_unique_simulations_total") == len(cells)
    assert sample_value(samples, "repro_cells_requested_total") == (
        2 * len(cells))
    assert sample_value(samples, "repro_jobs_total",
                        state="submitted") == 2
    assert sample_value(samples, "repro_jobs_total",
                        state="completed") == 2
    # NDJSON accounting saw traffic both ways
    assert sample_value(samples, "repro_ndjson_bytes_total",
                        direction="in") > 0
    assert sample_value(samples, "repro_ndjson_bytes_total",
                        direction="out") > 0
    # cache hits landed in the latency histogram
    assert sample_value(
        samples, "repro_cache_hit_latency_seconds_count") == len(cells)


# ---------------------------------------------------------------------------
# error paths: counters + structured logs + streamed events
# ---------------------------------------------------------------------------
def test_poisoned_cell_increments_counter_and_logs(config):
    cells = [Cell("no-such-scheme", "mcf", config,
                  misses_per_core=MISSES)] + make_cells(
        config, schemes=("nonm",))

    async def go():
        async with SweepService(jobs=2, telemetry_interval=0) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                outcome = await client.run(cells, tenant="victim")
                metrics = await client.metrics()
        return outcome, metrics

    with log.capture() as records:
        outcome, metrics = asyncio.run(go())

    # streamed event: the tenant saw the failure on its own stream
    assert outcome.status == "failed"
    assert set(outcome.errors) == {0}
    assert "no-such-scheme" in outcome.errors[0]
    # counter: exactly one cell error
    samples = scrape(metrics["exposition"])
    assert sample_value(samples, "repro_cell_errors_total") == 1
    # structured log: a cell_error record with the tenant bound
    cell_errors = [r for r in records if r["event"] == "cell_error"]
    assert len(cell_errors) == 1
    assert cell_errors[0]["level"] == "error"
    assert cell_errors[0]["tenant"] == "victim"
    assert "no-such-scheme" in cell_errors[0]["error"]
    # the worker-side failure was logged too (same process: jobs>=1
    # pool still runs execute_cell_payload which logs cell_failed)
    assert any(r["event"] == "worker_failure" for r in records)


def test_malformed_and_rejected_requests_count_and_log(config):
    async def go():
        async with SweepService(jobs=1, telemetry_interval=0) as service:
            async def raw_exchange(line: bytes) -> dict:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port)
                try:
                    writer.write(line + b"\n")
                    await writer.drain()
                    return json.loads((await reader.readline()).decode())
                finally:
                    writer.close()
                    await writer.wait_closed()

            # a malformed line closes the connection, so each probe
            # gets its own; a well-formed request for an unknown job is
            # the "rejected" flavour
            error1 = await raw_exchange(b"this is not json")
            error2 = await raw_exchange(json.dumps(
                {"type": "status", "job_id": "no-such-job"}).encode())
            async with SweepClient("127.0.0.1", service.port) as client:
                metrics = await client.metrics()
        return error1, error2, metrics

    with log.capture() as records:
        error1, error2, metrics = asyncio.run(go())

    assert error1["type"] == "error"
    assert error2["type"] == "error"
    samples = scrape(metrics["exposition"])
    assert sample_value(samples, "repro_protocol_errors_total",
                        kind="malformed") >= 1
    assert sample_value(samples, "repro_protocol_errors_total",
                        kind="rejected") >= 1
    events = {r["event"] for r in records}
    assert "malformed_request" in events
    assert "request_rejected" in events


# ---------------------------------------------------------------------------
# HTTP listener
# ---------------------------------------------------------------------------
def http_get(port, path):
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, b""


def test_http_metrics_and_healthz(config):
    cells = make_cells(config, schemes=("nonm",))

    async def go():
        async with SweepService(jobs=1, telemetry_interval=0,
                                metrics_port=0) as service:
            assert service.metrics_http_port
            async with SweepClient("127.0.0.1", service.port) as client:
                await client.run(cells, tenant="t1")
            port = service.metrics_http_port
            loop = asyncio.get_running_loop()
            scrapes = await asyncio.gather(
                loop.run_in_executor(None, http_get, port, "/metrics"),
                loop.run_in_executor(None, http_get, port, "/healthz"),
                loop.run_in_executor(None, http_get, port, "/nope"))
        return scrapes

    (m_status, m_body), (h_status, h_body), (nf_status, _) = asyncio.run(go())
    assert m_status == 200
    samples = scrape(m_body.decode("utf-8"))
    assert sample_value(samples, "repro_cells_completed_total",
                        source="simulated") == 1
    assert sample_value(samples, "repro_worker_pool_size") == 1
    assert h_status == 200
    health = json.loads(h_body)
    assert health["ok"] is True
    assert nf_status == 404


# ---------------------------------------------------------------------------
# trace journal end to end
# ---------------------------------------------------------------------------
def test_trace_dir_journal_stitches_after_stop(config, tmp_path):
    cells = make_cells(config)
    trace_dir = tmp_path / "fleet"

    async def go():
        async with SweepService(jobs=2, telemetry_interval=0,
                                trace_dir=str(trace_dir)) as service:
            async with SweepClient("127.0.0.1", service.port) as client:
                await client.run(cells, tenant="alice")
                await client.run(cells, tenant="bob")  # cache hits

    asyncio.run(go())

    container = stitch_fleet_trace(trace_dir)
    validate_chrome_trace(container["traceEvents"])
    other = container["otherData"]
    assert other["tenants"] == 2
    assert other["jobs"] == 2
    assert other["cells"] == 2 * len(cells)
    # only the unique simulations produced worker spans
    assert other["worker_spans"] == len(cells)

    out = tmp_path / "fleet-trace.json"
    summary = write_fleet_trace(trace_dir, out)
    assert summary == other | {"journal": summary["journal"]}
    loaded = json.loads(out.read_text(encoding="utf-8"))
    validate_chrome_trace(loaded["traceEvents"])
    # cache-hit cells have no worker arrow but still carry their source
    sources = {e["args"]["source"] for e in loaded["traceEvents"]
               if e.get("cat") == "fleet.cell"}
    assert sources == {"simulated", "cache"}
