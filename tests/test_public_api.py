"""Public API surface tests: what README promises must exist."""

import importlib
import inspect

import repro


def test_version_exposed():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_names():
    # the README quickstart uses exactly these
    assert callable(repro.run_one)
    assert callable(repro.default_config)
    assert "nonm" in repro.SCHEMES and "silc" in repro.SCHEMES


def test_every_public_module_importable():
    modules = [
        "repro.core", "repro.core.silcfm", "repro.core.metadata",
        "repro.core.bitvector", "repro.core.activity", "repro.core.predictor",
        "repro.core.bypass",
        "repro.schemes", "repro.schemes.base", "repro.schemes.static",
        "repro.schemes.cameo", "repro.schemes.pom", "repro.schemes.hma",
        "repro.schemes.alloycache",
        "repro.dram", "repro.dram.timing", "repro.dram.bank",
        "repro.dram.channel", "repro.dram.device", "repro.dram.mapping",
        "repro.cache", "repro.cache.cache", "repro.cache.hierarchy",
        "repro.cpu", "repro.cpu.core", "repro.cpu.controller",
        "repro.cpu.system",
        "repro.xmem", "repro.xmem.address", "repro.xmem.translation",
        "repro.workloads", "repro.workloads.model", "repro.workloads.spec",
        "repro.workloads.trace", "repro.workloads.io",
        "repro.energy", "repro.energy.model",
        "repro.stats", "repro.stats.collectors", "repro.stats.report",
        "repro.experiments", "repro.experiments.runner",
        "repro.experiments.figures", "repro.experiments.mixes",
        "repro.experiments.report_writer", "repro.experiments.sweeps",
        "repro.stats.inspect",
        "repro.sim", "repro.sim.engine", "repro.sim.config",
    ]
    for name in modules:
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"


def test_public_classes_documented():
    from repro.core.silcfm import SilcFmScheme
    from repro.cpu.system import RunResult, System
    from repro.schemes.base import AccessPlan, MemoryScheme

    for obj in (SilcFmScheme, System, RunResult, AccessPlan, MemoryScheme):
        assert inspect.getdoc(obj), obj
        for name, member in inspect.getmembers(obj, inspect.isfunction):
            if not name.startswith("_"):
                assert inspect.getdoc(member), f"{obj.__name__}.{name}"


def test_scheme_registry_labels_unique():
    labels = [s.label for s in repro.SCHEMES.values()]
    assert len(labels) == len(set(labels))
