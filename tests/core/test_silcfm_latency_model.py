"""Focused tests for SILC-FM's metadata critical-path model
(Section III-F): scan order, metadata cache, speculation outcomes."""

from repro.core.silcfm import SilcFmScheme
from repro.schemes.base import Level
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SilcFmConfig
from repro.xmem.address import AddressSpace

NM_BLOCKS = 16
NM = NM_BLOCKS * BLOCK_BYTES
FM = 64 * BLOCK_BYTES
PC = 1 << 40


def make_scheme(**overrides):
    base = dict(
        associativity=4,
        enable_locking=False,
        enable_bypass=False,
        bitvector_table_entries=64,
        predictor_entries=256,
        metadata_cache_entries=2,   # tiny: misses are easy to provoke
        access_rate_window=32,
    )
    base.update(overrides)
    return SilcFmScheme(AddressSpace(NM, FM), SilcFmConfig(**base))


def meta_ops(plan, scheme):
    return [op for op in plan.critical_ops() + plan.background
            if op.addr >= NM and op.level is Level.NM]


def test_cold_install_scans_all_ways():
    scheme = make_scheme(enable_predictor=False)
    plan = scheme.access(NM_BLOCKS * BLOCK_BYTES, False, pc=PC)
    # 4 serial metadata stages + 1 data stage
    assert len(plan.stages) == 5
    assert len(meta_ops(plan, scheme)) == 4


def test_matched_hit_without_predictor_scans_to_hit_way():
    scheme = make_scheme(enable_predictor=False, associativity=4,
                         metadata_cache_entries=1)
    addr = NM_BLOCKS * BLOCK_BYTES + 5 * SUBBLOCK_BYTES  # set 0, subblock 5
    scheme.access(addr, False, pc=PC)     # install into some way of set 0
    # churn the 1-entry metadata cache with an access to another set
    scheme.access(2 * BLOCK_BYTES, False, pc=PC)
    plan = scheme.access(addr, False, pc=PC)
    assert plan.serviced_from is Level.NM
    # the scan stops at the matching way: between 1 and 4 metadata reads
    n_meta = len(meta_ops(plan, scheme))
    assert 1 <= n_meta <= 4
    # data stage is last and serialised after the scan
    assert plan.stages[-1][0].addr < NM


def test_metadata_cache_hit_removes_dram_fetch():
    scheme = make_scheme(enable_predictor=False, metadata_cache_entries=64)
    addr = NM_BLOCKS * BLOCK_BYTES
    scheme.access(addr, False, pc=PC)
    plan = scheme.access(addr, False, pc=PC)   # same set: entries cached
    assert len(meta_ops(plan, scheme)) == 0
    assert scheme.meta_cache_hits > 0


def test_perfect_speculation_single_data_stage():
    scheme = make_scheme(metadata_cache_entries=1)
    addr = NM_BLOCKS * BLOCK_BYTES + 5 * SUBBLOCK_BYTES
    scheme.access(addr, False, pc=PC)     # install (predictor learns FM)
    scheme.access(addr, False, pc=PC)     # NM hit (predictor learns NM)
    # churn the metadata cache with an access to another set
    scheme.access(2 * BLOCK_BYTES, False, pc=PC + 4)
    plan = scheme.access(addr, False, pc=PC)
    assert plan.serviced_from is Level.NM
    assert len(plan.stages) == 1
    assert len(plan.stages[0]) == 1
    # any metadata fetch happens as background verification
    assert all(op.addr >= NM for op in plan.background
               if op.level is Level.NM)


def test_correct_fm_speculation_hides_the_scan():
    """Predicted-FM accesses complete at data latency even when the way
    prediction is useless (new block)."""
    scheme = make_scheme()
    base_block = NM_BLOCKS + 1  # set 1
    a = base_block * BLOCK_BYTES
    # two misses with the same pc/block index teach "in_fm=True"
    scheme.access(a, False, pc=PC)
    # a *different* block aliasing to the same predictor entry would be
    # ideal; easier: access another subblock of the same block while it
    # is bypassed out... instead evict it and re-access: predictor still
    # says FM from the install.
    rival = (base_block + NM_BLOCKS // 4) * BLOCK_BYTES
    for k in range(4):  # fill the set's ways with rivals
        scheme.access((base_block + (k + 1) * NM_BLOCKS // 4) * BLOCK_BYTES,
                      False, pc=PC + 8 * (k + 1))
    plan = scheme.access(a, False, pc=PC)  # reinstall; in_fm was True
    if plan.serviced_from is Level.FM and len(plan.stages) == 1:
        # speculation hit: scan is background-only
        assert all(op.size == 8 for op in plan.background
                   if op.level is Level.NM and op.addr >= NM)


def test_wrong_fm_speculation_costs_bandwidth_only():
    scheme = make_scheme()
    addr = NM_BLOCKS * BLOCK_BYTES + 5 * SUBBLOCK_BYTES
    scheme.access(addr, False, pc=PC)          # install; predictor: FM
    plan = scheme.access(addr, False, pc=PC)   # now NM; may mispredict loc
    assert plan.serviced_from is Level.NM
    # regardless of speculation outcome, the critical path never gains
    # an FM stage for an NM-serviced access
    assert all(op.level is Level.NM for op in plan.critical_ops())
