"""Property-based tests of SILC-FM's fundamental invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import FULL_BITVEC
from repro.core.silcfm import SilcFmScheme
from repro.schemes.base import Level
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SilcFmConfig
from repro.xmem.address import AddressSpace

NM_BLOCKS = 16
FM_BLOCKS = 64
NM = NM_BLOCKS * BLOCK_BYTES
FM = FM_BLOCKS * BLOCK_BYTES


def full_config(**overrides):
    base = dict(
        associativity=4,
        hot_threshold=8,
        aging_period_accesses=200,
        bitvector_table_entries=256,
        predictor_entries=256,
        metadata_cache_entries=16,
        access_rate_window=32,
    )
    base.update(overrides)
    return SilcFmConfig(**base)


addr_lists = st.lists(
    st.integers(min_value=0, max_value=NM + FM - 1), min_size=1, max_size=400)
pc_lists = st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=400)


@settings(max_examples=25, deadline=None)
@given(addrs=addr_lists, pcs=pc_lists)
def test_bijection_with_all_features(addrs, pcs):
    """After ANY access sequence — swaps, installs, restores, locks,
    unlocks, aging, bypassing — every subblock of the flat space lives in
    exactly one storage slot (the part-of-memory invariant: data is
    never duplicated or lost)."""
    scheme = SilcFmScheme(AddressSpace(NM, FM), full_config())
    for addr, pc in zip(addrs, pcs * (len(addrs) // len(pcs) + 1)):
        scheme.access(addr - addr % SUBBLOCK_BYTES, addr % 2 == 0,
                      pc=(1 << 40) + pc * 4)
    seen = {}
    for sb in range(0, NM + FM, SUBBLOCK_BYTES):
        slot = scheme.locate(sb)
        assert slot not in seen, (
            f"{sb:#x} and {seen[slot]:#x} both stored at {slot}")
        seen[slot] = sb


@settings(max_examples=25, deadline=None)
@given(addrs=addr_lists)
def test_storage_slots_are_exactly_the_flat_space(addrs):
    """The set of storage slots is exactly {NM offsets} + {FM offsets}:
    swapping permutes the space, never inventing or leaking slots."""
    scheme = SilcFmScheme(AddressSpace(NM, FM), full_config())
    for addr in addrs:
        scheme.access(addr - addr % SUBBLOCK_BYTES, False, pc=1 << 40)
    nm_slots = set()
    fm_slots = set()
    for sb in range(0, NM + FM, SUBBLOCK_BYTES):
        level, offset = scheme.locate(sb)
        assert offset % SUBBLOCK_BYTES == 0
        (nm_slots if level is Level.NM else fm_slots).add(offset)
    assert nm_slots == set(range(0, NM, SUBBLOCK_BYTES))
    assert fm_slots == set(range(0, FM, SUBBLOCK_BYTES))


@settings(max_examples=25, deadline=None)
@given(addrs=addr_lists)
def test_metadata_consistency(addrs):
    """Frame metadata and the reverse map always agree; locked frames
    obey their owner semantics; bit vectors are within range."""
    scheme = SilcFmScheme(AddressSpace(NM, FM), full_config())
    for addr in addrs:
        scheme.access(addr - addr % SUBBLOCK_BYTES, False, pc=1 << 40)
    reverse_seen = set()
    for way, frame in enumerate(scheme.frames):
        assert 0 <= frame.bitvec <= FULL_BITVEC
        assert 0 <= frame.nm_count <= 63
        assert 0 <= frame.fm_count <= 63
        if frame.remap is not None:
            assert scheme.way_of_block(frame.remap) == way
            assert frame.remap not in reverse_seen
            reverse_seen.add(frame.remap)
            # the remapped block must map to this frame's set
            assert frame.remap % scheme.num_sets == way % scheme.num_sets
        else:
            assert frame.bitvec == 0
        if frame.locked:
            assert frame.lock_owner in ("nm", "fm")
            if frame.lock_owner == "fm":
                assert frame.remap is not None
            else:
                assert frame.remap is None
    # every reverse-map entry points at a frame that claims it
    for block, way in scheme._frame_of_block.items():
        assert scheme.frames[way].remap == block


@settings(max_examples=20, deadline=None)
@given(addrs=addr_lists)
def test_service_level_matches_locate(addrs):
    """A plan's serviced_from must agree with where locate() said the
    data was at access time (before any swap updates)."""
    scheme = SilcFmScheme(AddressSpace(NM, FM), full_config())
    for addr in addrs:
        aligned = addr - addr % SUBBLOCK_BYTES
        level_before, __ = scheme.locate(aligned)
        plan = scheme.access(aligned, False, pc=1 << 40)
        assert plan.serviced_from is level_before


@settings(max_examples=20, deadline=None)
@given(addrs=addr_lists)
def test_all_ops_are_device_legal(addrs):
    """Every op in every plan targets a legal device-local range."""
    scheme = SilcFmScheme(AddressSpace(NM, FM), full_config())
    meta_region = NM_BLOCKS * 8
    for addr in addrs:
        plan = scheme.access(addr - addr % SUBBLOCK_BYTES, False, pc=1 << 40)
        for op in plan.critical_ops() + plan.background:
            assert op.size > 0
            if op.level is Level.NM:
                assert 0 <= op.addr < NM + meta_region
                assert op.addr + op.size <= NM + meta_region
            else:
                assert 0 <= op.addr < FM
                assert op.addr + op.size <= FM


@settings(max_examples=15, deadline=None)
@given(addrs=addr_lists, seed=st.integers(min_value=0, max_value=5))
def test_determinism(addrs, seed):
    """Two schemes fed the same sequence end in identical states."""
    a = SilcFmScheme(AddressSpace(NM, FM), full_config())
    b = SilcFmScheme(AddressSpace(NM, FM), full_config())
    for addr in addrs:
        aligned = addr - addr % SUBBLOCK_BYTES
        pa = a.access(aligned, False, pc=(1 << 40) + seed)
        pb = b.access(aligned, False, pc=(1 << 40) + seed)
        assert pa.note == pb.note
        assert pa.serviced_from == pb.serviced_from
    for fa, fb in zip(a.frames, b.frames):
        assert fa.remap == fb.remap
        assert fa.bitvec == fb.bitvec
        assert fa.locked == fb.locked
