"""Writeback routing tests: dirty LLC evictions must land wherever the
scheme currently stores the data."""

from repro.core.silcfm import SilcFmScheme
from repro.schemes.base import Level
from repro.schemes.cameo import CameoScheme
from repro.schemes.hma import HmaScheme
from repro.schemes.pom import PomScheme
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SilcFmConfig
from repro.xmem.address import AddressSpace

NM = 8 * BLOCK_BYTES
FM = 32 * BLOCK_BYTES


def space():
    return AddressSpace(NM, FM)


def test_silcfm_writeback_follows_swapped_subblock():
    scheme = SilcFmScheme(space(), SilcFmConfig(
        associativity=1, enable_predictor=False, enable_bypass=False,
        enable_locking=False, bitvector_table_entries=64,
        metadata_cache_entries=8, access_rate_window=32))
    fm_addr = NM + 3 * SUBBLOCK_BYTES
    scheme.access(fm_addr, True, pc=1 << 40)  # swapped into NM
    plan = scheme.writeback(fm_addr)
    op = plan.background[0]
    assert op.level is Level.NM
    assert op.is_write
    # ... and the displaced native subblock's writeback goes to FM
    native = 3 * SUBBLOCK_BYTES
    plan = scheme.writeback(native)
    assert plan.background[0].level is Level.FM


def test_cameo_writeback_follows_line():
    scheme = CameoScheme(space())
    slots = NM // SUBBLOCK_BYTES
    fm_line = NM + 5 * SUBBLOCK_BYTES
    scheme.access(fm_line, True)
    assert scheme.writeback(fm_line).background[0].level is Level.NM


def test_pom_writeback_follows_migrated_block():
    scheme = PomScheme(space(), threshold=1)
    addr = NM + 2 * BLOCK_BYTES
    scheme.access(addr, True)  # migrates the whole block
    plan = scheme.writeback(addr + 7 * SUBBLOCK_BYTES)
    assert plan.background[0].level is Level.NM


def test_hma_writeback_follows_epoch_placement():
    scheme = HmaScheme(space(), hot_threshold=2)
    addr = NM + 4 * BLOCK_BYTES
    for __ in range(5):
        scheme.access(addr, True)
    assert scheme.writeback(addr).background[0].level is Level.FM
    scheme.epoch()
    assert scheme.writeback(addr).background[0].level is Level.NM


def test_writeback_is_64b_aligned_background_write():
    scheme = CameoScheme(space())
    plan = scheme.writeback(NM + 100)
    op = plan.background[0]
    assert op.addr % SUBBLOCK_BYTES == 0
    assert op.size == SUBBLOCK_BYTES
    assert op.is_write
    assert not plan.stages  # never blocks a core
