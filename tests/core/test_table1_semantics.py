"""Table I of the paper, row by row: the six swap-operation scenarios
defined by (remap match, bit-vector bit, NM/FM address).

The scheme tags every plan with its Table I row, and the tests verify
both the tag, the service level, and the data movement (via locate)."""

import pytest

from repro.core.silcfm import SilcFmScheme
from repro.schemes.base import Level
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SilcFmConfig
from repro.xmem.address import AddressSpace

NM_BLOCKS = 8
FM_BLOCKS = 32
NM = NM_BLOCKS * BLOCK_BYTES
FM = FM_BLOCKS * BLOCK_BYTES


def plain_config(**overrides):
    base = dict(
        associativity=1,
        enable_locking=False,
        enable_bypass=False,
        enable_predictor=False,
        enable_bitvector_history=True,
        bitvector_table_entries=1024,
    )
    base.update(overrides)
    return SilcFmConfig(**base)


def make_scheme(**overrides):
    return SilcFmScheme(AddressSpace(NM, FM), plain_config(**overrides))


def fm_addr(block_k, sub, set_index=0):
    """Address of subblock ``sub`` of the k-th FM block in ``set_index``
    (direct-mapped: set == frame)."""
    block = NM_BLOCKS + set_index + block_k * NM_BLOCKS
    return block * BLOCK_BYTES + sub * SUBBLOCK_BYTES


def nm_addr(frame, sub):
    return frame * BLOCK_BYTES + sub * SUBBLOCK_BYTES


# ----------------------------------------------------------------------
# rows 5/6: remap mismatch, FM address -> restore + swap
# ----------------------------------------------------------------------
def test_row5_first_touch_installs_block():
    scheme = make_scheme()
    plan = scheme.access(fm_addr(0, 3), False, pc=7)
    assert plan.note == "row5"
    assert plan.serviced_from is Level.FM
    # demand: the requested FM subblock
    assert plan.stages[-1][0].level is Level.FM
    # the subblock is now interleaved into frame 0
    assert scheme.locate(fm_addr(0, 3))[0] is Level.NM
    assert scheme.frame(0).remap == NM_BLOCKS
    assert scheme.frame(0).bit(3)


def test_row5_displaces_native_subblock_position_for_position():
    scheme = make_scheme()
    scheme.access(fm_addr(0, 3), False)
    level, offset = scheme.locate(nm_addr(0, 3))
    assert level is Level.FM
    # native subblock 3 sits at the partner block's home, position 3
    assert offset == fm_addr(0, 3) - NM


def test_row6_conflicting_block_restores_then_installs():
    scheme = make_scheme()
    scheme.access(fm_addr(0, 3), False, pc=7)
    plan = scheme.access(fm_addr(1, 5), False, pc=9)  # same set, other block
    assert plan.note == "row5"  # rows 5/6 share the restore+swap action
    assert scheme.restores == 1
    # previous partner fully restored to its home
    assert scheme.locate(fm_addr(0, 3)) == (Level.FM, fm_addr(0, 3) - NM)
    # new partner's requested subblock now resident
    assert scheme.locate(fm_addr(1, 5))[0] is Level.NM


# ----------------------------------------------------------------------
# row 1: remap match, bit set -> service from NM
# ----------------------------------------------------------------------
def test_row1_rereference_hits_nm():
    scheme = make_scheme()
    scheme.access(fm_addr(0, 3), False)
    plan = scheme.access(fm_addr(0, 3), False)
    assert plan.note == "row1"
    assert plan.serviced_from is Level.NM
    assert not plan.background


# ----------------------------------------------------------------------
# row 2: remap match, bit clear -> swap subblock from FM
# ----------------------------------------------------------------------
def test_row2_other_subblock_swaps_in():
    scheme = make_scheme()
    scheme.access(fm_addr(0, 3), False)
    plan = scheme.access(fm_addr(0, 9), False)
    assert plan.note == "row2"
    assert plan.serviced_from is Level.FM
    assert scheme.frame(0).bit(9)
    # swap is 64 B-granular: 3 background ops (NM out, NM in, FM home)
    assert len(plan.background) == 3
    assert all(op.size == SUBBLOCK_BYTES for op in plan.background)


# ----------------------------------------------------------------------
# row 3: remap mismatch, bit set, NM address -> swap native back
# ----------------------------------------------------------------------
def test_row3_native_subblock_swaps_back():
    scheme = make_scheme()
    scheme.access(fm_addr(0, 3), False)
    plan = scheme.access(nm_addr(0, 3), False)
    assert plan.note == "row3"
    assert plan.serviced_from is Level.FM  # native data currently at FM home
    # after the swap-back both are home again
    assert scheme.locate(nm_addr(0, 3)) == (Level.NM, nm_addr(0, 3))
    assert scheme.locate(fm_addr(0, 3)) == (Level.FM, fm_addr(0, 3) - NM)
    assert not scheme.frame(0).bit(3)


def test_row3_clearing_last_bit_forgets_remap():
    scheme = make_scheme()
    scheme.access(fm_addr(0, 3), False)
    scheme.access(nm_addr(0, 3), False)
    assert scheme.frame(0).remap is None
    assert scheme.way_of_block(NM_BLOCKS) is None


# ----------------------------------------------------------------------
# row 4: remap mismatch, bit clear, NM address -> service from NM
# ----------------------------------------------------------------------
def test_row4_untouched_native_subblock_serves_from_nm():
    scheme = make_scheme()
    scheme.access(fm_addr(0, 3), False)
    plan = scheme.access(nm_addr(0, 4), False)  # bit 4 not set
    assert plan.note == "row4"
    assert plan.serviced_from is Level.NM
    assert not plan.background


def test_row4_on_virgin_frame():
    scheme = make_scheme()
    plan = scheme.access(nm_addr(2, 0), False)
    assert plan.note == "row4"
    assert plan.serviced_from is Level.NM


# ----------------------------------------------------------------------
# bit-vector history: restore saves, install batch-fetches
# ----------------------------------------------------------------------
def test_history_batch_fetch_on_reinstall():
    scheme = make_scheme()
    pc = 0x40000
    first = fm_addr(0, 3)
    scheme.access(first, False, pc=pc)
    scheme.access(fm_addr(0, 9), False, pc=pc)
    scheme.access(fm_addr(0, 10), False, pc=pc)
    # evict block 0's partner (same set, different block): saves {3,9,10}
    scheme.access(fm_addr(1, 0), False, pc=0x999)
    assert scheme.history.saves == 1
    # re-install with the same PC and first address: batch fetch
    plan = scheme.access(first, False, pc=pc)
    assert plan.note == "row5"
    frame = scheme.frame(0)
    assert frame.bit(3) and frame.bit(9) and frame.bit(10)
    assert scheme.batch_fetched_subblocks >= 2
    # the batch-fetched subblocks now hit in NM without further swaps
    assert scheme.access(fm_addr(0, 9), False, pc=pc).note == "row1"


def test_history_disabled_fetches_only_demand():
    scheme = make_scheme(enable_bitvector_history=False)
    pc = 0x40000
    scheme.access(fm_addr(0, 3), False, pc=pc)
    scheme.access(fm_addr(0, 9), False, pc=pc)
    scheme.access(fm_addr(1, 0), False, pc=0x999)
    scheme.access(fm_addr(0, 3), False, pc=pc)
    frame = scheme.frame(0)
    assert frame.bit(3)
    assert not frame.bit(9)


# ----------------------------------------------------------------------
# metadata invariants
# ----------------------------------------------------------------------
def test_no_block_valid_bit_needed():
    """Unlike a cache there is no block-level valid bit: every frame is
    always valid (it always holds data)."""
    scheme = make_scheme()
    for frame_index in range(NM_BLOCKS):
        level, __ = scheme.locate(nm_addr(frame_index, 0))
        assert level is Level.NM


def test_access_rejects_nothing_in_flat_space():
    scheme = make_scheme()
    with pytest.raises(ValueError):
        scheme.access(NM + FM, False)  # out of range
