"""Tests for the way/location predictor and the bandwidth balancer."""

import pytest

from repro.core.bypass import BandwidthBalancer
from repro.core.predictor import Prediction, WayPredictor


# ----------------------------------------------------------------------
# predictor
# ----------------------------------------------------------------------
def test_cold_predictor_returns_no_way():
    pred = WayPredictor(64)
    assert pred.predict(0x400, 0x1000) == Prediction(None, False)


def test_update_then_predict():
    pred = WayPredictor(64)
    pred.update(0x400, 0x1000, way=3, in_fm=True)
    assert pred.predict(0x400, 0x1000) == Prediction(3, True)


def test_subblocks_of_one_block_share_an_entry():
    """The predicted way/location is a block property, so all 32
    subblocks of a 2 KB block should alias to the same entry."""
    pred = WayPredictor(4096)
    pred.update(0x400, 0x8000, way=2, in_fm=False)
    for k in range(32):
        assert pred.predict(0x400, 0x8000 + k * 64) == Prediction(2, False)


def test_different_blocks_do_not_necessarily_share():
    pred = WayPredictor(4096)
    pred.update(0x400, 0x8000, way=2, in_fm=False)
    other = pred.predict(0x400, 0x8000 + 2048)
    assert other == Prediction(None, False)


def test_accuracy_accounting():
    pred = WayPredictor(64)
    pred.record_outcome(Prediction(1, True), actual_way=1, actually_in_fm=True)
    pred.record_outcome(Prediction(1, False), actual_way=2, actually_in_fm=False)
    pred.record_outcome(Prediction(None, False), actual_way=0, actually_in_fm=True)
    assert pred.way_correct == 1 and pred.way_wrong == 1
    assert pred.way_accuracy == 0.5
    # location judged even without a way (default NM guess)
    assert pred.loc_correct + pred.loc_wrong == 3


def test_power_of_two_required():
    with pytest.raises(ValueError):
        WayPredictor(1000)


def test_index_shift_follows_block_geometry(monkeypatch):
    """Regression: the index shift must come from BLOCK_BYTES, not a
    hard-coded ``>> 11``, or a non-default geometry aliases neighbouring
    blocks into one entry."""
    import repro.core.predictor as predictor_module

    monkeypatch.setattr(predictor_module, "BLOCK_BYTES", 4096)
    pred = WayPredictor(64)
    assert pred._index(0, 4095) == pred._index(0, 0)
    assert pred._index(0, 4096) != pred._index(0, 0)


# ----------------------------------------------------------------------
# bandwidth balancer
# ----------------------------------------------------------------------
def test_bypass_off_until_first_window():
    balancer = BandwidthBalancer(0.8, window=16)
    for _ in range(15):
        balancer.record(True)
    assert not balancer.bypassing


def test_bypass_engages_above_target():
    balancer = BandwidthBalancer(0.8, window=16)
    for _ in range(16):
        balancer.record(True)  # rate 1.0 > 0.8
    assert balancer.bypassing


def test_bypass_disengages_when_rate_drops():
    balancer = BandwidthBalancer(0.8, window=16)
    for _ in range(16):
        balancer.record(True)
    assert balancer.bypassing
    for i in range(16):
        balancer.record(i % 2 == 0)  # rate 0.5
    assert not balancer.bypassing


def test_rate_exactly_at_target_does_not_bypass():
    balancer = BandwidthBalancer(0.75, window=16)
    for i in range(16):
        balancer.record(i < 12)  # exactly 0.75
    assert not balancer.bypassing


def test_bypassed_counter():
    balancer = BandwidthBalancer(0.8, window=16)
    balancer.note_bypassed()
    balancer.note_bypassed()
    assert balancer.bypassed_accesses == 2


def test_current_window_rate():
    balancer = BandwidthBalancer(0.8, window=16)
    balancer.record(True)
    balancer.record(False)
    assert balancer.current_window_rate == 0.5


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        BandwidthBalancer(0.0)
    with pytest.raises(ValueError):
        BandwidthBalancer(1.0)
    with pytest.raises(ValueError):
        BandwidthBalancer(0.8, window=4)
