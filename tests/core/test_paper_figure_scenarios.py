"""Scenario tests replaying the paper's worked examples.

Figure 2 ("Example of Interleaved Swap"): back-to-back requests to FM
subblocks F and H bring them one by one from FM block 1 into NM block 0;
the corresponding NM subblocks B and D are swapped out to block 1; any
subsequent access to F and H is serviced from NM.

Figure 3 ("Locking and Associativity"): a locked block keeps all its
subblocks in NM; other blocks of the same set remain reachable through
the remaining ways.
"""

from repro.core.silcfm import SilcFmScheme
from repro.schemes.base import Level
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SilcFmConfig
from repro.xmem.address import AddressSpace

NM_BLOCKS = 8
NM = NM_BLOCKS * BLOCK_BYTES
FM = 32 * BLOCK_BYTES
PC = 1 << 40


def direct_mapped():
    return SilcFmScheme(AddressSpace(NM, FM), SilcFmConfig(
        associativity=1, enable_locking=False, enable_bypass=False,
        enable_predictor=False, enable_bitvector_history=False,
        bitvector_table_entries=64, metadata_cache_entries=8,
        access_rate_window=32))


def four_way(hot_threshold=4):
    return SilcFmScheme(AddressSpace(NM, FM), SilcFmConfig(
        associativity=4, hot_threshold=hot_threshold,
        enable_bypass=False, enable_predictor=False,
        enable_bitvector_history=False, bitvector_table_entries=64,
        metadata_cache_entries=8, access_rate_window=32,
        aging_period_accesses=10_000))


def test_figure2_interleaved_swap():
    """The paper's Figure 2, positions F (index 1) and H (index 3) of FM
    'block 1' interleaving into NM 'block 0'."""
    scheme = direct_mapped()
    # NM block 0's congruence partner: the first FM block mapping to set 0
    fm_block = NM_BLOCKS  # global block number
    f_addr = fm_block * BLOCK_BYTES + 1 * SUBBLOCK_BYTES  # "subblock F"
    h_addr = fm_block * BLOCK_BYTES + 3 * SUBBLOCK_BYTES  # "subblock H"
    b_addr = 0 * BLOCK_BYTES + 1 * SUBBLOCK_BYTES         # NM "subblock B"
    d_addr = 0 * BLOCK_BYTES + 3 * SUBBLOCK_BYTES         # NM "subblock D"

    scheme.access(f_addr, False, pc=PC)   # F brought in
    scheme.access(h_addr, False, pc=PC)   # H brought in

    # F and H now live in NM block 0, positions 1 and 3
    assert scheme.locate(f_addr) == (Level.NM, 1 * SUBBLOCK_BYTES)
    assert scheme.locate(h_addr) == (Level.NM, 3 * SUBBLOCK_BYTES)
    # B and D were swapped out to block 1's home, positions 1 and 3
    assert scheme.locate(b_addr) == (Level.FM, 1 * SUBBLOCK_BYTES)
    assert scheme.locate(d_addr) == (Level.FM, 3 * SUBBLOCK_BYTES)
    # "Any subsequent access to subblock F and H will be serviced from NM"
    assert scheme.access(f_addr, False, pc=PC).serviced_from is Level.NM
    assert scheme.access(h_addr, False, pc=PC).serviced_from is Level.NM
    # the frame is genuinely interleaved: two blocks coexist
    assert scheme.frame(0).interleaved
    # no duplicate copies anywhere: total capacity is NM + FM
    assert scheme.frame(0).bitvec == 0b1010


def test_figure3_locking_with_associativity():
    """Locking a hot block must not make the set unreachable: other
    blocks still swap in through the remaining ways (Section III-C)."""
    scheme = four_way(hot_threshold=3)
    sets = NM_BLOCKS // 4
    hot_block = NM_BLOCKS          # maps to set 0
    cold_block = NM_BLOCKS + sets  # also set 0

    hot_addr = hot_block * BLOCK_BYTES
    for __ in range(5):
        scheme.access(hot_addr, False, pc=PC)
    hot_way = scheme.way_of_block(hot_block)
    assert scheme.frame(hot_way).locked

    # "subblock G" of another block can still be swapped into the set
    g_addr = cold_block * BLOCK_BYTES + 6 * SUBBLOCK_BYTES
    scheme.access(g_addr, False, pc=PC + 8)
    cold_way = scheme.way_of_block(cold_block)
    assert cold_way is not None and cold_way != hot_way
    assert scheme.access(g_addr, False, pc=PC + 8).serviced_from is Level.NM
    # the locked block stayed locked and fully resident throughout
    assert scheme.frame(hot_way).locked
    for k in range(32):
        level, __ = scheme.locate(hot_block * BLOCK_BYTES + k * SUBBLOCK_BYTES)
        assert level is Level.NM


def test_no_duplicate_copies_total_capacity_preserved():
    """'There are no duplicate copies of data and hence the total memory
    capacity is the sum of NM and FM capacities' — after the Figure 2
    sequence every storage slot holds exactly one subblock."""
    scheme = direct_mapped()
    fm_block = NM_BLOCKS
    scheme.access(fm_block * BLOCK_BYTES + SUBBLOCK_BYTES, False, pc=PC)
    scheme.access(fm_block * BLOCK_BYTES + 3 * SUBBLOCK_BYTES, False, pc=PC)
    slots = set()
    for sb in range(0, NM + FM, SUBBLOCK_BYTES):
        slots.add(scheme.locate(sb))
    assert len(slots) == (NM + FM) // SUBBLOCK_BYTES
