"""Behavioural tests for SILC-FM's locking, bypass, associativity and
predictor features (Sections III-C through III-F)."""

from repro.core.predictor import Prediction
from repro.core.silcfm import SilcFmScheme
from repro.schemes.base import Level
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SilcFmConfig
from repro.xmem.address import AddressSpace

NM_BLOCKS = 16
FM_BLOCKS = 64
NM = NM_BLOCKS * BLOCK_BYTES
FM = FM_BLOCKS * BLOCK_BYTES
PC = 1 << 40


def make_scheme(**overrides):
    base = dict(
        associativity=4,
        hot_threshold=6,
        aging_period_accesses=500,
        bitvector_table_entries=256,
        predictor_entries=256,
        metadata_cache_entries=16,
        access_rate_window=32,
        enable_bypass=False,
    )
    base.update(overrides)
    return SilcFmScheme(AddressSpace(NM, FM), SilcFmConfig(**base))


def fm_addr(block_k, sub, set_index=0, assoc=4):
    sets = NM_BLOCKS // assoc
    block = NM_BLOCKS + set_index + block_k * sets
    return block * BLOCK_BYTES + sub * SUBBLOCK_BYTES


# ----------------------------------------------------------------------
# locking (Section III-C)
# ----------------------------------------------------------------------
def test_hot_fm_block_gets_locked_with_full_residency():
    scheme = make_scheme()
    addr = fm_addr(0, 0)
    for i in range(10):
        scheme.access(addr + (i % 4) * SUBBLOCK_BYTES, False, pc=PC)
    assert scheme.locks_acquired >= 1
    way = scheme.way_of_block(addr // BLOCK_BYTES)
    frame = scheme.frame(way)
    assert frame.locked and frame.lock_owner == "fm"
    # locked => all subblocks resident, even ones never touched
    for sub in range(32):
        level, __ = scheme.locate(addr - addr % BLOCK_BYTES + sub * 64)
        assert level is Level.NM


def test_lock_does_not_wait_for_epochs():
    """Locking happens the moment the counter crosses the threshold
    (within one access), unlike epoch-based schemes."""
    scheme = make_scheme(hot_threshold=3)
    addr = fm_addr(0, 0)
    for __ in range(2):
        scheme.access(addr, False, pc=PC)
    assert scheme.locked_frames == 0
    scheme.access(addr, False, pc=PC)
    assert scheme.locked_frames == 1


def test_locked_block_ignores_bitvector_and_serves_nm():
    scheme = make_scheme(hot_threshold=2)
    addr = fm_addr(0, 0)
    for __ in range(3):
        scheme.access(addr, False, pc=PC)
    plan = scheme.access(addr + 31 * SUBBLOCK_BYTES, False, pc=PC)
    assert plan.serviced_from is Level.NM
    assert plan.note == "row1"


def test_native_page_of_locked_frame_served_from_fm():
    scheme = make_scheme(hot_threshold=2)
    addr = fm_addr(0, 0)
    for __ in range(4):
        scheme.access(addr, False, pc=PC)
    way = scheme.way_of_block(addr // BLOCK_BYTES)
    plan = scheme.access(way * BLOCK_BYTES, False, pc=PC)
    assert plan.serviced_from is Level.FM
    assert plan.note == "nm-displaced-by-lock"


def test_lock_released_when_block_cools():
    scheme = make_scheme(hot_threshold=4, aging_period_accesses=50)
    addr = fm_addr(0, 0)
    for __ in range(6):
        scheme.access(addr, False, pc=PC)
    way = scheme.way_of_block(addr // BLOCK_BYTES)
    assert scheme.frame(way).locked
    # touch other (cold) data until aging decays the counter below the
    # threshold; keep each other-block cold by rotating over many blocks
    for i in range(200):
        other = fm_addr(0, i % 8, set_index=1 + i % 3)
        scheme.access(other, False, pc=PC + 4 + (i % 5) * 4)
        if not scheme.frame(way).locked:
            break
    assert not scheme.frame(way).locked
    assert scheme.locks_released >= 1
    # an unlocked fm-owner behaves as fully swapped in (all bits set)
    assert scheme.frame(way).bitvec == (1 << 32) - 1


def test_hot_native_page_never_fm_locked_over():
    """A frame whose native page is hot must not be fully displaced."""
    scheme = make_scheme(hot_threshold=4)
    native = 0  # frame 0's native page
    fm = fm_addr(0, 0)  # maps to set 0; frame 0 is a candidate way
    for i in range(12):
        scheme.access(native, False, pc=PC)           # heat the native page
    for i in range(12):
        scheme.access(fm, False, pc=PC + 8)
    way = scheme.way_of_block(fm // BLOCK_BYTES)
    if way is not None and scheme.frame(way).locked:
        # if it locked, it must not be over the hot native frame 0
        assert way != 0


def test_all_ways_locked_falls_back_to_fm_service():
    scheme = make_scheme(associativity=1, hot_threshold=2)
    hot = fm_addr(0, 0, assoc=1)
    for __ in range(4):
        scheme.access(hot, False, pc=PC)
    assert scheme.locked_frames == 1
    rival = fm_addr(1, 0, assoc=1)  # same (single-way) set
    plan = scheme.access(rival, False, pc=PC + 4)
    assert plan.serviced_from is Level.FM
    assert plan.note == "all-locked"
    assert scheme.all_locked_fallbacks == 1


# ----------------------------------------------------------------------
# associativity (Section III-C)
# ----------------------------------------------------------------------
def test_four_blocks_coexist_in_a_set():
    scheme = make_scheme()
    addrs = [fm_addr(k, 0) for k in range(4)]
    for addr in addrs:
        scheme.access(addr, False, pc=PC)
    # all four are resident: no restores happened
    assert scheme.restores == 0
    for addr in addrs:
        assert scheme.access(addr, False, pc=PC).serviced_from is Level.NM


def test_direct_mapped_thrashes_where_4way_does_not():
    one_way = make_scheme(associativity=1)
    a = fm_addr(0, 0, assoc=1)
    b = fm_addr(1, 0, assoc=1)
    for __ in range(3):
        one_way.access(a, False, pc=PC)
        one_way.access(b, False, pc=PC)
    assert one_way.restores > 0


def test_fifth_block_evicts_lru():
    scheme = make_scheme(hot_threshold=100)  # no locking interference
    addrs = [fm_addr(k, 0) for k in range(5)]
    for addr in addrs[:4]:
        scheme.access(addr, False, pc=PC)
    scheme.access(addrs[0], False, pc=PC)  # refresh block 0
    scheme.access(addrs[4], False, pc=PC)  # evicts the LRU (block 1)
    assert scheme.way_of_block(addrs[1] // BLOCK_BYTES) is None
    assert scheme.way_of_block(addrs[0] // BLOCK_BYTES) is not None


# ----------------------------------------------------------------------
# bypass (Section III-E)
# ----------------------------------------------------------------------
def test_bypass_stops_swaps_once_rate_exceeds_target():
    scheme = make_scheme(enable_bypass=True, access_rate_window=32,
                         hot_threshold=1000)
    hot = fm_addr(0, 0)
    scheme.access(hot, False, pc=PC)
    # drive the access rate to 1.0 over several windows
    for __ in range(64):
        scheme.access(hot, False, pc=PC)
    assert scheme.balancer.bypassing
    fresh = fm_addr(1, 5)
    plan = scheme.access(fresh, False, pc=PC + 4)
    assert plan.bypassed
    assert plan.serviced_from is Level.FM
    # no swap happened: no write traffic, no metadata update (wasted
    # speculative reads from the predictor are allowed)
    assert not any(op.is_write for op in plan.background)
    assert scheme.way_of_block(fresh // BLOCK_BYTES) is None


def test_bypassed_resident_blocks_still_serve_from_nm():
    scheme = make_scheme(enable_bypass=True, access_rate_window=32,
                         hot_threshold=1000)
    hot = fm_addr(0, 0)
    for __ in range(64):
        scheme.access(hot, False, pc=PC)
    assert scheme.balancer.bypassing
    assert scheme.access(hot, False, pc=PC).serviced_from is Level.NM


def test_bypass_disengages_when_rate_drops():
    scheme = make_scheme(enable_bypass=True, access_rate_window=32,
                         hot_threshold=1000)
    hot = fm_addr(0, 0)
    for __ in range(64):
        scheme.access(hot, False, pc=PC)
    assert scheme.balancer.bypassing
    # hammer non-resident FM data: rate collapses below 0.8
    for k in range(64):
        scheme.access(fm_addr(2, k % 32, set_index=1), False, pc=PC + 8)
    assert not scheme.balancer.bypassing


# ----------------------------------------------------------------------
# predictor latency paths (Section III-F)
# ----------------------------------------------------------------------
def test_perfect_speculation_is_single_stage():
    scheme = make_scheme()
    addr = fm_addr(0, 0)
    scheme.access(addr, False, pc=PC)      # install (trains predictor)
    plan = scheme.access(addr, False, pc=PC)
    assert plan.serviced_from is Level.NM
    assert len(plan.stages) == 1
    assert len(plan.stages[0]) == 1        # data only; meta verification
    meta_ops = [op for op in plan.background
                if op.addr >= NM]
    assert len(meta_ops) <= 1              # (or 0 on a metadata-cache hit)


def test_no_predictor_serialises_metadata():
    scheme = make_scheme(enable_predictor=False, metadata_cache_entries=None)
    # direct equality: disable the metadata cache via size 1 is still a
    # cache; instead check stage count on a cold access (cache miss).
    scheme = make_scheme(enable_predictor=False)
    addr = fm_addr(0, 3)
    plan = scheme.access(addr, False, pc=PC)  # cold install: full scan
    # 4 meta probes (cold cache) + 1 FM data stage
    assert len(plan.stages) == 5


def test_wrong_way_prediction_scans():
    scheme = make_scheme()
    a = fm_addr(0, 0)
    scheme.access(a, False, pc=PC)
    scheme.access(a, False, pc=PC)
    # same pc/block trains way; now evicted and reinstalled elsewhere
    # is hard to force; instead check accuracy bookkeeping exists
    assert scheme.predictor.way_correct + scheme.predictor.way_wrong >= 1


def test_bypassed_access_does_not_train_predictor():
    """Regression: a bypassed miss installs nothing, so training the
    predictor with its (way, in_fm) would poison later predictions for
    every block aliasing that entry."""
    scheme = make_scheme(enable_bypass=True, access_rate_window=32,
                         hot_threshold=1000)
    hot = fm_addr(0, 0)
    for __ in range(65):
        scheme.access(hot, False, pc=PC)
    assert scheme.balancer.bypassing
    outcomes_before = (scheme.predictor.loc_correct
                       + scheme.predictor.loc_wrong)
    # pc chosen so the entry does not alias the hot block's trained one
    pc = PC + 1
    fresh = fm_addr(1, 5)
    assert scheme.predictor.predict(pc, fresh) == Prediction(None, False)
    plan = scheme.access(fresh, False, pc=pc)
    assert plan.bypassed
    assert scheme.predictor.predict(pc, fresh) == Prediction(None, False)
    # accuracy accounting must not count the bypassed access either
    assert (scheme.predictor.loc_correct
            + scheme.predictor.loc_wrong) == outcomes_before


# ----------------------------------------------------------------------
# bit-vector history on the incremental drain path (Section III-A)
# ----------------------------------------------------------------------
def test_incremental_drain_saves_footprint_history():
    """Regression: a block whose last interleaved subblock drains via
    row 3 must save its footprint exactly like a restore-evicted block,
    or its next install batch-fetches nothing."""
    scheme = make_scheme(hot_threshold=1000)  # no locking interference
    addr = fm_addr(0, 5)
    scheme.access(addr, False, pc=PC)  # row 5: install at index 5
    way = scheme.way_of_block(addr // BLOCK_BYTES)
    frame = scheme.frame(way)
    assert frame.bitvec == 1 << 5
    saves_before = scheme.history.saves
    # native subblock 5 returns: the frame drains to empty via row 3
    plan = scheme.access(way * BLOCK_BYTES + 5 * SUBBLOCK_BYTES, False,
                         pc=PC + 4)
    assert plan.note == "row3"
    assert frame.remap is None
    assert scheme.history.saves == saves_before + 1
    # the saved footprint now trains the block's reinstall
    hits_before = scheme.history.hits
    scheme.access(addr, False, pc=PC)
    assert scheme.history.hits == hits_before + 1
    assert scheme.frame(scheme.way_of_block(addr // BLOCK_BYTES)).bitvec \
        == 1 << 5
