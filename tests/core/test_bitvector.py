"""Tests for the bit-vector history table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitvector import BitVectorHistoryTable, history_index
from repro.core.metadata import FULL_BITVEC


def test_save_then_lookup_roundtrip():
    table = BitVectorHistoryTable(1024)
    table.save(pc=0x400123, first_subblock_addr=0x8000, bitvec=0b1011)
    assert table.lookup(0x400123, 0x8000) == 0b1011


def test_lookup_without_history_returns_zero():
    table = BitVectorHistoryTable(1024)
    assert table.lookup(1, 2) == 0
    assert table.hit_rate == 0.0


def test_index_mixes_pc_and_address():
    entries = 4096
    base = history_index(0x400000, 0, entries)
    assert history_index(0x400000, 64, entries) != base
    assert history_index(0x400004, 0, entries) != base


def test_direct_mapped_collisions_overwrite():
    table = BitVectorHistoryTable(16)
    table.save(0, 0, 0b1)
    # same index (pc xor sb both 0 mod 16)
    table.save(0, 16 * 64, 0b10)  # sb=16 -> index 0 xor 16 = 16 mod 16 = 0
    assert table.lookup(0, 16 * 64) == 0b10


def test_stats_track_hits():
    table = BitVectorHistoryTable(64)
    table.save(3, 64, 0b111)
    table.lookup(3, 64)
    table.lookup(5, 128)
    assert table.lookups == 2
    assert table.hits == 1
    assert table.hit_rate == 0.5
    assert table.saves == 1


def test_non_power_of_two_rejected():
    with pytest.raises(ValueError):
        BitVectorHistoryTable(1000)
    with pytest.raises(ValueError):
        history_index(0, 0, 48)


def test_out_of_range_bitvec_rejected():
    table = BitVectorHistoryTable(64)
    with pytest.raises(ValueError):
        table.save(0, 0, FULL_BITVEC + 1)
    with pytest.raises(ValueError):
        table.save(0, 0, -1)


@given(pc=st.integers(min_value=0, max_value=1 << 48),
       addr=st.integers(min_value=0, max_value=1 << 34),
       vec=st.integers(min_value=0, max_value=FULL_BITVEC))
def test_any_saved_vector_is_recoverable(pc, addr, vec):
    table = BitVectorHistoryTable(4096)
    table.save(pc, addr, vec)
    assert table.lookup(pc, addr) == vec


@given(pc=st.integers(min_value=0), addr=st.integers(min_value=0))
def test_index_always_in_range(pc, addr):
    assert 0 <= history_index(pc, addr, 4096) < 4096


def test_index_shift_follows_subblock_geometry(monkeypatch):
    """Regression: the index shift must come from SUBBLOCK_BYTES, not a
    hard-coded ``>> 6``, or a non-default geometry splits one subblock's
    history across entries."""
    import repro.core.bitvector as bitvector_module

    monkeypatch.setattr(bitvector_module, "SUBBLOCK_BYTES", 128)
    assert history_index(0, 127, 64) == history_index(0, 0, 64)
    assert history_index(0, 128, 64) != history_index(0, 0, 64)
