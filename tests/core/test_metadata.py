"""Tests for per-frame metadata."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metadata import COUNTER_MAX, FULL_BITVEC, FrameMetadata


def test_bits_start_clear():
    frame = FrameMetadata()
    assert frame.bitvec == 0
    assert not any(frame.bit(i) for i in range(32))


def test_set_and_clear_bits():
    frame = FrameMetadata()
    frame.set_bit(5)
    assert frame.bit(5)
    assert frame.bitvec == 1 << 5
    frame.clear_bit(5)
    assert not frame.bit(5)


def test_bit_index_bounds():
    frame = FrameMetadata()
    with pytest.raises(ValueError):
        frame.bit(32)
    with pytest.raises(ValueError):
        frame.set_bit(-1)


def test_swapped_and_missing_partition():
    frame = FrameMetadata()
    for i in (0, 7, 31):
        frame.set_bit(i)
    assert frame.swapped_in_indices() == [0, 7, 31]
    assert set(frame.swapped_in_indices()) | set(frame.missing_indices()) == set(
        range(32))


def test_interleaved_predicate():
    frame = FrameMetadata()
    assert not frame.interleaved         # no remap
    frame.remap = 99
    assert not frame.interleaved         # no bits
    frame.set_bit(3)
    assert frame.interleaved
    frame.bitvec = FULL_BITVEC
    assert not frame.interleaved         # fully remapped, not mixed


def test_counters_saturate_at_6_bits():
    frame = FrameMetadata()
    for _ in range(100):
        frame.bump_nm()
        frame.bump_fm()
    assert frame.nm_count == COUNTER_MAX == 63
    assert frame.fm_count == 63


def test_aging_halves_counters():
    frame = FrameMetadata(nm_count=40, fm_count=7)
    frame.age()
    assert frame.nm_count == 20
    assert frame.fm_count == 3
    for _ in range(10):
        frame.age()
    assert frame.nm_count == 0


def test_lock_requires_valid_owner():
    frame = FrameMetadata()
    with pytest.raises(ValueError):
        frame.lock("os")
    with pytest.raises(ValueError):
        frame.lock("fm")  # no remapped block
    frame.remap = 4
    frame.lock("fm")
    assert frame.locked and frame.lock_owner == "fm"
    frame.unlock()
    assert not frame.locked and frame.lock_owner is None


def test_nm_lock_never_needs_remap():
    frame = FrameMetadata()
    frame.lock("nm")
    assert frame.locked


@given(bits=st.lists(st.integers(min_value=0, max_value=31), max_size=40))
def test_bitvec_matches_set_of_bits(bits):
    frame = FrameMetadata()
    for b in bits:
        frame.set_bit(b)
    assert frame.swapped_in_indices() == sorted(set(bits))
    assert 0 <= frame.bitvec <= FULL_BITVEC
