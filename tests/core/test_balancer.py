"""Tests for the balancer's lifetime accounting and read-side API.

The windowed decision logic is covered in ``test_predictor_bypass.py``;
these pin the satellite additions: lifetime counters that include the
partial final window, ``current_rate()``'s boundary fallback, and the
transition observer telemetry hooks into.
"""

import pytest

from repro.core.bypass import BandwidthBalancer


# ----------------------------------------------------------------------
# lifetime accounting (the partial-final-window fix)
# ----------------------------------------------------------------------
def test_lifetime_counts_every_access():
    balancer = BandwidthBalancer(0.8, window=16)
    for i in range(40):  # 2.5 windows — 8 misses never complete one
        balancer.record(i % 2 == 0)
    assert balancer.total_accesses == 40
    assert balancer.nm_accesses == 20
    assert balancer.lifetime_rate == pytest.approx(0.5)
    assert balancer.windows_observed == 2
    assert balancer.pending_window_accesses == 8


def test_lifetime_rate_differs_from_window_rate():
    """The trailing partial window is invisible to the windowed state
    but must show in the lifetime fraction."""
    balancer = BandwidthBalancer(0.8, window=16)
    for _ in range(16):
        balancer.record(False)  # one full all-FM window
    for _ in range(8):
        balancer.record(True)   # partial all-NM tail, discarded at drain
    assert balancer.last_window_rate == 0.0
    assert balancer.lifetime_rate == pytest.approx(8 / 24)


def test_lifetime_rate_empty():
    assert BandwidthBalancer(0.8, window=16).lifetime_rate == 0.0


# ----------------------------------------------------------------------
# current_rate vs current_window_rate
# ----------------------------------------------------------------------
def test_current_rate_tracks_inflight_window():
    balancer = BandwidthBalancer(0.8, window=16)
    balancer.record(True)
    balancer.record(True)
    balancer.record(False)
    assert balancer.current_rate() == pytest.approx(2 / 3)


def test_current_rate_falls_back_at_window_boundary():
    """Exactly at a boundary the in-flight window is empty; a telemetry
    sample there must read the just-completed window's rate, not 0."""
    balancer = BandwidthBalancer(0.8, window=16)
    for i in range(16):
        balancer.record(i < 12)  # completes a 0.75 window
    assert balancer.pending_window_accesses == 0
    assert balancer.current_rate() == pytest.approx(0.75)
    # the legacy property keeps its pinned empty-window behaviour
    assert balancer.current_window_rate == 0.0


def test_last_window_rate_updates_per_window():
    balancer = BandwidthBalancer(0.8, window=16)
    for _ in range(16):
        balancer.record(True)
    assert balancer.last_window_rate == 1.0
    for _ in range(16):
        balancer.record(False)
    assert balancer.last_window_rate == 0.0


# ----------------------------------------------------------------------
# transitions and the observer hook
# ----------------------------------------------------------------------
def test_transition_counter_counts_both_directions():
    balancer = BandwidthBalancer(0.8, window=16)
    for _ in range(16):
        balancer.record(True)   # off -> on
    for _ in range(16):
        balancer.record(False)  # on -> off
    assert balancer.transitions == 2
    assert not balancer.bypassing


def test_no_transition_when_mode_stable():
    balancer = BandwidthBalancer(0.8, window=16)
    for _ in range(64):
        balancer.record(False)
    assert balancer.transitions == 0


def test_on_transition_observer_fires_with_mode_and_rate():
    seen = []
    balancer = BandwidthBalancer(0.8, window=16)
    balancer.on_transition = lambda bypassing, rate: seen.append(
        (bypassing, rate))
    for _ in range(16):
        balancer.record(True)
    for i in range(16):
        balancer.record(i % 2 == 0)
    assert seen == [(True, 1.0), (False, 0.5)]


def test_observer_not_called_without_flip():
    seen = []
    balancer = BandwidthBalancer(0.8, window=16)
    balancer.on_transition = lambda *args: seen.append(args)
    for _ in range(32):
        balancer.record(True)  # second window stays bypassing
    assert len(seen) == 1
