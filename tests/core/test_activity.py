"""Tests for the activity monitor (aging counters)."""

import pytest

from repro.core.activity import ActivityMonitor
from repro.core.metadata import FrameMetadata


def make_monitor(n_frames=4, threshold=5, period=100):
    frames = [FrameMetadata() for _ in range(n_frames)]
    return frames, ActivityMonitor(frames, hot_threshold=threshold,
                                   aging_period=period)


def test_tick_counts_and_triggers_aging():
    frames, monitor = make_monitor(period=10)
    frames[0].nm_count = 8
    aged = [monitor.tick() for _ in range(10)]
    assert aged == [False] * 9 + [True]
    assert frames[0].nm_count == 4
    assert monitor.agings == 1


def test_hotness_classification():
    frames, monitor = make_monitor(threshold=5)
    frames[0].nm_count = 5
    assert monitor.nm_block_hot(frames[0])
    frames[0].nm_count = 4
    assert not monitor.nm_block_hot(frames[0])


def test_fm_hotness_requires_remap():
    frames, monitor = make_monitor(threshold=5)
    frames[1].fm_count = 10
    assert not monitor.fm_block_hot(frames[1])  # nothing remapped
    frames[1].remap = 77
    assert monitor.fm_block_hot(frames[1])


def test_stale_locks_detected_after_cooling():
    frames, monitor = make_monitor(threshold=8, period=10)
    frames[2].remap = 5
    frames[2].fm_count = 10
    frames[2].lock("fm")
    assert list(monitor.stale_locks()) == []
    for _ in range(20):  # two aging passes: 10 -> 5 -> 2
        monitor.tick()
    assert list(monitor.stale_locks()) == [2]


def test_nm_owner_locks_judged_by_nm_counter():
    frames, monitor = make_monitor(threshold=8)
    frames[0].nm_count = 20
    frames[0].lock("nm")
    frames[0].fm_count = 0  # irrelevant for an nm lock
    assert list(monitor.stale_locks()) == []
    frames[0].nm_count = 3
    assert list(monitor.stale_locks()) == [0]


def test_invalid_parameters_rejected():
    frames = [FrameMetadata()]
    with pytest.raises(ValueError):
        ActivityMonitor(frames, hot_threshold=0)
    with pytest.raises(ValueError):
        ActivityMonitor(frames, aging_period=0)


def test_aging_affects_all_frames():
    frames, monitor = make_monitor(n_frames=3)
    for frame in frames:
        frame.nm_count = 16
        frame.fm_count = 2
    monitor.age_all()
    assert all(f.nm_count == 8 and f.fm_count == 1 for f in frames)
