"""Tests for the Table III benchmark presets."""

import pytest

from repro.sim.config import default_config
from repro.workloads.spec import (
    BENCHMARKS,
    HIGH_MPKI,
    LOW_MPKI,
    MEDIUM_MPKI,
    benchmark_spec,
    per_core_spec,
    suite,
)


def test_fourteen_benchmarks():
    assert len(BENCHMARKS) == 14
    assert set(BENCHMARKS) == set(LOW_MPKI) | set(MEDIUM_MPKI) | set(HIGH_MPKI)


def test_mpki_categories_match_table3_boundaries():
    cfg = default_config()
    for name in LOW_MPKI:
        assert benchmark_spec(name, cfg).mpki < 11
    for name in MEDIUM_MPKI:
        assert 11 <= benchmark_spec(name, cfg).mpki <= 32
    for name in HIGH_MPKI:
        assert benchmark_spec(name, cfg).mpki > 32


def test_mcf_has_largest_footprint():
    cfg = default_config()
    footprints = {n: benchmark_spec(n, cfg).footprint_pages for n in BENCHMARKS}
    assert max(footprints, key=footprints.get) == "mcf"


def test_footprints_scale_with_capacity():
    small = default_config()
    big = small.with_ratio(4)  # same; use explicit larger config instead
    import dataclasses

    big = dataclasses.replace(small, nm_bytes=small.nm_bytes * 2,
                              fm_bytes=small.fm_bytes * 2)
    for name in BENCHMARKS:
        assert benchmark_spec(name, big).footprint_pages == pytest.approx(
            2 * benchmark_spec(name, small).footprint_pages, rel=0.01)


def test_per_core_spec_divides_by_cores():
    cfg = default_config()
    total = benchmark_spec("mcf", cfg).footprint_pages
    per_core = per_core_spec("mcf", cfg).footprint_pages
    assert per_core == total // cfg.cores


def test_total_footprint_fits_flat_capacity():
    """Rate-mode totals must fit in NM+FM or allocation would fail."""
    cfg = default_config()
    for name in BENCHMARKS:
        per_core = per_core_spec(name, cfg)
        assert per_core.footprint_pages * cfg.cores <= cfg.total_bytes // 2048


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        benchmark_spec("quake", default_config())


def test_suite_defaults_to_all():
    cfg = default_config()
    full = suite(cfg)
    assert set(full) == set(BENCHMARKS)
    partial = suite(cfg, ["mcf", "lbm"])
    assert set(partial) == {"mcf", "lbm"}


def test_personalities_follow_the_papers_characterisation():
    cfg = default_config()
    specs = {n: benchmark_spec(n, cfg) for n in BENCHMARKS}
    # gemsFDTD is the phase-churn workload (short-lived hot pages)
    assert specs["gemsFDTD"].phase_misses is not None
    # streaming workloads have high spatial locality
    assert specs["lbm"].spatial_run >= 12
    assert specs["libquantum"].spatial_run >= 12
    # pointer chasers have low spatial locality
    assert specs["mcf"].spatial_run <= 4
    assert specs["omnetpp"].spatial_run <= 4
    # xalancbmk's skew is the strongest (locking's showcase)
    assert specs["xalancbmk"].hot_weight == max(
        s.hot_weight for s in specs.values())
    # gcc has many lukewarm pages (associativity's showcase): a wide
    # hot set accessed with low weight
    assert specs["gcc"].hot_fraction >= 0.25
    assert specs["gcc"].hot_weight <= 0.65
