"""Tests for trace save/load."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.io import TraceFormatError, load_trace, save_trace, trace_length
from repro.workloads.model import WorkloadModel, WorkloadSpec
from repro.workloads.trace import MemoryAccess, materialize


def test_roundtrip(tmp_path):
    path = tmp_path / "t.trc"
    records = [
        MemoryAccess(pc=1 << 40, vaddr=64 * i, is_write=i % 2 == 0,
                     gap_instr=i + 1)
        for i in range(100)
    ]
    assert save_trace(path, records) == 100
    assert trace_length(path) == 100
    assert list(load_trace(path)) == records


def test_generated_trace_roundtrip(tmp_path):
    path = tmp_path / "gen.trc"
    model = WorkloadModel(WorkloadSpec("t", mpki=20, footprint_pages=50), seed=3)
    original = materialize(model.miss_stream(500), 500)
    save_trace(path, original)
    assert list(load_trace(path)) == original


def test_empty_trace(tmp_path):
    path = tmp_path / "empty.trc"
    assert save_trace(path, []) == 0
    assert list(load_trace(path)) == []
    assert trace_length(path) == 0


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.trc"
    path.write_bytes(b"NOTATRACE" + b"\x00" * 16)
    with pytest.raises(TraceFormatError, match="magic"):
        list(load_trace(path))


def test_truncated_body_rejected(tmp_path):
    path = tmp_path / "trunc.trc"
    save_trace(path, [MemoryAccess(1, 2, False, 3)] * 4)
    blob = path.read_bytes()
    path.write_bytes(blob[:-10])
    with pytest.raises(TraceFormatError, match="truncated"):
        list(load_trace(path))


def test_truncated_header_rejected(tmp_path):
    path = tmp_path / "short.trc"
    path.write_bytes(b"SILC")
    with pytest.raises(TraceFormatError):
        trace_length(path)


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=2 ** 63 - 1),
              st.integers(min_value=0, max_value=2 ** 63 - 1),
              st.booleans(),
              st.integers(min_value=0, max_value=2 ** 31 - 1)),
    max_size=50))
def test_roundtrip_property(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("traces") / "p.trc"
    trace = [MemoryAccess(pc=p, vaddr=v, is_write=w, gap_instr=g)
             for p, v, w, g in records]
    save_trace(path, trace)
    assert list(load_trace(path)) == trace
