"""Tests for the statistical workload model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.workloads.model import PC_BASE, WorkloadModel, WorkloadSpec
from repro.workloads.trace import materialize, trace_stats


def spec(**overrides):
    base = dict(name="toy", mpki=20.0, footprint_pages=500)
    base.update(overrides)
    return WorkloadSpec(**base)


def test_miss_stream_length():
    model = WorkloadModel(spec(), seed=1)
    trace = materialize(model.miss_stream(1234), 10_000)
    assert len(trace) == 1234


def test_mpki_close_to_target():
    model = WorkloadModel(spec(mpki=25.0), seed=2)
    stats = trace_stats(model.miss_stream(20_000))
    assert stats["mpki"] == pytest.approx(25.0, rel=0.1)


def test_footprint_bounded_by_spec():
    model = WorkloadModel(spec(footprint_pages=100), seed=3)
    stats = trace_stats(model.miss_stream(20_000))
    assert stats["footprint_pages"] <= 100


def test_write_fraction_close_to_target():
    model = WorkloadModel(spec(write_fraction=0.4), seed=4)
    stats = trace_stats(model.miss_stream(20_000))
    assert stats["write_fraction"] == pytest.approx(0.4, abs=0.05)


def test_determinism_per_seed():
    a = materialize(WorkloadModel(spec(), seed=9).miss_stream(500), 500)
    b = materialize(WorkloadModel(spec(), seed=9).miss_stream(500), 500)
    assert a == b


def test_different_seeds_differ():
    a = materialize(WorkloadModel(spec(), seed=1).miss_stream(500), 500)
    b = materialize(WorkloadModel(spec(), seed=2).miss_stream(500), 500)
    assert a != b


def test_addresses_are_subblock_aligned_and_in_footprint():
    model = WorkloadModel(spec(footprint_pages=50), seed=5)
    for record in model.miss_stream(2000):
        assert record.vaddr % SUBBLOCK_BYTES == 0
        assert record.vaddr < 50 * BLOCK_BYTES
        assert record.pc >= PC_BASE


def test_hot_set_skew():
    """With strong skew, a small fraction of pages receives most misses."""
    model = WorkloadModel(
        spec(hot_fraction=0.05, hot_weight=0.9, footprint_pages=1000), seed=6)
    counts = {}
    for record in model.miss_stream(30_000):
        page = record.vaddr // BLOCK_BYTES
        counts[page] = counts.get(page, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    top_5pct = sum(ranked[: max(1, len(ranked) // 20)])
    assert top_5pct / sum(ranked) > 0.5


def test_spatial_run_affects_sequentiality():
    """High spatial_run produces many consecutive-subblock pairs."""

    def sequential_fraction(spatial_run):
        model = WorkloadModel(spec(spatial_run=spatial_run), seed=7)
        trace = materialize(model.miss_stream(5000), 5000)
        seq = sum(
            1
            for a, b in zip(trace, trace[1:])
            if b.vaddr - a.vaddr == SUBBLOCK_BYTES
        )
        return seq / len(trace)

    assert sequential_fraction(16.0) > sequential_fraction(1.0) + 0.3


def test_phase_churn_changes_hot_pages():
    stable = WorkloadModel(spec(hot_weight=1.0, hot_fraction=0.02), seed=8)
    churner = WorkloadModel(
        spec(hot_weight=1.0, hot_fraction=0.02, phase_misses=2000,
             phase_shift=1.0), seed=8)

    def hot_pages(model):
        pages = set()
        for record in model.miss_stream(20_000):
            pages.add(record.vaddr // BLOCK_BYTES)
        return pages

    assert len(hot_pages(churner)) > len(hot_pages(stable))


def test_reference_stream_contains_miss_stream_plus_reuse():
    model = WorkloadModel(spec(mpki=50.0), seed=10)
    misses = materialize(model.miss_stream(100), 100)
    refs = materialize(model.reference_stream(100), 100_000)
    assert len(refs) > len(misses)
    miss_addrs = [m.vaddr for m in misses]
    ref_addrs = [r.vaddr for r in refs]
    # every miss address appears in the reference stream
    assert set(miss_addrs) <= set(ref_addrs)


@settings(max_examples=20, deadline=None)
@given(mpki=st.floats(min_value=1.0, max_value=60.0),
       spatial=st.floats(min_value=1.0, max_value=32.0))
def test_any_valid_spec_generates(mpki, spatial):
    model = WorkloadModel(spec(mpki=mpki, spatial_run=spatial), seed=11)
    trace = materialize(model.miss_stream(200), 200)
    assert len(trace) == 200
    assert all(r.gap_instr >= 1 for r in trace)


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        spec(mpki=0)
    with pytest.raises(ValueError):
        spec(footprint_pages=1)
    with pytest.raises(ValueError):
        spec(hot_fraction=0.0)
    with pytest.raises(ValueError):
        spec(spatial_run=0.5)
    with pytest.raises(ValueError):
        spec(spatial_run=33.0)
    with pytest.raises(ValueError):
        spec(write_fraction=1.5)


def test_reference_stream_conserves_instructions():
    """The re-references redistribute (not inflate) the miss gaps, so
    both stream modes represent the same instruction count."""
    model_a = WorkloadModel(spec(mpki=10.0), seed=12)
    model_b = WorkloadModel(spec(mpki=10.0), seed=12)
    miss_instr = sum(r.gap_instr for r in model_a.miss_stream(2000))
    ref_instr = sum(r.gap_instr for r in model_b.reference_stream(2000))
    assert abs(ref_instr - miss_instr) / miss_instr < 0.15


def test_page_density_limits_distinct_subblocks():
    model = WorkloadModel(spec(page_density=0.25, footprint_pages=20,
                               spatial_run=8.0), seed=13)
    per_page = {}
    for record in model.miss_stream(20000):
        page = record.vaddr // BLOCK_BYTES
        per_page.setdefault(page, set()).add(record.vaddr % BLOCK_BYTES)
    for page, offsets in per_page.items():
        assert len(offsets) <= 8  # 0.25 * 32


def test_active_region_is_stable_across_revisits():
    model = WorkloadModel(spec(page_density=0.5), seed=14)
    assert model._active_region(7) == model._active_region(7)
    start, length = model._active_region(7)
    assert 0 <= start and start + length <= 32
    assert length == 16
