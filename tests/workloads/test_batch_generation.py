"""Property proof for the batch engine's trace generator:
``WorkloadModel.miss_batches`` must emit exactly the records
``miss_stream`` emits — same values, same order — for any spec, seed,
trace length and window size.  The RNG replay (burst headers and the
two per-access uniforms drawn in scalar order, the gap computed with
the same libm ``log`` expression ``random.expovariate`` uses) is what
makes this hold bit-for-bit; these properties are the fence around it.
"""

from hypothesis import example, given, settings, strategies as st

from repro.workloads.model import WorkloadModel, WorkloadSpec

specs = st.builds(
    WorkloadSpec,
    name=st.sampled_from(["prop-a", "prop-b"]),
    mpki=st.floats(min_value=0.5, max_value=60.0),
    footprint_pages=st.integers(min_value=2, max_value=200),
    hot_fraction=st.floats(min_value=0.05, max_value=1.0),
    hot_weight=st.floats(min_value=0.0, max_value=1.0),
    spatial_run=st.floats(min_value=1.0, max_value=32.0),
    write_fraction=st.floats(min_value=0.0, max_value=1.0),
    phase_misses=st.none() | st.integers(min_value=1, max_value=60),
    phase_shift=st.floats(min_value=0.1, max_value=1.0),
    page_density=st.floats(min_value=1.0 / 32.0, max_value=1.0),
)

#: long-burst spec: spatial runs of ~32 guarantee window boundaries land
#: mid-burst, the carry-buffer path a chunking off-by-one would corrupt.
BURSTY = WorkloadSpec(name="prop-a", mpki=20.0, footprint_pages=50,
                      spatial_run=32.0)
#: per-access phase churn: the hot set shifts inside a window refill.
CHURNY = WorkloadSpec(name="prop-b", mpki=5.0, footprint_pages=40,
                      phase_misses=1)


@example(spec=BURSTY, seed=7, n_misses=100, window=64)
@example(spec=BURSTY, seed=7, n_misses=65, window=64)   # one straggler
@example(spec=BURSTY, seed=7, n_misses=63, window=64)   # short trace
@example(spec=BURSTY, seed=7, n_misses=100, window=1)   # degenerate window
@example(spec=CHURNY, seed=3, n_misses=100, window=7)
@example(spec=BURSTY, seed=1, n_misses=0, window=16)    # empty trace
@given(spec=specs, seed=st.integers(min_value=0, max_value=2**20),
       n_misses=st.integers(min_value=0, max_value=300),
       window=st.integers(min_value=1, max_value=97))
@settings(deadline=None, max_examples=150)
def test_miss_batches_equals_miss_stream(spec, seed, n_misses, window):
    scalar = list(WorkloadModel(spec, seed=seed).miss_stream(n_misses))
    batches = list(WorkloadModel(spec, seed=seed)
                   .miss_batches(n_misses, window))

    batched = [record for batch in batches for record in batch.records()]
    assert batched == scalar

    # window shape: every batch full except possibly the last
    sizes = [len(batch) for batch in batches]
    assert sum(sizes) == n_misses
    assert all(size == window for size in sizes[:-1])
    assert all(0 < size <= window for size in sizes[-1:])


@given(seed=st.integers(min_value=0, max_value=2**10))
@settings(deadline=None, max_examples=25)
def test_batch_columns_are_plain_python_scalars(seed):
    """The replaying core indexes the columns straight into engine
    events and stats, so numpy scalar types must not leak (they would
    survive arithmetic and change JSON serialisation)."""
    for batch in WorkloadModel(BURSTY, seed=seed).miss_batches(40, 16):
        assert all(type(value) is int for value in batch.pc)
        assert all(type(value) is int for value in batch.vaddr)
        assert all(type(value) is int for value in batch.gap_instr)
        assert all(type(value) is bool for value in batch.is_write)
