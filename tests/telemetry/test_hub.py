"""Unit tests for the telemetry hub: signal kinds, sampling semantics,
ring spill/drop accounting, and the engine attachment."""

import json

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.telemetry import (TELEMETRY_SCHEMA_VERSION, Telemetry,
                             TimeSeriesRing)


def _hub(window=100, **kwargs):
    return Telemetry(window_cycles=window, **kwargs)


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def test_reserved_sample_fields_rejected():
    hub = _hub()
    with pytest.raises(ValueError, match="reserved"):
        hub.gauge("t", lambda: 0.0)
    with pytest.raises(ValueError, match="reserved"):
        hub.meter("dt", lambda: 0.0)


def test_duplicate_registration_rejected():
    hub = _hub()
    hub.gauge("x", lambda: 1.0)
    with pytest.raises(ValueError, match="already registered"):
        hub.meter("x", lambda: 1.0)


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        Telemetry(window_cycles=0)
    with pytest.raises(ValueError):
        Telemetry(window_cycles=-5)


# ----------------------------------------------------------------------
# signal semantics
# ----------------------------------------------------------------------
def test_gauge_sampled_raw():
    hub = _hub()
    box = {"v": 3.0}
    hub.gauge("g", lambda: box["v"])
    assert hub.sample_now()["g"] == 3.0
    box["v"] = 7.0
    assert hub.sample_now()["g"] == 7.0


def test_meter_sampled_as_delta():
    hub = _hub()
    box = {"v": 0}
    hub.meter("m", lambda: box["v"])
    box["v"] = 10
    assert hub.sample_now()["m"] == 10
    box["v"] = 25
    assert hub.sample_now()["m"] == 15


def test_meter_clamps_negative_delta_after_reset():
    """A warmup statistics reset makes the cumulative source jump
    backwards; the meter must report 0 for that window, not a negative
    rate."""
    hub = _hub()
    box = {"v": 100}
    hub.meter("m", lambda: box["v"])
    hub.sample_now()
    box["v"] = 5  # reset + a little new activity
    assert hub.sample_now()["m"] == 0.0
    box["v"] = 12
    assert hub.sample_now()["m"] == 7.0


def test_counter_incr_and_window_delta():
    hub = _hub()
    hub.incr("c")
    hub.incr("c", 4.0)
    assert hub.counter("c") == 5.0
    assert hub.sample_now()["c"] == 5.0
    hub.incr("c")
    assert hub.sample_now()["c"] == 1.0  # per-window delta
    assert hub.counter("c") == 6.0       # cumulative unchanged


def test_sample_has_time_fields():
    hub = _hub()
    sample = hub.sample_now()
    assert set(sample) == {"t", "dt"}


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------
def test_ring_drops_oldest_half_when_full():
    ring = TimeSeriesRing(capacity=8)
    for i in range(8):
        ring.append({"i": i})
    assert ring.spilled == 4
    assert [s["i"] for s in ring.samples()] == [4, 5, 6, 7]


def test_ring_spills_to_jsonl(tmp_path):
    path = tmp_path / "spill.jsonl"
    ring = TimeSeriesRing(capacity=4, spill_path=str(path))
    for i in range(4):
        ring.append({"i": i})
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [s["i"] for s in lines] == [0, 1]
    assert ring.spilled == 2


def test_ring_minimum_capacity():
    with pytest.raises(ValueError):
        TimeSeriesRing(capacity=1)


def test_snapshot_reports_spill_accounting():
    hub = _hub(ring_capacity=4)
    for _ in range(6):
        hub.sample_now()
    snap = hub.snapshot()
    # capacity 4 evicts half at samples 4 and 6: 2 + 2 spilled
    assert snap["spilled_samples"] == 4
    assert len(snap["samples"]) + snap["spilled_samples"] == 6
    assert snap["schema"] == TELEMETRY_SCHEMA_VERSION
    assert snap["window_cycles"] == 100


# ----------------------------------------------------------------------
# end-of-run drain (final partial window)
# ----------------------------------------------------------------------
class _Clock:
    """Engine stand-in with a hand-settable clock, so the drain tests
    control exactly where the run halts relative to the window."""

    def __init__(self):
        self.now = 0.0

    def schedule_every(self, *args, **kwargs):
        pass  # periodic ticks are driven by hand in these tests


def test_drain_flushes_final_partial_window():
    """A run halting mid-window must not lose the tail of the series."""
    clock = _Clock()
    hub = _hub(window=100)
    hub.meter("m", lambda: clock.now)  # cumulative: grows with time
    hub.attach(clock)
    clock.now = 100.0
    hub.sample_now()  # the periodic tick
    clock.now = 130.0  # run halts 30 cycles into the next window
    sample = hub.drain()
    assert sample is not None
    assert sample["t"] == 130.0
    assert sample["dt"] == 30.0  # the partial window
    assert sample["m"] == 30.0   # activity after the last tick captured
    assert hub.series.samples()[-1] == sample


def test_drain_is_idempotent():
    clock = _Clock()
    hub = _hub(window=100)
    hub.attach(clock)
    clock.now = 130.0
    assert hub.drain() is not None
    assert hub.drain() is None  # nothing new pending
    assert hub.samples_taken == 1


def test_drain_skips_duplicate_on_window_aligned_halt():
    """Halting exactly on a window boundary: the periodic tick already
    sampled this cycle; drain must not append a zero-width duplicate."""
    clock = _Clock()
    hub = _hub(window=100)
    hub.attach(clock)
    clock.now = 100.0
    hub.sample_now()  # the periodic tick lands exactly at the halt time
    assert hub.drain() is None
    assert hub.samples_taken == 1


def test_drain_captures_run_shorter_than_one_window():
    clock = _Clock()
    hub = _hub(window=100)
    hub.attach(clock)
    clock.now = 40.0  # halts before the first periodic tick
    sample = hub.drain()
    assert sample is not None and sample["t"] == 40.0
    assert hub.samples_taken == 1


# ----------------------------------------------------------------------
# engine attachment
# ----------------------------------------------------------------------
def test_attach_samples_periodically():
    engine = Engine()
    hub = _hub(window=10)
    keepalive = {"ticks": 0}

    def work():
        keepalive["ticks"] += 1
        if keepalive["ticks"] < 5:
            engine.schedule(10, work)

    engine.schedule(0, work)
    hub.attach(engine)
    engine.run()
    # sampler fires alongside the workload, then stops with the queue
    assert hub.samples_taken >= 3
    assert all(s["dt"] == 10 for s in hub.series.samples()[1:])


def test_sampler_cannot_keep_engine_alive():
    """With nothing else scheduled the periodic sampler must not
    self-perpetuate (it would mask drained-queue errors)."""
    engine = Engine()
    hub = _hub(window=10)
    hub.attach(engine)
    engine.run()
    assert engine.now <= 10  # one tick at most, then the queue drains


def test_schedule_every_rejects_bad_period():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule_every(0, lambda: None)


def test_schedule_every_while_predicate_stops_chain():
    engine = Engine()
    fired = []
    alive = {"on": True}
    engine.schedule_every(5, lambda: fired.append(engine.now),
                          while_=lambda: alive["on"])

    def stop():
        alive["on"] = False

    # independent work keeps the queue non-empty long enough
    engine.schedule(12, stop)
    engine.schedule(30, lambda: None)
    engine.run()
    assert fired == [5.0, 10.0]  # the 15-cycle tick sees while_ False
