"""End-to-end telemetry: a real SILC-FM run with the hub attached.

Uses mcf, whose pointer-chasing access pattern flips the bandwidth
balancer's bypass mode several times and triggers locking at the scale
simulated here — the same workload the CI telemetry smoke pins.
"""

import dataclasses

import pytest

from repro.cpu.system import RunResult
from repro.experiments.runner import run_one
from repro.sim.config import default_config
from repro.telemetry import TELEMETRY_SCHEMA_VERSION, validate_chrome_trace

MISSES = 4000


@pytest.fixture(scope="module")
def telemetry_result():
    config = dataclasses.replace(default_config(), telemetry_window=5000)
    return run_one("silc", "mcf", config, misses_per_core=MISSES, seed=7)


@pytest.fixture(scope="module")
def plain_result():
    return run_one("silc", "mcf", default_config(),
                   misses_per_core=MISSES, seed=7)


def test_series_is_non_empty(telemetry_result):
    snap = telemetry_result.telemetry
    assert snap is not None
    assert snap["schema"] == TELEMETRY_SCHEMA_VERSION
    assert len(snap["samples"]) > 1
    sample = snap["samples"][-1]
    assert "silcfm.window_access_rate" in sample
    assert "cpu.instructions" in sample
    assert "scheme.misses" in sample


def test_bypass_and_lock_events_present(telemetry_result):
    names = {e["name"] for e in telemetry_result.telemetry["events"]}
    # ISSUE acceptance: >= 1 bypass-mode transition and >= 1 lock event
    assert names & {"bypass-on", "bypass-off"}
    assert "lock" in names


def test_events_form_valid_chrome_trace(telemetry_result):
    count = validate_chrome_trace(telemetry_result.telemetry["events"])
    assert count == len(telemetry_result.telemetry["events"])


def test_figures_of_merit_unchanged_by_telemetry(telemetry_result,
                                                 plain_result):
    """Sampling is read-only: enabling telemetry must not perturb the
    simulation."""
    assert telemetry_result.elapsed_cycles == plain_result.elapsed_cycles
    assert telemetry_result.scheme_stats == plain_result.scheme_stats
    assert telemetry_result.access_rate == plain_result.access_rate


def test_disabled_run_serialises_without_telemetry_key(plain_result):
    data = plain_result.to_dict()
    assert "telemetry" not in data  # keeps cached JSON bit-identical


def test_result_roundtrip_preserves_telemetry(telemetry_result):
    data = telemetry_result.to_dict()
    assert "telemetry" in data
    back = RunResult.from_dict(data)
    assert back.telemetry == telemetry_result.telemetry
