"""Unit tests for the Chrome-trace event tracer, the container format
and the validator."""

import json

import pytest

from repro.telemetry import (
    EventTracer,
    TraceFormatError,
    chrome_trace_container,
    validate_chrome_trace,
    write_artifacts,
    write_series,
    write_trace,
)


def _tracer(**kwargs):
    kwargs.setdefault("cycles_per_us", 1000.0)
    return EventTracer(**kwargs)


# ----------------------------------------------------------------------
# event emission
# ----------------------------------------------------------------------
def test_instant_event_shape():
    tracer = _tracer()
    tracer.instant("swap-in", "swap", cycles=2000.0, args={"way": 3})
    (event,) = tracer.events()
    assert event["name"] == "swap-in"
    assert event["ph"] == "i"
    assert event["cat"] == "swap"
    assert event["ts"] == pytest.approx(2.0)  # 2000 cycles @ 1 GHz = 2 us
    assert event["args"] == {"way": 3}
    assert "pid" in event and "tid" in event


def test_counter_event_shape():
    tracer = _tracer()
    tracer.counter("telemetry", cycles=5000.0, values={"rate": 0.8})
    (event,) = tracer.events()
    assert event["ph"] == "C"
    assert event["args"] == {"rate": 0.8}
    assert event["ts"] == pytest.approx(5.0)


def test_event_cap_counts_dropped():
    tracer = _tracer(max_events=3)
    for i in range(10):
        tracer.instant(f"e{i}", "cat", cycles=float(i))
    assert len(tracer.events()) == 3
    assert tracer.dropped == 7
    # the oldest events are kept (caps truncate the tail, not the head)
    assert [e["name"] for e in tracer.events()] == ["e0", "e1", "e2"]


def test_complete_event_shape():
    tracer = _tracer()
    tracer.complete("row1", "span.request", start_cycles=1000.0,
                    dur_cycles=500.0, tid=3, args={"paddr": 64})
    (event,) = tracer.events()
    assert event["ph"] == "X"
    assert event["ts"] == pytest.approx(1.0)
    assert event["dur"] == pytest.approx(0.5)
    assert event["tid"] == 3
    assert event["args"] == {"paddr": 64}


def test_flow_events_pair_by_id():
    tracer = _tracer()
    tracer.flow("coalesce", "span.flow", 100.0, "span7.0", "s", tid=1)
    tracer.flow("coalesce", "span.flow", 400.0, "span7.0", "f", tid=1)
    start, finish = tracer.events()
    assert start["ph"] == "s" and finish["ph"] == "f"
    assert start["id"] == finish["id"] == "span7.0"
    assert finish["bp"] == "e"  # finish binds to the enclosing slice
    assert "bp" not in start


def test_flow_rejects_bad_phase():
    with pytest.raises(ValueError, match="s/t/f"):
        _tracer().flow("x", "cat", 0.0, "id0", "X")


def test_reserve_keeps_or_drops_batches_whole():
    tracer = _tracer(max_events=4)
    tracer.instant("pre", "cat", cycles=0.0)
    assert tracer.reserve(3) is True
    for i in range(3):
        tracer.instant(f"b{i}", "cat", cycles=float(i))
    # next batch of 3 cannot fit (4-event cap, 4 used): refused whole
    assert tracer.reserve(3) is False
    assert tracer.dropped == 3
    assert len(tracer.events()) == 4


# ----------------------------------------------------------------------
# container + validation
# ----------------------------------------------------------------------
def test_container_wraps_events():
    tracer = _tracer()
    tracer.instant("x", "cat", cycles=0.0)
    container = chrome_trace_container(tracer.events())
    assert container["traceEvents"] == tracer.events()
    assert "displayTimeUnit" in container


def test_validate_accepts_container_dict_and_list():
    tracer = _tracer()
    tracer.instant("x", "cat", cycles=1.0)
    events = tracer.events()
    assert validate_chrome_trace(chrome_trace_container(events)) == 1
    assert validate_chrome_trace(events) == 1


def test_validate_accepts_file_path(tmp_path):
    tracer = _tracer()
    tracer.instant("x", "cat", cycles=1.0)
    tracer.counter("c", cycles=2.0, values={"v": 1})
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(chrome_trace_container(tracer.events())))
    assert validate_chrome_trace(str(path)) == 2


def test_validate_rejects_missing_required_key():
    with pytest.raises(TraceFormatError):
        validate_chrome_trace([{"name": "x", "ph": "i", "ts": 0.0}])


def test_validate_rejects_non_numeric_ts():
    with pytest.raises(TraceFormatError):
        validate_chrome_trace([{"name": "x", "ph": "i", "ts": "soon",
                                "pid": 1, "tid": 1}])


def test_validate_rejects_non_trace_payload():
    with pytest.raises(TraceFormatError):
        validate_chrome_trace({"not": "a trace"})


# ----------------------------------------------------------------------
# artifact files
# ----------------------------------------------------------------------
def _snapshot():
    tracer = _tracer()
    tracer.instant("lock", "lock", cycles=10.0)
    return {
        "schema": 1,
        "window_cycles": 100,
        "samples": [{"t": 100.0, "dt": 100.0, "g": 1.0}],
        "spilled_samples": 0,
        "spill_path": None,
        "counters": {},
        "events": tracer.events(),
        "dropped_events": 0,
    }


def test_write_series_strips_events(tmp_path):
    path = write_series(tmp_path / "s.series.json", _snapshot())
    data = json.loads(path.read_text())
    assert "events" not in data
    assert data["samples"][0]["g"] == 1.0
    assert data["schema"] == 1


def test_write_trace_is_valid_chrome_trace(tmp_path):
    path = write_trace(tmp_path / "t.trace.json", _snapshot())
    assert validate_chrome_trace(str(path)) == 1


def test_write_artifacts_names_both_files(tmp_path):
    series, trace = write_artifacts(tmp_path / "sub", "stem", _snapshot())
    assert series.name == "stem.series.json"
    assert trace.name == "stem.trace.json"
    assert series.exists() and trace.exists()


def test_run_metadata_header_embedded_in_both_files(tmp_path):
    from repro.sim.config import config_digest, default_config
    from repro.telemetry import TELEMETRY_SCHEMA_VERSION, run_metadata

    config = default_config()
    meta = run_metadata("silc", "mcf", 7, config, misses_per_core=4000)
    assert meta["schema"] == TELEMETRY_SCHEMA_VERSION
    assert meta["config_digest"] == config_digest(config)
    series, trace = write_artifacts(tmp_path, "stem", _snapshot(), meta=meta)
    series_run = json.loads(series.read_text())["run"]
    trace_run = json.loads(trace.read_text())["otherData"]["run"]
    for run in (series_run, trace_run):
        assert run["scheme"] == "silc"
        assert run["workload"] == "mcf"
        assert run["seed"] == 7
        assert run["misses_per_core"] == 4000
    assert validate_chrome_trace(str(trace)) == 1


def test_artifacts_without_meta_carry_no_run_header(tmp_path):
    series, trace = write_artifacts(tmp_path, "stem", _snapshot())
    assert "run" not in json.loads(series.read_text())
    assert "run" not in json.loads(trace.read_text())["otherData"]
