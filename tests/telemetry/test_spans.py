"""Span tracing: deterministic sampling, collector aggregation, trace
emission, and the end-to-end latency-attribution guarantees (stage sums
reconcile with the controller's demand-stall accounting; flow events
link every coalesced MSHR sibling; figures of merit are untouched)."""

import dataclasses
import hashlib
import json
import types

import pytest

from repro.experiments.executor import CACHE_SCHEMA_VERSION, Cell
from repro.experiments.runner import run_one
from repro.schemes.base import Level, Op
from repro.sim.config import default_config
from repro.telemetry import validate_chrome_trace
from repro.telemetry.spans import (SPANS_SCHEMA_VERSION, Span,
                                   SpanCollector, SpanRecorder, stage_label)
from repro.telemetry.tracer import EventTracer

SCALE = 0.25
MISSES = 800
SEED = 7


class _Clock:
    def __init__(self):
        self.now = 0.0


def _config(**overrides):
    return dataclasses.replace(default_config(scale=SCALE), **overrides)


def _txn(span):
    """Minimal transaction stand-in: retire() only touches ``.span``."""
    return types.SimpleNamespace(span=span)


# ----------------------------------------------------------------------
# stage classification
# ----------------------------------------------------------------------
def test_stage_label_classification():
    meta = Op(Level.NM, 0, 8, False)
    nm = Op(Level.NM, 0, 64, False)
    fm = Op(Level.FM, 0, 64, False)
    assert stage_label([meta]) == "meta"
    assert stage_label([nm]) == "nm_data"
    assert stage_label([fm]) == "fm_data"
    assert stage_label([nm, fm]) == "mixed"
    # one data-sized op makes the stage a data stage
    assert stage_label([meta, nm]) == "nm_data"


# ----------------------------------------------------------------------
# Span bookkeeping
# ----------------------------------------------------------------------
def test_span_lifecycle_stamps():
    span = Span(0, 0x40, False, issue_t=10.0)
    span.admit(12.0)
    span.dispatch(15.0)
    span.decide("row1", "nm", False, 16.0)
    span.begin_stage("meta", 16.0)
    span.end_stage(20.0)
    span.begin_stage("nm_data", 20.0)
    span.join(24.0)
    span.add_dram(5.0, 3.0)
    span.end_stage(30.0)
    span.finish_t = 30.0
    assert span.latency == 20.0
    assert span.service_cycles == 15.0
    assert span.stages == [("meta", 16.0, 20.0), ("nm_data", 20.0, 30.0)]
    assert span.siblings == [24.0]
    assert span.row == "row1" and span.serviced_from == "nm"
    assert (span.dram_queue, span.dram_service) == (5.0, 3.0)


def test_end_stage_without_open_stage_is_noop():
    span = Span(0, 0, False, 0.0)
    span.end_stage(5.0)
    assert span.stages == []


# ----------------------------------------------------------------------
# deterministic sampling
# ----------------------------------------------------------------------
def test_recorder_modulo_sampling():
    recorder = SpanRecorder(3, _Clock())
    decisions = [recorder.arrival() for _ in range(7)]
    assert decisions == [True, False, False, True, False, False, True]
    assert recorder.snapshot()["arrivals"] == 7


def test_recorder_rejects_rate_below_one():
    with pytest.raises(ValueError):
        SpanRecorder(0, _Clock())


def test_warmup_reset_preserves_sampling_sequence():
    """Collector aggregates reset at warmup; the modulo sequence and
    span ids must not, so which requests are sampled stays a pure
    function of the arrival order."""
    recorder = SpanRecorder(2, _Clock())
    assert recorder.arrival() is True
    recorder.reset_stats()
    assert recorder.arrival() is False  # continues the sequence
    assert recorder.collector.spans_recorded == 0


# ----------------------------------------------------------------------
# retire: aggregation + trace emission
# ----------------------------------------------------------------------
def test_retire_aggregates_and_emits_slices():
    clock = _Clock()
    tracer = EventTracer(cycles_per_us=1000.0)
    recorder = SpanRecorder(1, clock, tracer=tracer)
    assert recorder.arrival()
    span = recorder.start(0x80, True)
    span.dispatch(2.0)
    span.decide("row2", "fm", True, 3.0)
    span.begin_stage("fm_data", 3.0)
    span.end_stage(9.0)
    span.join(5.0)
    txn = _txn(span)
    recorder.retire(txn, 9.0)
    assert txn.span is None
    assert recorder.unretired == 0
    assert recorder.collector.spans_recorded == 1
    by_ph = {}
    for event in tracer.events():
        by_ph.setdefault(event["ph"], []).append(event)
    (request,) = [e for e in by_ph["X"] if e["cat"] == "span.request"]
    assert request["name"] == "row2"
    assert request["args"]["bypassed"] is True
    assert request["args"]["coalesced"] == 1
    (stage,) = [e for e in by_ph["X"] if e["cat"] == "span.stage"]
    assert stage["name"] == "fm_data"
    (start,), (finish,) = by_ph["s"], by_ph["f"]
    assert start["id"] == finish["id"]


def test_emission_batch_dropped_whole_under_cap():
    """A span whose slices cannot all fit is dropped entirely — a trace
    never contains a flow start without its finish."""
    clock = _Clock()
    tracer = EventTracer(max_events=2, cycles_per_us=1000.0)
    recorder = SpanRecorder(1, clock, tracer=tracer)
    recorder.arrival()
    span = recorder.start(0, False)
    span.begin_stage("meta", 0.0)
    span.end_stage(1.0)
    span.join(0.5)  # 1 request + 1 stage + 2 flow events = 4 > cap
    recorder.retire(_txn(span), 1.0)
    assert len(tracer.events()) == 0
    assert tracer.dropped == 4
    assert recorder.collector.spans_recorded == 1  # aggregates still kept


# ----------------------------------------------------------------------
# collector
# ----------------------------------------------------------------------
def _retired_span(sid=0, latency=100.0, row="row1", siblings=0):
    span = Span(sid, sid * 64, False, 0.0)
    span.dispatch(0.0)
    span.decide(row, "nm", False, 0.0)
    span.begin_stage("nm_data", 0.0)
    span.end_stage(latency)
    for k in range(siblings):
        span.join(float(k))
    span.finish_t = latency
    return span


def test_collector_percentile_overflow_serialises_none():
    collector = SpanCollector()
    collector.record(_retired_span(latency=1e9))  # beyond the histogram
    snap = collector.snapshot()
    assert snap["latency"]["p50"] is None
    assert snap["rows"]["row1"]["p99"] is None
    json.dumps(snap)  # stays strict JSON


def test_collector_top_chains_longest_first():
    collector = SpanCollector()
    collector.record(_retired_span(sid=1, latency=50.0, siblings=2))
    collector.record(_retired_span(sid=2, latency=90.0, siblings=5))
    collector.record(_retired_span(sid=3, latency=10.0))  # no chain
    snap = collector.snapshot()
    assert [c["span"] for c in snap["top_chains"]] == [2, 1]
    assert snap["coalesced_siblings"] == 7


def test_collector_stage_shares_sum_to_one():
    collector = SpanCollector()
    for sid in range(4):
        collector.record(_retired_span(sid=sid, latency=100.0 + sid))
    snap = collector.snapshot()
    assert sum(s["share"] for s in snap["stages"].values()) == pytest.approx(1.0)
    assert snap["stage_cycles_total"] == pytest.approx(
        sum(s["cycles"] for s in snap["stages"].values()))


# ----------------------------------------------------------------------
# config validation + cache-key stability
# ----------------------------------------------------------------------
def test_config_rejects_spans_without_telemetry():
    with pytest.raises(ValueError, match="telemetry"):
        dataclasses.replace(default_config(), span_sample_rate=1)
    with pytest.raises(ValueError):
        dataclasses.replace(default_config(), span_sample_rate=-1)


def test_cell_key_byte_identical_with_spans_disabled():
    """The acceptance bar: a rate-0 config hashes exactly as a config
    from before the field existed, so existing caches stay warm."""
    config = default_config()
    assert config.span_sample_rate == 0
    config_dict = dataclasses.asdict(config)
    config_dict.pop("span_sample_rate")  # the pre-span payload
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "scheme": "silc",
        "workload": "mcf",
        "config": config_dict,
        "misses_per_core": 20_000,
        "seed": None,
        "mode": "miss",
        "warmup_fraction": 0.2,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    legacy_key = hashlib.sha256(canonical.encode()).hexdigest()
    assert Cell("silc", "mcf", config).key() == legacy_key


def test_cell_key_changes_when_spans_enabled():
    base = dataclasses.replace(default_config(), telemetry_window=5000)
    spanned = dataclasses.replace(base, span_sample_rate=4)
    assert (Cell("silc", "mcf", base).key()
            != Cell("silc", "mcf", spanned).key())


# ----------------------------------------------------------------------
# end-to-end: silc on mcf with spans at rate 1
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def span_result():
    # compat front door (mshr_entries=0): the Table-I row coverage this
    # fixture pins (bypass + lock rows post-warmup) is a property of
    # the uncoalesced consult stream; MSHR-mode span behaviour has its
    # own fixture below (coalescing_result).
    config = _config(telemetry_window=5000, span_sample_rate=1,
                     mshr_entries=0)
    return run_one("silc", "mcf", config, misses_per_core=MISSES, seed=SEED)


@pytest.fixture(scope="module")
def telemetry_only_result():
    config = _config(telemetry_window=5000, mshr_entries=0)
    return run_one("silc", "mcf", config, misses_per_core=MISSES, seed=SEED)


def test_spans_snapshot_shape(span_result):
    spans = span_result.telemetry["spans"]
    assert spans["schema"] == SPANS_SCHEMA_VERSION
    assert spans["sample_rate"] == 1
    assert spans["spans"] > 0
    assert spans["unretired"] == 0
    assert spans["stages"]  # non-empty per-stage attribution
    assert spans["rows"]


def test_stage_sums_reconcile_with_demand_stall(span_result):
    """ISSUE acceptance: at rate 1 the per-stage cycle sums reconcile
    with the controller's total memory-stall accounting within 1% —
    the design makes them *exactly* equal (stages partition
    dispatch->retire and both totals reset together at warmup)."""
    spans = span_result.telemetry["spans"]
    staged = spans["stage_cycles_total"]
    demand = spans["demand_stall_cycles"]
    assert demand > 0
    assert staged == pytest.approx(demand, rel=1e-9)


def test_observed_rows_are_declared(span_result):
    spans = span_result.telemetry["spans"]
    declared = set(spans["rows_declared"])
    assert declared  # silc declares its Table I rows
    assert set(spans["rows"]) <= declared
    # mcf at this scale exercises both bypass and locking rows
    assert any("bypass" in row for row in spans["rows"])
    assert any("lock" in row for row in spans["rows"])


def test_row_tails_ordered(span_result):
    for rec in span_result.telemetry["spans"]["rows"].values():
        tails = [rec["p50"], rec["p95"], rec["p99"]]
        known = [t for t in tails if t is not None]
        assert known == sorted(known)
        assert rec["count"] > 0


def test_trace_slices_and_validity(span_result):
    events = span_result.telemetry["events"]
    assert validate_chrome_trace(events) == len(events)
    cats = {e.get("cat") for e in events}
    assert "span.request" in cats and "span.stage" in cats


def test_figures_of_merit_unchanged_by_spans(span_result,
                                             telemetry_only_result):
    """Spans observe; they must not perturb the simulation."""
    assert (span_result.elapsed_cycles
            == telemetry_only_result.elapsed_cycles)
    assert span_result.scheme_stats == telemetry_only_result.scheme_stats
    assert (span_result.controller_stats
            == telemetry_only_result.controller_stats)


def test_subsampling_counts_arrivals_deterministically():
    config = _config(telemetry_window=5000, span_sample_rate=4)
    result = run_one("silc", "mcf", config, misses_per_core=400, seed=SEED)
    spans = result.telemetry["spans"]
    assert spans["sample_rate"] == 4
    # modulo sampling: ceil(arrivals / 4) spans started, none leaked
    assert spans["sampled"] == (spans["arrivals"] + 3) // 4
    assert spans["unretired"] == 0


# ----------------------------------------------------------------------
# heavy coalescing: 32-entry MSHR, every sibling flow-linked
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def coalescing_result():
    config = _config(telemetry_window=5000, span_sample_rate=1,
                     mshr_entries=32)
    return run_one("silc", "mcf", config, misses_per_core=MISSES,
                   seed=SEED, warmup_fraction=0.0)


def test_coalesced_siblings_match_mshr_stat(coalescing_result):
    """With warmup off and rate 1 every transaction carries a span, so
    the collector's sibling count equals the MSHR's coalesced stat."""
    spans = coalescing_result.telemetry["spans"]
    assert coalescing_result.extras["mshr_coalesced"] > 0
    assert (spans["coalesced_siblings"]
            == coalescing_result.extras["mshr_coalesced"])


def test_stage_sums_reconcile_under_mshr(coalescing_result):
    """Satellite of the silc-mshr32 postmortem: with a 32-entry MSHR at
    rate 1 the reconciliation line still closes at <=1%.  Structural-
    stall cycles live in the issue->admit segment (``mshr_wait``), not
    in the dispatch->retire stage partition, so they must be neither
    double-counted into the stage sums nor dropped from the span's
    latency total."""
    spans = coalescing_result.telemetry["spans"]
    staged = spans["stage_cycles_total"]
    demand = spans["demand_stall_cycles"]
    assert demand > 0
    assert abs(staged - demand) <= 0.01 * demand
    # 800 misses/core through 32 entries stalls structurally, and the
    # queue wait is attributed (admit - issue), not erased at admission
    assert coalescing_result.extras["mshr_structural_stalls"] > 0
    waits = spans["wait_cycles"]
    assert waits["mshr_wait"] > 0
    # exact partition: issue->admit->dispatch->retire covers the whole
    # latency, so waits + service reconstruct it with nothing lost
    assert spans["latency_cycles"] == pytest.approx(
        spans["service_cycles"] + waits["mshr_wait"]
        + waits["dispatch_wait"], rel=1e-9)


def test_every_sibling_has_a_paired_flow(coalescing_result):
    snap = coalescing_result.telemetry
    assert snap["dropped_events"] == 0  # nothing truncated at this size
    assert validate_chrome_trace(snap["events"]) == len(snap["events"])
    flows = [e for e in snap["events"] if e.get("cat") == "span.flow"]
    starts = [e["id"] for e in flows if e["ph"] == "s"]
    finishes = [e["id"] for e in flows if e["ph"] == "f"]
    assert len(starts) == snap["spans"]["coalesced_siblings"]
    assert sorted(starts) == sorted(finishes)
    assert len(set(starts)) == len(starts)  # ids are unique
