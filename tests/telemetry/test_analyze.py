"""The ``repro analyze`` latency-attribution report: artifact loading
(series + trace fallback), rendering, and the failure modes."""

import dataclasses
import json

import pytest

from repro.experiments.runner import run_one
from repro.sim.config import default_config
from repro.telemetry import run_metadata, write_artifacts
from repro.telemetry.analyze import (AnalyzeError, analyze, load_artifact,
                                     render_report)

MISSES = 600
SEED = 7


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Series + trace files from one span-sampled silc/mcf run."""
    config = dataclasses.replace(default_config(scale=0.25),
                                 telemetry_window=5000, span_sample_rate=1)
    result = run_one("silc", "mcf", config, misses_per_core=MISSES,
                     seed=SEED)
    directory = tmp_path_factory.mktemp("artifacts")
    meta = run_metadata("silc", "mcf", SEED, config, misses_per_core=MISSES)
    series, trace = write_artifacts(directory, "silc-mcf",
                                    result.telemetry, meta=meta)
    return series, trace


def test_load_series_artifact(artifacts):
    series, _trace = artifacts
    data = load_artifact(series)
    assert data["kind"] == "series" and data["unit"] == "cycles"
    assert data["run"]["scheme"] == "silc"
    assert data["spans"]["spans"] > 0


def test_series_report_contents(artifacts):
    series, _trace = artifacts
    report = analyze(series)
    assert "silc/mcf" in report
    assert "Per-stage service time (cycles)" in report
    assert "Table I row breakdown" in report
    assert "reconciliation: stage sums cover 100.00%" in report
    assert "p95" in report and "p99" in report


def test_trace_fallback_report(artifacts):
    _series, trace = artifacts
    data = load_artifact(trace)
    assert data["kind"] == "trace" and data["unit"] == "us"
    report = render_report(data)
    assert "trace re-aggregation" in report
    assert "Per-stage service time (us)" in report
    # the trace carries no controller accounting: no reconciliation line
    assert "reconciliation" not in report


def test_spanless_series_rejected(tmp_path):
    path = tmp_path / "plain.series.json"
    path.write_text(json.dumps({"schema": 2, "samples": []}))
    with pytest.raises(AnalyzeError, match="span-sample-rate"):
        load_artifact(path)


def test_spanless_trace_rejected(tmp_path):
    path = tmp_path / "plain.trace.json"
    path.write_text(json.dumps({"traceEvents": [
        {"name": "lock", "ph": "i", "ts": 1.0, "pid": 0, "tid": 0}]}))
    with pytest.raises(AnalyzeError, match="span.request"):
        load_artifact(path)


def test_unreadable_artifact_rejected(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(AnalyzeError, match="not readable"):
        load_artifact(path)


def test_empty_spans_report_degrades_gracefully():
    report = render_report({"source": "x", "kind": "series",
                            "unit": "cycles", "run": None,
                            "spans": {"spans": 0}})
    assert "nothing to attribute" in report
