#!/usr/bin/env python3
"""Anatomy of a SILC-FM run: look inside the mechanism.

Run:  python examples/anatomy.py [benchmark] [misses_per_core]

Runs one workload under SILC-FM and dumps the internal state the paper's
Section III describes: how many frames ended up interleaved vs locked vs
fully remapped, the set-occupancy (conflict pressure) histogram that
motivates associativity, predictor accuracy, and the bit-vector history
table's effectiveness.
"""

import sys

from repro import BENCHMARKS, SCHEMES, System, default_config
from repro.stats.inspect import (
    describe_run,
    describe_silcfm,
    set_occupancy_histogram,
)
from repro.stats.report import bar_chart
from repro.workloads.spec import per_core_spec


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    misses = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    if benchmark not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {benchmark!r}; pick from {BENCHMARKS}")

    config = default_config()
    setup = SCHEMES["silc"]
    system = System(config, setup.factory, per_core_spec(benchmark, config),
                    misses_per_core=misses, alloc_policy=setup.alloc_policy,
                    warmup_fraction=0.2)
    result = system.run()
    scheme = system.scheme

    print(describe_run(result))
    print()
    print(describe_silcfm(scheme))
    print()
    histogram = set_occupancy_histogram(scheme)
    print(bar_chart(
        {f"{k} ways remapped": float(v) for k, v in histogram.items()},
        title="Congruence-set occupancy (conflict pressure)"))
    print()
    table = scheme.history
    print(f"Bit-vector history: {table.saves} saves, "
          f"{table.lookups} lookups, hit rate {table.hit_rate:.2f}; "
          f"{scheme.batch_fetched_subblocks} subblocks batch-fetched "
          f"(the spatial hits CAMEO cannot get).")


if __name__ == "__main__":
    main()
