#!/usr/bin/env python3
"""Bring your own workload: drive the simulator with a custom
memory-behaviour profile instead of the Table III presets.

Run:  python examples/custom_workload.py

Models an in-memory key-value store: a large footprint, a small
extremely hot index, poor spatial locality on the value heap, and a
periodic compaction phase that shifts the hot set — then asks which
flat-memory organisation handles it best.  This is the downstream-user
workflow: define a WorkloadSpec, reuse the scheme registry.
"""

import dataclasses

from repro import SCHEMES, System, WorkloadSpec, default_config
from repro.stats.collectors import geometric_mean
from repro.stats.report import format_table

def kv_store_spec(config) -> WorkloadSpec:
    """The workload profile, with its footprint scaled to the simulated
    capacity (so the example also runs under REPRO_SCALE overrides)."""
    budget = config.total_bytes // 2048 // config.cores
    return WorkloadSpec(
        name="kvstore",
        mpki=30.0,                          # memory-bound request processing
        footprint_pages=min(400, max(16, budget * 2 // 3)),
        hot_fraction=0.06,                  # the index pages
        hot_weight=0.75,                    # most lookups touch the index
        spatial_run=2.0,                    # pointer chasing through the heap
        write_fraction=0.30,                # inserts and updates
        phase_misses=6_000,                 # compaction reshuffles hot pages
        phase_shift=0.5,
        page_density=0.35,                  # values are small vs the 2 KB page
    )


def main() -> None:
    config = default_config()
    KV_STORE = kv_store_spec(config)
    misses = 4000
    results = {}
    for key in ("nonm", "cam", "pom", "silc"):
        setup = SCHEMES[key]
        system = System(config, setup.factory, KV_STORE,
                        misses_per_core=misses,
                        alloc_policy=setup.alloc_policy)
        results[key] = system.run()
        print(f"ran {setup.label}", flush=True)

    baseline = results["nonm"]
    rows = []
    for key in ("cam", "pom", "silc"):
        r = results[key]
        rows.append([
            SCHEMES[key].label,
            r.speedup_over(baseline),
            r.access_rate,
            r.scheme_stats.subblock_swaps,
            r.scheme_stats.block_migrations,
            r.edp / baseline.edp,
        ])
    print()
    print(format_table(
        ["scheme", "speedup", "access rate", "64B swaps", "2KB migrations",
         "EDP vs baseline"],
        rows, title="Key-value store workload (custom WorkloadSpec)",
    ))
    print("\nSparse pages + hot-set churn is exactly the regime where "
          "subblock\ninterleaving beats both 64 B-only and whole-page "
          "migration.")


if __name__ == "__main__":
    main()
