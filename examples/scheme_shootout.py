#!/usr/bin/env python3
"""Scheme shoot-out: the paper's Fig. 7 in miniature.

Run:  python examples/scheme_shootout.py [misses_per_core]

Runs a representative workload from each MPKI class (Table III) under
all six comparison schemes plus SILC-FM, prints per-workload speedups
over the no-NM baseline, and the geometric mean — the number the paper's
"36% over the best state-of-the-art" claim is about.
"""

import sys

from repro import SuiteRunner, default_config
from repro.experiments.figures import FIG7_SCHEMES
from repro.experiments.runner import SCHEMES
from repro.stats.collectors import geometric_mean
from repro.stats.report import bar_chart, grouped_series

#: one workload from each Table III class + the two feature showcases
WORKLOADS = ["xalancbmk", "gcc", "mcf", "milc"]


def main() -> None:
    misses = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    runner = SuiteRunner(default_config(), misses_per_core=misses)

    series = {}
    for scheme in FIG7_SCHEMES:
        label = SCHEMES[scheme].label
        series[scheme] = {
            wl: runner.speedup(scheme, wl) for wl in WORKLOADS
        }
        print(f"ran {label}", flush=True)

    print()
    print(grouped_series(series, headers_label="workload",
                         title="Speedup over no-NM baseline (Fig. 7 subset)"))
    print()
    geomeans = {
        SCHEMES[s].label: geometric_mean(series[s].values())
        for s in FIG7_SCHEMES
    }
    print(bar_chart(geomeans, title="Geometric-mean speedup", unit="x"))

    best_other = max(v for k, v in geomeans.items() if k != "SILC-FM")
    silc = geomeans["SILC-FM"]
    print(f"\nSILC-FM vs best other scheme: "
          f"{(silc / best_other - 1) * 100:+.1f}% "
          f"(paper reports +36% on the full suite)")


if __name__ == "__main__":
    main()
