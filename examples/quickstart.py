#!/usr/bin/env python3
"""Quickstart: compare SILC-FM against the no-die-stacked-DRAM baseline
on one bandwidth-hungry benchmark.

Run:  python examples/quickstart.py [benchmark] [misses_per_core]

This is the smallest useful end-to-end use of the library: build the
scaled Table II system, run the ``mcf`` rate-mode workload under two
memory organisations, and report the paper's figures of merit (speedup,
NM access rate, bandwidth split, energy-delay product).
"""

import sys

from repro import BENCHMARKS, default_config, run_one
from repro.stats.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    misses = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    if benchmark not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {benchmark!r}; pick from {BENCHMARKS}")

    config = default_config()
    print(f"System: NM {config.nm_bytes >> 20} MiB HBM2 "
          f"({config.nm_timings.peak_bandwidth_gbs():.1f} GB/s) + "
          f"FM {config.fm_bytes >> 20} MiB DDR3 "
          f"({config.fm_timings.peak_bandwidth_gbs():.1f} GB/s), "
          f"{config.cores} cores")
    print(f"Workload: {benchmark}, {misses} LLC misses/core (rate mode)\n")

    baseline = run_one("nonm", benchmark, config, misses_per_core=misses)
    silcfm = run_one("silc", benchmark, config, misses_per_core=misses)

    rows = [
        ["execution cycles", f"{baseline.elapsed_cycles:,.0f}",
         f"{silcfm.elapsed_cycles:,.0f}"],
        ["speedup", 1.0, silcfm.speedup_over(baseline)],
        ["NM access rate", baseline.access_rate, silcfm.access_rate],
        ["NM demand-bandwidth share", baseline.nm_demand_fraction,
         silcfm.nm_demand_fraction],
        ["mean miss latency (cycles)",
         baseline.controller_stats.mean_miss_latency,
         silcfm.controller_stats.mean_miss_latency],
        ["energy (J)", baseline.energy.total_joules,
         silcfm.energy.total_joules],
        ["EDP (J*s, lower=better)", baseline.edp, silcfm.edp],
    ]
    print(format_table(["metric", "no-NM baseline", "SILC-FM"], rows,
                       float_format="{:.4g}"))
    print(f"\nSILC-FM swapped {silcfm.scheme_stats.subblock_swaps} subblocks "
          f"and migrated 0 whole pages — that is the point of the paper.")


if __name__ == "__main__":
    main()
