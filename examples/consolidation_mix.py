#!/usr/bin/env python3
"""Server-consolidation mix: heterogeneous workloads sharing flat memory.

Run:  python examples/consolidation_mix.py [mix] [misses_per_core]

The paper evaluates rate mode (16 copies of one program); a consolidated
server runs a *mix*.  This example assigns a different Table III
benchmark to each core — a latency-sensitive job next to bandwidth
hogs — and asks whether SILC-FM's per-block hardware management still
wins when the hot sets of unrelated programs compete for NM.
"""

import sys

from repro import default_config
from repro.experiments.mixes import MIXES, mix_speedups, run_mix
from repro.stats.report import bar_chart, format_table


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix-blend"
    misses = int(sys.argv[2]) if len(sys.argv) > 2 else 3000
    if mix not in MIXES:
        raise SystemExit(f"unknown mix {mix!r}; pick from {sorted(MIXES)}")

    config = default_config()
    print(f"Mix {mix!r}: cores run {MIXES[mix]} round-robin\n")

    speedups = mix_speedups(mix, config, scheme_keys=["hma", "cam", "pom", "silc"],
                            misses_per_core=misses)
    print(bar_chart(speedups, title="Speedup over no-NM baseline", unit="x"))

    # per-core fairness under SILC-FM: who finished when?
    result = run_mix("silc", mix, config, misses_per_core=misses)
    rows = [
        [core, MIXES[mix][core % len(MIXES[mix])],
         f"{stats.finish_time:,.0f}", f"{stats.ipc():.2f}"]
        for core, stats in enumerate(result.core_stats[:8])
    ]
    print()
    print(format_table(["core", "benchmark", "finish (cycles)", "IPC"],
                       rows, title="SILC-FM per-core progress (first 8 cores)"))


if __name__ == "__main__":
    main()
