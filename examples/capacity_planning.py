#!/usr/bin/env python3
"""Capacity planning: how much die-stacked DRAM does a workload need?

Run:  python examples/capacity_planning.py [benchmark] [misses_per_core]

The paper's Fig. 9 question, asked the way a system architect would:
given a fixed far-memory capacity, sweep the NM:FM ratio from 1:16
(Knights-Landing-like) to 1:4 and report how SILC-FM's speedup and
access rate respond — and at which point the bandwidth-balancing bypass
starts firing (access rate > 0.8).
"""

import sys

from repro import BENCHMARKS, default_config, run_one
from repro.stats.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    misses = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    if benchmark not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {benchmark!r}; pick from {BENCHMARKS}")

    base_config = default_config()
    rows = []
    for ratio in (16, 8, 4):
        config = base_config.with_ratio(ratio)
        baseline = run_one("nonm", benchmark, config, misses_per_core=misses)
        result = run_one("silc", benchmark, config, misses_per_core=misses)
        bypassed = result.scheme_stats.bypassed
        rows.append([
            f"1:{ratio}",
            f"{config.nm_bytes >> 20} MiB",
            result.speedup_over(baseline),
            result.access_rate,
            result.nm_demand_fraction,
            "yes" if bypassed else "no",
        ])
        print(f"ratio 1:{ratio} done", flush=True)

    print()
    print(format_table(
        ["NM:FM", "NM size", "speedup", "access rate", "NM bw share",
         "bypass fired"],
        rows,
        title=f"SILC-FM capacity sweep on {benchmark} (paper Fig. 9)",
    ))
    print("\nReading: speedup should grow with NM capacity; once the access"
          "\nrate crosses 0.8 the balancer deliberately holds the NM share"
          "\nnear 0.8 to use both memories' bandwidth (Section III-E).")


if __name__ == "__main__":
    main()
