"""Scheme-state inspection: human-readable dumps of a running system's
internal state, for debugging and for the examples.

``describe_silcfm`` summarises frame occupancy (interleaved / locked /
clean), residency-bit density and counter distributions;
``describe_run`` renders a one-screen report of a finished RunResult.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.silcfm import SilcFmScheme
from repro.stats.collectors import RunningStat
from repro.stats.report import format_table

if TYPE_CHECKING:  # annotation-only: keeps repro.stats importable from
    # low-level modules (telemetry.spans) without pulling in cpu.system
    from repro.cpu.system import RunResult


def describe_silcfm(scheme: SilcFmScheme) -> str:
    """One-screen summary of a SILC-FM scheme's frame state."""
    clean = interleaved = fully_remapped = locked_fm = locked_nm = 0
    bits = RunningStat()
    fm_counts = RunningStat()
    for frame in scheme.frames:
        if frame.locked:
            if frame.lock_owner == "fm":
                locked_fm += 1
            else:
                locked_nm += 1
        elif frame.remap is None:
            clean += 1
        elif frame.interleaved:
            interleaved += 1
        else:
            fully_remapped += 1
        if frame.remap is not None:
            bits.add(bin(frame.bitvec).count("1"))
            fm_counts.add(frame.fm_count)

    rows = [
        ["frames", len(scheme.frames)],
        ["clean (native only)", clean],
        ["interleaved (two blocks)", interleaved],
        ["fully remapped", fully_remapped],
        ["locked (fm owner)", locked_fm],
        ["locked (nm owner)", locked_nm],
        ["mean resident subblocks", f"{bits.mean:.1f}" if bits.count else "-"],
        ["mean fm counter", f"{fm_counts.mean:.1f}" if fm_counts.count else "-"],
        ["history table entries", len(scheme.history)],
        ["predictor way accuracy", f"{scheme.predictor.way_accuracy:.3f}"],
        ["metadata cache hit rate", "{:.3f}".format(
            scheme.meta_cache_hits
            / max(1, scheme.meta_cache_hits + scheme.meta_cache_misses))],
        ["installs / restores", f"{scheme.installs} / {scheme.restores}"],
        ["locks acquired / released",
         f"{scheme.locks_acquired} / {scheme.locks_released}"],
    ]
    return format_table(["state", "value"], rows, title="SILC-FM frame state")


def describe_run(result: RunResult) -> str:
    """One-screen summary of a finished simulation."""
    stats = result.scheme_stats
    controller = result.controller_stats
    rows = [
        ["scheme / workload", f"{result.scheme_name} / {result.workload_name}"],
        ["execution cycles", f"{result.elapsed_cycles:,.0f}"],
        ["LLC misses measured", stats.misses],
        ["NM access rate", f"{stats.access_rate:.3f}"],
        ["bypassed accesses", stats.bypassed],
        ["subblock swaps", stats.subblock_swaps],
        ["2KB migrations", stats.block_migrations],
        ["mean miss latency", f"{controller.mean_miss_latency:.1f} cycles"],
        ["NM demand-bw share", f"{controller.nm_demand_fraction:.3f}"],
        ["NM / FM traffic",
         f"{result.nm_stats.bytes_total >> 10} / "
         f"{result.fm_stats.bytes_total >> 10} KiB"],
        ["energy", f"{result.energy.total_joules:.3e} J"],
        ["EDP", f"{result.edp:.3e} J*s"],
    ]
    return format_table(["metric", "value"], rows, title="Run summary")


def set_occupancy_histogram(scheme: SilcFmScheme) -> Dict[int, int]:
    """How many sets have 0..assoc remapped ways — the conflict-pressure
    profile that motivates associativity (Section III-C)."""
    histogram = {k: 0 for k in range(scheme.assoc + 1)}
    for set_index in range(scheme.num_sets):
        occupied = sum(
            1 for way in scheme._set_ways(set_index)
            if scheme.frames[way].remap is not None
        )
        histogram[occupied] += 1
    return histogram
