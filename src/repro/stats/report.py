"""ASCII reporting: the benchmark harness prints the paper's tables and
figures as text so a terminal run shows the reproduced rows/series."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "",
                 float_format: str = "{:.3f}") -> str:
    """Render a monospace table with auto-sized columns."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(values: Dict[str, float], title: str = "", width: int = 50,
              unit: str = "") -> str:
    """Horizontal ASCII bar chart (one bar per labelled value)."""
    if not values:
        return title
    label_width = max(len(label) for label in values)
    peak = max(values.values()) or 1.0
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.3f}{unit}")
    return "\n".join(lines)


def grouped_series(series: Dict[str, Dict[str, float]], headers_label: str = "workload",
                   title: str = "", float_format: str = "{:.3f}") -> str:
    """Render {series -> {category -> value}} as a table with one column
    per series (the shape of the paper's grouped bar figures)."""
    series_names = list(series)
    categories: List[str] = []
    for mapping in series.values():
        for category in mapping:
            if category not in categories:
                categories.append(category)
    headers = [headers_label] + series_names
    rows = []
    for category in categories:
        row = [category]
        for name in series_names:
            value = series[name].get(category)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
