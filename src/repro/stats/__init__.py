"""Statistics collection and ASCII reporting."""

from repro.stats.collectors import Histogram, RunningStat, geometric_mean
from repro.stats.inspect import describe_run, describe_silcfm, set_occupancy_histogram
from repro.stats.report import bar_chart, format_table, grouped_series

__all__ = ["Histogram", "RunningStat", "bar_chart", "describe_run",
           "describe_silcfm", "format_table", "geometric_mean",
           "grouped_series", "set_occupancy_histogram"]
