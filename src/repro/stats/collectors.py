"""Small statistics utilities used across the harness."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean — the paper's aggregate for per-benchmark speedups."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class RunningStat:
    """Streaming mean/variance/min/max (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class Histogram:
    """Fixed-width bucket histogram for latency/queue-depth profiles.

    Values at or beyond ``max_buckets * bucket_width`` land in an
    explicit **overflow** bucket rather than being silently folded into
    the last regular bucket — folding made a tail of 10000-cycle
    latencies indistinguishable from a cluster just past the range, and
    percentiles reported from the clamped bucket understated the tail
    by an unbounded amount.  A percentile that falls in the overflow
    region returns ``math.inf``: "beyond the histogram's range" is an
    answer, a fabricated finite edge is not.
    """

    def __init__(self, bucket_width: float, max_buckets: int = 256) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        if max_buckets < 1:
            raise ValueError("need at least one bucket")
        self.bucket_width = bucket_width
        self.max_buckets = max_buckets
        self._buckets: Dict[int, int] = {}
        self.count = 0
        #: values at or beyond ``span`` (the overflow bucket's count).
        self.overflow = 0
        #: largest value ever added (finite even when everything
        #: overflowed, so reports can say *how far* the tail reaches).
        self.max_value = 0.0

    @property
    def span(self) -> float:
        """Upper edge of the bucketed range (overflow starts here)."""
        return self.max_buckets * self.bucket_width

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        bucket = int(value / self.bucket_width)
        if bucket >= self.max_buckets:
            self.overflow += 1
        else:
            self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.max_value = max(self.max_value, value)

    def percentile(self, p: float) -> float:
        """Upper edge of the bucket containing the p-th percentile;
        ``math.inf`` when that percentile lies in the overflow bucket."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if self.count == 0:
            return 0.0
        target = self.count * p / 100.0
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                return (bucket + 1) * self.bucket_width
        return math.inf

    def buckets(self) -> List:
        """In-range ``(bucket, count)`` pairs, ascending; the overflow
        count is *not* included (read :attr:`overflow`)."""
        return sorted(self._buckets.items())
