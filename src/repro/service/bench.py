"""Service bench: the sweep service under deterministic multi-tenant load.

``run_service_bench`` drives an in-process :class:`SweepService` (real
TCP, real worker pool, temporary cache directory) through two phases
and reports the numbers the BENCH regression gate tracks:

* **cold** — every tenant at once against an empty cache.  Most cells
  collide across tenants, so the phase measures end-to-end sharded
  throughput *and* single-flight dedup under contention.
* **hot** — the same tenants resubmit the same sweeps.  Every cell is
  served from the service's memo, so the phase measures cache-hit
  service latency (p50/p95 across the event stream) and hot-path
  throughput.

The tenant plan is pinned (seeded RNG, fixed pool of cells, fixed
schemes/workloads/miss counts) so runs are comparable across checkouts,
exactly like the simulator bench cells.  The payload also carries the
service's correctness witnesses — ``exactly_once`` (no cache key
executed on the pool more than once, and exactly one execution per
unique submitted key) and the completed-cells conservation law — so a
dedup regression fails the bench even if throughput looks healthy.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import tempfile
import time
from typing import Dict, List, Optional

from repro.experiments.executor import Cell
from repro.service.client import SweepClient
from repro.service.service import SweepService
from repro.sim.config import default_config

#: pinned seed for the tenant plan — same sweeps every run.
SERVICE_BENCH_SEED = 1234

#: (scheme, workload) spread for the shared cell pool.
POOL_SCHEMES = ["nonm", "cam", "pom", "silc", "hma", "alloy"]
POOL_WORKLOADS = ["mcf", "milc", "lbm", "libquantum"]

#: full suite: heavy contention, CI-scale cost is a few minutes.
FULL_TENANTS = 120
FULL_CELLS_PER_TENANT = 4
FULL_POOL = 24
FULL_MISSES = 300

#: quick suite (CI-sized): same shape, smaller everything.
QUICK_TENANTS = 24
QUICK_CELLS_PER_TENANT = 3
QUICK_POOL = 8
QUICK_MISSES = 120


def _build_pool(size: int, misses: int) -> List[Cell]:
    config = dataclasses.replace(default_config(scale=0.25), cores=2)
    pool: List[Cell] = []
    seed: Optional[int] = None
    while len(pool) < size:
        for scheme in POOL_SCHEMES:
            for workload in POOL_WORKLOADS:
                if len(pool) == size:
                    return pool
                pool.append(Cell(scheme, workload, config,
                                 misses_per_core=misses, seed=seed))
        seed = (seed or 0) + 1  # past the grid: vary the trace seed
    return pool


def _plan(pool: List[Cell], tenants: int,
          cells_per_tenant: int) -> List[List[Cell]]:
    rng = random.Random(SERVICE_BENCH_SEED)
    return [
        [pool[rng.randrange(len(pool))] for _ in range(cells_per_tenant)]
        for _ in range(tenants)
    ]


async def _drive(port: int, sweeps: List[List[Cell]]) -> List:
    async def one(tenant_id: int, cells: List[Cell]):
        async with SweepClient("127.0.0.1", port) as client:
            return await client.run(cells, tenant=f"bench-{tenant_id}")

    return await asyncio.gather(
        *[one(i, cells) for i, cells in enumerate(sweeps)])


def run_service_bench(quick: bool = False,
                      jobs: Optional[int] = None) -> Dict:
    """Run both phases; returns the ``service`` BENCH section."""
    tenants = QUICK_TENANTS if quick else FULL_TENANTS
    per_tenant = (QUICK_CELLS_PER_TENANT if quick
                  else FULL_CELLS_PER_TENANT)
    pool_size = QUICK_POOL if quick else FULL_POOL
    misses = QUICK_MISSES if quick else FULL_MISSES

    pool = _build_pool(pool_size, misses)
    sweeps = _plan(pool, tenants, per_tenant)
    submitted = sum(len(cells) for cells in sweeps)
    unique_keys = {cell.key() for cells in sweeps for cell in cells}

    async def go():
        with tempfile.TemporaryDirectory(
                prefix="service-bench-cache-") as tmp:
            async with SweepService(jobs=jobs, cache_dir=tmp,
                                    telemetry_interval=0) as service:
                start = time.perf_counter()
                cold = await _drive(service.port, sweeps)
                cold_wall = time.perf_counter() - start
                start = time.perf_counter()
                hot = await _drive(service.port, sweeps)
                hot_wall = time.perf_counter() - start
                async with SweepClient("127.0.0.1",
                                       service.port) as client:
                    stats = await client.stats()
                return cold, cold_wall, hot, hot_wall, stats

    cold, cold_wall, hot, hot_wall, stats = asyncio.run(go())

    by_source = stats["cells"]["by_source"]
    fanned_out = all(outcome.ok and len(outcome.results) == len(sweep)
                     for phase in (cold, hot)
                     for outcome, sweep in zip(phase, sweeps))
    exactly_once = (stats["max_executions_per_key"] <= 1
                    and stats["unique_simulated"] == len(unique_keys))
    conserved = (stats["cells"]["completed"] == sum(by_source.values())
                 == 2 * submitted)
    latency = stats["cache_hit_latency"]
    return {
        "seed": SERVICE_BENCH_SEED,
        "tenants": tenants,
        "cells_per_tenant": per_tenant,
        "unique_cells": len(unique_keys),
        "total_cell_requests": 2 * submitted,
        "misses_per_core": misses,
        "cold": {
            "wall_seconds": round(cold_wall, 4),
            "cells_per_sec": (round(submitted / cold_wall, 1)
                              if cold_wall else 0.0),
        },
        "hot": {
            "wall_seconds": round(hot_wall, 4),
            "cells_per_sec": (round(submitted / hot_wall, 1)
                              if hot_wall else 0.0),
        },
        "simulated": by_source["simulated"],
        "dedup_hits": by_source["dedup"],
        "cache_hits": by_source["cache"],
        "dedup_hit_rate": stats["dedup_hit_rate"],
        "cache_hit_latency_ms": {
            "p50": latency["p50_ms"],
            "p95": latency["p95_ms"],
        },
        "max_executions_per_key": stats["max_executions_per_key"],
        "exactly_once": exactly_once,
        "fanned_out": fanned_out,
        "conserved": conserved,
    }
