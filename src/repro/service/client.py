"""Client for the sweep service: async core plus a sync facade.

:class:`SweepClient` speaks the newline-delimited JSON protocol over
one connection.  Responses and streamed events share the socket; the
client demultiplexes by buffering whatever arrives while a caller waits
for a specific message type, so you can poll ``stats`` mid-stream
without losing ``cell`` events.

The blocking helpers (:func:`run_sweep`, :func:`wait_for_service`) wrap
the async client in ``asyncio.run`` for the CLI, the load generator,
and scripts that just want a dict of results back.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.executor import Cell
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    read_message,
    submit_request,
)


class ServiceError(RuntimeError):
    """The service answered with an error, or the stream broke."""


@dataclass
class SweepOutcome:
    """Everything one submitted sweep produced."""

    job_id: str
    status: str
    #: canonical ``RunResult`` dicts by submit position.
    results: Dict[int, Dict] = field(default_factory=dict)
    #: worker tracebacks by submit position (failed cells only).
    errors: Dict[int, str] = field(default_factory=dict)
    #: ``cache`` / ``simulated`` / ``dedup`` by submit position.
    sources: Dict[int, str] = field(default_factory=dict)
    #: cell intake -> event emission, milliseconds, by submit position.
    latencies_ms: Dict[int, float] = field(default_factory=dict)
    #: the job's final progress snapshot from ``job_done``.
    progress: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "completed" and not self.errors


class SweepClient:
    """One connection to a running sweep service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._buffered: List[Dict] = []

    async def connect(self) -> "SweepClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "SweepClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------
    async def send(self, message: Dict) -> None:
        if self._writer is None:
            raise ServiceError("not connected")
        self._writer.write(encode(message))
        await self._writer.drain()

    async def recv(self) -> Dict:
        """Next message: buffered first, then the stream."""
        if self._buffered:
            return self._buffered.pop(0)
        if self._reader is None:
            raise ServiceError("not connected")
        message = await read_message(self._reader)
        if message is None:
            raise ServiceError("service closed the connection")
        return message

    async def recv_type(self, *types: str) -> Dict:
        """Next message of one of ``types``; everything else that
        arrives meanwhile is buffered for later :meth:`recv` calls.
        An ``error`` response raises :class:`ServiceError`."""
        skipped: List[Dict] = []
        try:
            while True:
                message = await self.recv()
                if message["type"] in types:
                    return message
                if message["type"] == "error":
                    raise ServiceError(message.get("message", "error"))
                skipped.append(message)
        finally:
            self._buffered = skipped + self._buffered

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    async def ping(self) -> Dict:
        await self.send({"type": "ping"})
        return await self.recv_type("pong")

    async def stats(self) -> Dict:
        await self.send({"type": "stats"})
        return await self.recv_type("stats")

    async def metrics(self) -> Dict:
        """Fetch the service's Prometheus text exposition over the
        NDJSON socket (``exposition`` + ``content_type``)."""
        await self.send({"type": "metrics"})
        return await self.recv_type("metrics")

    async def status(self, job_id: str) -> Dict:
        await self.send({"type": "status", "job_id": job_id})
        return await self.recv_type("job_status")

    async def cancel(self, job_id: str) -> Dict:
        await self.send({"type": "cancel", "job_id": job_id})
        return await self.recv_type("cancelled")

    async def watch(self) -> Dict:
        await self.send({"type": "watch"})
        return await self.recv_type("watching")

    async def shutdown(self) -> Dict:
        await self.send({"type": "shutdown"})
        return await self.recv_type("shutting_down")

    async def submit(self, cells: List[Cell],
                     tenant: Optional[str] = None,
                     trace: Optional[Dict] = None) -> str:
        """Submit a sweep; returns the job id once accepted.
        ``trace`` (optional ``{trace_id, span_id}``) stitches the job
        into a caller-owned fleet trace."""
        await self.send(submit_request(cells, tenant=tenant, trace=trace))
        ack = await self.recv_type("job")
        return ack["job_id"]

    async def run(self, cells: List[Cell], tenant: Optional[str] = None,
                  on_event: Optional[Callable[[Dict], None]] = None,
                  trace: Optional[Dict] = None,
                  ) -> SweepOutcome:
        """Submit and stream until ``job_done``; returns the outcome.

        ``on_event`` (if given) sees every streamed message for this
        connection — cell completions, telemetry windows, errors — in
        arrival order.
        """
        job_id = await self.submit(cells, tenant=tenant, trace=trace)
        outcome = SweepOutcome(job_id=job_id, status="running")
        while True:
            message = await self.recv()
            if on_event is not None:
                on_event(message)
            kind = message["type"]
            if kind == "cell" and message["job_id"] == job_id:
                outcome.results[message["index"]] = message["result"]
                outcome.sources[message["index"]] = message["source"]
                outcome.latencies_ms[message["index"]] = \
                    message["latency_ms"]
            elif kind == "cell_error" and message["job_id"] == job_id:
                outcome.errors[message["index"]] = message["error"]
            elif kind == "job_done" and message["job_id"] == job_id:
                outcome.status = message["status"]
                outcome.progress = message["progress"]
                return outcome
            elif kind == "error":
                raise ServiceError(message.get("message", "error"))


# ----------------------------------------------------------------------
# blocking facade (CLI / scripts)
# ----------------------------------------------------------------------
def run_sweep(host: str, port: int, cells: List[Cell],
              tenant: Optional[str] = None,
              on_event: Optional[Callable[[Dict], None]] = None,
              ) -> SweepOutcome:
    """Connect, submit, stream to completion, disconnect — blocking."""

    async def _go() -> SweepOutcome:
        async with SweepClient(host, port) as client:
            return await client.run(cells, tenant=tenant,
                                    on_event=on_event)

    return asyncio.run(_go())


def wait_for_service(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll until the service answers a ping (or the timeout expires)."""

    async def _ping_once() -> bool:
        try:
            async with SweepClient(host, port) as client:
                await asyncio.wait_for(client.ping(), timeout=2.0)
            return True
        except (OSError, ServiceError, ProtocolError,
                asyncio.TimeoutError):
            return False

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if asyncio.run(_ping_once()):
            return True
        time.sleep(0.05)
    return False
