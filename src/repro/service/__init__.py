"""Sharded sweep service: the experiment executor as a multi-tenant backend.

The one-shot CLI path (:class:`repro.experiments.ExperimentExecutor`)
and this package share one :class:`repro.experiments.ExecutorCore` —
one content-hash key scheme, one on-disk :class:`ResultCache`, one
canonical ``RunResult`` JSON representation.  On top of that core the
service adds what a long-running, many-client backend needs:

* a **job manager** (:mod:`repro.service.jobs`): submit / status /
  cancel, with per-job progress derived from the executor's
  :class:`~repro.experiments.executor.Progress` machinery,
* **single-flight dedup**: identical cells requested by different
  tenants while one is in flight execute **exactly once**, and the
  result fans out to every waiter,
* an **event stream**: newline-delimited JSON over asyncio streams
  carrying per-cell completion events and windowed telemetry snapshots
  (:mod:`repro.service.protocol` documents the wire format), and
* a **worker-process pool** sharding simulated cells across CPUs, with
  per-cell failure isolation — a poisoned cell fails only itself, is
  reported on its job's stream, and never touches other tenants.

See ``docs/service.md`` for the architecture and ``scripts/loadgen.py``
for a load generator replaying hundreds of concurrent sweeps.
"""

from repro.service.client import (
    ServiceError,
    SweepClient,
    SweepOutcome,
    run_sweep,
    wait_for_service,
)
from repro.service.jobs import Job, JobManager
from repro.service.protocol import (
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.service import ServiceStats, SweepService

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobManager",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceError",
    "ServiceStats",
    "SweepClient",
    "SweepOutcome",
    "SweepService",
    "run_sweep",
    "wait_for_service",
]
