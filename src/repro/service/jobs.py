"""Job bookkeeping for the sweep service.

A *job* is one tenant's submit: an ordered list of cells, a
:class:`~repro.experiments.executor.Progress` (the same accounting
object the CLI executor ticks), a lifecycle status, and a handle on the
asyncio task fanning its cells out.  The :class:`JobManager` owns the
id space and the service-lifetime job counters.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.executor import Cell, Progress

#: job lifecycle states.
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"  # every cell delivered
FAILED = "failed"        # at least one cell errored; the rest delivered
CANCELLED = "cancelled"

TERMINAL = frozenset({COMPLETED, FAILED, CANCELLED})


@dataclass
class Job:
    """One tenant's sweep submission."""

    id: str
    tenant: str
    cells: List[Cell]
    #: executor cache key per cell, parallel to :attr:`cells`.
    keys: List[str]
    progress: Progress
    status: str = PENDING
    cancelled: bool = False
    created_at: float = field(default_factory=time.monotonic)
    #: the asyncio task running the job (set by the service).
    task: Optional[object] = None

    def snapshot(self) -> Dict:
        """JSON-serialisable status view (``job_status`` / ``job_done``)."""
        return {
            "job_id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "progress": self.progress.as_dict(),
        }


class JobManager:
    """Id allocation, lookup, and lifetime counters for jobs."""

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    def create(self, cells: List[Cell], tenant: Optional[str]) -> Job:
        job = Job(
            id=f"job-{next(self._ids)}",
            tenant=tenant or "anonymous",
            cells=list(cells),
            keys=[cell.key() for cell in cells],
            progress=Progress(total=len(cells)),
        )
        self.jobs[job.id] = job
        self.submitted += 1
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def finish(self, job: Job, status: str) -> None:
        """Move a job to a terminal state (idempotent)."""
        if job.status in TERMINAL:
            return
        job.status = status
        if status == COMPLETED:
            self.completed += 1
        elif status == FAILED:
            self.failed += 1
        elif status == CANCELLED:
            self.cancelled += 1

    @property
    def active(self) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.status not in TERMINAL)

    def counters(self) -> Dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "active": self.active,
        }
