"""Job bookkeeping for the sweep service.

A *job* is one tenant's submit: an ordered list of cells, a
:class:`~repro.experiments.executor.Progress` (the same accounting
object the CLI executor ticks), a lifecycle status, and a handle on the
asyncio task fanning its cells out.  The :class:`JobManager` owns the
id space and the service-lifetime job counters.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.executor import Cell, Progress

#: job lifecycle states.
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"  # every cell delivered
FAILED = "failed"        # at least one cell errored; the rest delivered
CANCELLED = "cancelled"

TERMINAL = frozenset({COMPLETED, FAILED, CANCELLED})


@dataclass
class Job:
    """One tenant's sweep submission."""

    id: str
    tenant: str
    cells: List[Cell]
    #: executor cache key per cell, parallel to :attr:`cells`.
    keys: List[str]
    progress: Progress
    status: str = PENDING
    cancelled: bool = False
    created_at: float = field(default_factory=time.monotonic)
    #: wall-clock twin of :attr:`created_at`, comparable across
    #: processes — the fleet-trace journal records wall times only.
    created_wall: float = field(default_factory=time.time)
    #: the asyncio task running the job (set by the service).
    task: Optional[object] = None
    #: trace context: the fleet trace this job belongs to, this job's
    #: own span, and the client-supplied parent span (if any).
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def snapshot(self) -> Dict:
        """JSON-serialisable status view (``job_status`` / ``job_done``)."""
        return {
            "job_id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "progress": self.progress.as_dict(),
        }


class JobManager:
    """Id allocation, lookup, and lifetime counters for jobs.

    ``on_transition`` (if given) fires exactly once per lifecycle edge
    with ``(job, event)`` where ``event`` is ``submitted`` or the
    terminal status — the single choke point the service's job metrics
    and structured job logs hang off, so counter and log can never
    double-count a transition.
    """

    def __init__(self, on_transition: Optional[
            Callable[[Job, str], None]] = None) -> None:
        self.jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self._on_transition = on_transition

    def _notify(self, job: Job, event: str) -> None:
        if self._on_transition is not None:
            self._on_transition(job, event)

    def create(self, cells: List[Cell], tenant: Optional[str],
               trace: Optional[Dict] = None) -> Job:
        """``trace`` (optional): client-supplied ``{trace_id, span_id}``
        this job should stitch under; a fresh trace is minted when
        absent, so every job always belongs to exactly one fleet
        trace."""
        from repro.obs.trace import new_span_id, new_trace_id

        trace = trace or {}
        job = Job(
            id=f"job-{next(self._ids)}",
            tenant=tenant or "anonymous",
            cells=list(cells),
            keys=[cell.key() for cell in cells],
            progress=Progress(total=len(cells)),
            trace_id=trace.get("trace_id") or new_trace_id(),
            span_id=new_span_id(),
            parent_id=trace.get("span_id"),
        )
        self.jobs[job.id] = job
        self.submitted += 1
        self._notify(job, "submitted")
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def finish(self, job: Job, status: str) -> None:
        """Move a job to a terminal state (idempotent)."""
        if job.status in TERMINAL:
            return
        job.status = status
        if status == COMPLETED:
            self.completed += 1
        elif status == FAILED:
            self.failed += 1
        elif status == CANCELLED:
            self.cancelled += 1
        self._notify(job, status)

    @property
    def active(self) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.status not in TERMINAL)

    def counters(self) -> Dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "active": self.active,
        }
