"""Wire protocol for the sweep service: newline-delimited JSON.

One JSON object per line, UTF-8, ``\\n``-terminated, in both
directions.  Requests carry a ``type`` and may carry a client-chosen
``req_id`` that the direct response echoes, so a client can interleave
control traffic with a streaming job.

Client -> server request types
------------------------------

=========  ==============================================================
type       payload
=========  ==============================================================
submit     ``cells``: list of :meth:`Cell.to_dict` dicts; optional
           ``tenant`` label.  Ack: ``job``; then per-cell ``cell`` /
           ``cell_error`` events stream back, closed by ``job_done``.
status     ``job_id``.  Response: ``job_status`` with the job's
           progress snapshot.
cancel     ``job_id``.  Response: ``cancelled`` (or ``error``).
           Cells not yet finished stop streaming; cells another tenant
           also waits on keep executing for that tenant.
stats      Response: ``stats`` — service-lifetime counters, dedup and
           cache-hit figures, latency percentiles.
metrics    Response: ``metrics`` — the service's Prometheus text
           exposition (the same bytes ``GET /metrics`` serves), for
           clients that cannot reach the HTTP listener.
watch      Subscribe this connection to windowed ``telemetry``
           snapshots.  Response: ``watching``.
ping       Response: ``pong`` (carries the protocol version).
shutdown   Ask the service to stop gracefully.  Response:
           ``shutting_down``.
=========  ==============================================================

Server -> client message types
------------------------------

``job``          submit accepted: ``job_id``, ``cells`` (count), echoes
                 ``req_id``.
``cell``         one cell finished for your job: ``job_id``, ``index``
                 (position in your submit), ``key`` (executor cache
                 key), ``source`` (``cache`` | ``simulated`` |
                 ``dedup``), ``latency_ms`` (submit-receipt to event),
                 and the full ``result`` — the *same* canonical
                 ``RunResult`` dict a solo CLI run produces,
                 byte-identical.
``cell_error``   the cell's worker raised: ``index``, ``key``,
                 ``error`` (formatted traceback).  Only this cell
                 failed; the rest of the job streams on.
``job_done``     terminal: ``status`` (``completed`` | ``failed`` |
                 ``cancelled``) and the job's final progress snapshot.
``job_status``   response to ``status``.
``telemetry``    windowed snapshot for watchers and active submitters:
                 per-window completion/dedup/simulation deltas and
                 cells/sec, plus service totals.
``stats``        response to ``stats``.
``metrics``      response to ``metrics``: ``exposition`` (Prometheus
                 text format 0.0.4) and its ``content_type``.
``error``        a request could not be honoured; echoes ``req_id``
                 when the request carried one.

A ``submit`` may carry a ``trace`` object (``trace_id``, ``span_id``)
to stitch the job into a caller-owned fleet trace; the service mints a
fresh ``trace_id`` per job otherwise.

``source`` semantics: ``cache`` = served from the shared result store
(memo or disk) with no simulation; ``simulated`` = this request
executed the cell on the worker pool; ``dedup`` = another tenant's
identical in-flight cell was joined single-flight and its result fanned
out — the cell ran **exactly once** service-wide either way.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, List, Optional

from repro.experiments.executor import Cell

#: bump on any incompatible wire change; ``pong`` and ``stats`` carry it.
PROTOCOL_VERSION = 1

#: default listen port for ``python -m repro serve`` and its clients.
DEFAULT_PORT = 7316

#: stream-reader line limit.  A submit line carries the full
#: ``SystemConfig`` of every cell, so hundreds of cells per request
#: need megabytes, not the asyncio default of 64 KiB.
MAX_LINE_BYTES = 32 * 1024 * 1024

#: request types the server accepts.
REQUEST_TYPES = frozenset(
    {"submit", "status", "cancel", "stats", "metrics", "watch", "ping",
     "shutdown"})


class ProtocolError(ValueError):
    """A malformed line, oversized message, or unknown request type."""


def encode(message: Dict) -> bytes:
    """One wire line: canonical JSON + newline.  Deterministic key
    order keeps the stream diffable and the tests byte-stable."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


async def read_message(reader: asyncio.StreamReader,
                       on_bytes: Optional[Callable[[int], None]] = None,
                       ) -> Optional[Dict]:
    """Read one message; ``None`` at EOF.  Blank lines are skipped.
    ``on_bytes`` (if given) sees the raw byte count of every line read
    — the service's ingress byte counter."""
    while True:
        try:
            line = await reader.readline()
        except asyncio.LimitOverrunError as exc:
            raise ProtocolError(f"message exceeds line limit: {exc}")
        except ValueError as exc:
            raise ProtocolError(f"unreadable message: {exc}")
        if not line:
            return None
        if on_bytes is not None:
            on_bytes(len(line))
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"invalid JSON: {exc}")
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError("message must be an object with a 'type'")
        return message


def validate_request(message: Dict) -> str:
    """Check a client request's shape; returns its type."""
    kind = message.get("type")
    if kind not in REQUEST_TYPES:
        raise ProtocolError(f"unknown request type: {kind!r}")
    if kind in ("status", "cancel") and not isinstance(
            message.get("job_id"), str):
        raise ProtocolError(f"{kind} requires a string job_id")
    if kind == "submit":
        cells = message.get("cells")
        if not isinstance(cells, list) or not cells:
            raise ProtocolError("submit requires a non-empty cells list")
    return kind


def submit_request(cells: List[Cell], tenant: Optional[str] = None,
                   req_id: Optional[str] = None,
                   trace: Optional[Dict] = None) -> Dict:
    """Build a submit message from executor cells."""
    message: Dict = {"type": "submit",
                     "cells": [cell.to_dict() for cell in cells]}
    if tenant is not None:
        message["tenant"] = tenant
    if req_id is not None:
        message["req_id"] = req_id
    if trace is not None:
        message["trace"] = trace
    return message


def cells_from_submit(message: Dict) -> List[Cell]:
    """Rebuild executor cells from a submit message.  The round trip
    preserves each cell's content-hash key exactly, so a service-side
    cell shares cache entries with its CLI twin."""
    try:
        return [Cell.from_dict(data) for data in message["cells"]]
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"undecodable cell in submit: {exc!r}")
