"""The asyncio sweep service: many tenants, one executor core.

``SweepService`` listens on a localhost TCP port for newline-delimited
JSON requests (:mod:`repro.service.protocol`), shards simulated cells
across a ``ProcessPoolExecutor``, and streams per-cell completion
events back to each submitting connection as they land.

Layering::

    connection handler      one reader loop + one writer queue per client
        |
    job manager             submit/status/cancel, per-job Progress
        |
    single-flight table     key -> in-flight future; identical cells from
        |                   any tenant attach as waiters, execute ONCE
    ExecutorCore            memo + on-disk ResultCache shared with the CLI
        |
    worker process pool     execute_cell_payload — the same entry point
                            the one-shot executor's pool uses

Everything above the pool runs on the event loop, so the single-flight
table and all counters mutate without locks; disk I/O (cache load /
store) is pushed to a thread so a cold cache directory never stalls the
event stream.

Failure isolation: a cell whose worker raises rejects only its own
in-flight future.  The owning job (and any deduped waiter jobs) get a
``cell_error`` event for that cell and keep streaming their remaining
cells; other jobs never notice.  Failed keys are *not* memoised, so a
later resubmission retries them.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from collections import Counter, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.cpu.system import RunResult
from repro.experiments.executor import (
    Cell,
    ExecutorCore,
    execute_cell_payload,
)
from repro.obs import log as obslog
from repro.obs import metrics as obsmetrics
from repro.obs.trace import (
    FleetTraceJournal,
    execute_cell_payload_traced,
    new_span_id,
    new_trace_id,
)
from repro.service import jobs as jobstate
from repro.service.jobs import Job, JobManager
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    cells_from_submit,
    encode,
    read_message,
    validate_request,
)

#: default windowed-telemetry emission interval, seconds.
DEFAULT_TELEMETRY_INTERVAL = 1.0

#: cache-hit latency samples kept for the percentile snapshot.
LATENCY_SAMPLES = 4096

_log = obslog.get_logger("repro.service")


class ServiceMetrics:
    """The service's Prometheus registry.

    Counters mirror :class:`ServiceStats` (which stays the wire-level
    ``stats`` source of truth); gauges collect live from the service at
    scrape time.  The exposition's conservation law matches the stats
    one::

        repro_cells_completed_total summed over sources
            == sum of {cache, simulated, dedup}

    and ``repro_unique_simulations_total`` is the exactly-once witness.
    """

    def __init__(self, service: "SweepService") -> None:
        reg = obsmetrics.MetricsRegistry()
        self.registry = reg
        self.jobs = reg.counter(
            "repro_jobs_total",
            "Job lifecycle transitions by state "
            "(submitted/completed/failed/cancelled).",
            labelnames=("state",))
        self.cells_requested = reg.counter(
            "repro_cells_requested_total",
            "Cells received in submit requests.")
        self.cells_completed = reg.counter(
            "repro_cells_completed_total",
            "Successful cell events by source.",
            labelnames=("source",))
        self.cell_errors = reg.counter(
            "repro_cell_errors_total",
            "Cell events that failed on the worker pool "
            "(includes deduped waiters of a failed key).")
        self.protocol_errors = reg.counter(
            "repro_protocol_errors_total",
            "Client requests the service could not honour.",
            labelnames=("kind",))
        self.unique_simulations = reg.counter(
            "repro_unique_simulations_total",
            "Distinct keys executed on the worker pool — the "
            "exactly-once witness.")
        self.ndjson_bytes = reg.counter(
            "repro_ndjson_bytes_total",
            "NDJSON wire bytes by direction.",
            labelnames=("direction",))
        self.cache_hit_latency = reg.histogram(
            "repro_cache_hit_latency_seconds",
            "Cell intake to event emission for cache-served cells.")
        self.cells_per_second = reg.gauge(
            "repro_cells_per_second",
            "Completed cells per second over the last telemetry window.")
        reg.gauge(
            "repro_inflight_keys",
            "Single-flight keys currently executing (queue depth).",
        ).set_function(lambda: len(service._inflight))
        reg.gauge(
            "repro_active_jobs", "Jobs not yet in a terminal state.",
        ).set_function(lambda: service.manager.active)
        reg.gauge(
            "repro_connections", "Open client connections.",
        ).set_function(lambda: len(service._connections))
        reg.gauge(
            "repro_worker_pool_size", "Configured worker processes.",
        ).set_function(lambda: float(service.jobs))
        reg.gauge(
            "repro_worker_pool_busy",
            "Cells currently executing on the worker pool.",
        ).set_function(lambda: float(service._pool_busy))
        reg.gauge(
            "repro_worker_pool_utilization",
            "Busy workers over configured workers, 0..1.",
        ).set_function(
            lambda: service._pool_busy / service.jobs if service.jobs
            else 0.0)


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


class CellExecutionError(RuntimeError):
    """A cell's worker raised; carries the formatted traceback."""


@dataclass
class ServiceStats:
    """Service-lifetime counters, all mutated on the event loop.

    The conservation law the load generator and CI smoke assert::

        cells_completed == source_cache + source_simulated + source_dedup

    and exactly-once execution::

        max(executions_by_key.values()) <= 1
    """

    started_at: float = field(default_factory=time.monotonic)
    cells_requested: int = 0
    cells_completed: int = 0
    cells_failed: int = 0
    #: successful cell events by source.
    source_cache: int = 0
    source_simulated: int = 0
    source_dedup: int = 0
    #: distinct keys actually executed on the worker pool (successes).
    unique_simulated: int = 0
    #: failed pool executions (by event, incl. deduped waiters).
    failed_keys: int = 0
    #: successful pool executions per key — the exactly-once witness.
    executions_by_key: Counter = field(default_factory=Counter)
    #: seconds from cell intake to event emission for cache-served cells.
    cache_hit_latencies: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_SAMPLES))

    def record_cache_hit(self, seconds: float) -> None:
        self.source_cache += 1
        self.cache_hit_latencies.append(seconds)

    @property
    def dedup_hit_rate(self) -> float:
        if not self.cells_completed:
            return 0.0
        return self.source_dedup / self.cells_completed

    @property
    def max_executions_per_key(self) -> int:
        return max(self.executions_by_key.values(), default=0)

    def latency_snapshot(self) -> Dict:
        samples = list(self.cache_hit_latencies)
        if not samples:
            return {"count": 0, "p50_ms": None, "p95_ms": None,
                    "max_ms": None}
        return {
            "count": len(samples),
            "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
            "p95_ms": round(_percentile(samples, 0.95) * 1e3, 3),
            "max_ms": round(max(samples) * 1e3, 3),
        }

    def snapshot(self) -> Dict:
        return {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "cells": {
                "requested": self.cells_requested,
                "completed": self.cells_completed,
                "failed": self.cells_failed,
                "by_source": {
                    "cache": self.source_cache,
                    "simulated": self.source_simulated,
                    "dedup": self.source_dedup,
                },
            },
            "unique_simulated": self.unique_simulated,
            "max_executions_per_key": self.max_executions_per_key,
            "dedup_hit_rate": round(self.dedup_hit_rate, 4),
            "cache_hit_latency": self.latency_snapshot(),
        }


class _Inflight:
    """Single-flight record for one executor key."""

    __slots__ = ("future", "owner_job", "waiters")

    def __init__(self, future: asyncio.Future, owner_job: str) -> None:
        self.future = future
        self.owner_job = owner_job
        self.waiters = 1


class _Connection:
    """One client: a writer queue drained by a dedicated task, so job
    fan-out, telemetry, and request responses never interleave bytes."""

    __slots__ = ("writer", "queue", "closed", "watching", "active_jobs",
                 "_drainer", "_on_bytes")
    _SENTINEL = object()

    def __init__(self, writer: asyncio.StreamWriter,
                 on_bytes=None) -> None:
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.closed = False
        self.watching = False
        self.active_jobs = 0
        self._on_bytes = on_bytes
        self._drainer = asyncio.ensure_future(self._drain())

    def send(self, message: Dict) -> None:
        if not self.closed:
            data = encode(message)
            if self._on_bytes is not None:
                self._on_bytes(len(data))
            self.queue.put_nowait(data)

    async def _drain(self) -> None:
        while True:
            item = await self.queue.get()
            if item is self._SENTINEL:
                break
            if self.closed:
                continue
            try:
                self.writer.write(item)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closed = True

    async def close(self) -> None:
        self.queue.put_nowait(self._SENTINEL)
        try:
            await self._drainer
        except asyncio.CancelledError:
            pass
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class SweepService:
    """Long-running multi-tenant sweep backend over the executor core.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` picks an ephemeral port, available
        as :attr:`port` after :meth:`start`.
    jobs:
        Worker processes for simulated cells (default ``os.cpu_count()``).
    cache_dir:
        Shared on-disk result store (``None`` = memo only).  Point the
        service and the CLI at the same directory and they serve each
        other's results.
    force:
        Ignore pre-existing on-disk entries (work done by *this*
        service instance stays memoised either way).
    telemetry_interval:
        Seconds between windowed ``telemetry`` events (0 disables).
    metrics_port:
        Start an HTTP observability listener (``/metrics`` Prometheus
        exposition + ``/healthz``) on this port (0 = ephemeral, exposed
        as :attr:`metrics_http_port`; ``None`` disables).
    trace_dir:
        Write a fleet-trace journal plus per-cell worker span files
        under this directory; ``repro trace --service <dir>`` stitches
        them into one Perfetto trace (``None`` disables tracing).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 force: bool = False,
                 telemetry_interval: float = DEFAULT_TELEMETRY_INTERVAL,
                 metrics_port: Optional[int] = None,
                 trace_dir: Optional[str] = None,
                 ) -> None:
        import os

        self.host = host
        self._requested_port = port
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if telemetry_interval < 0:
            raise ValueError("telemetry_interval must be >= 0")
        self.core = ExecutorCore(cache_dir=cache_dir, force=force)
        self.manager = JobManager(on_transition=self._on_job_transition)
        self.stats = ServiceStats()
        self.telemetry_interval = telemetry_interval
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_busy = 0
        self._inflight: Dict[str, _Inflight] = {}
        self._connections: Set[_Connection] = set()
        self._telemetry_task: Optional[asyncio.Task] = None
        self._telemetry_seq = 0
        self._last_window: Optional[Dict] = None
        self._shutdown = asyncio.Event()
        self.metrics = ServiceMetrics(self)
        self._metrics_port = metrics_port
        self.metrics_http_port: Optional[int] = None
        self._http = None
        self.journal: Optional[FleetTraceJournal] = (
            FleetTraceJournal(trace_dir) if trace_dir is not None else None)

    def _on_job_transition(self, job: Job, event: str) -> None:
        """Single choke point for job lifecycle metrics, logs, and the
        fleet-trace journal — fired by the :class:`JobManager`."""
        self.metrics.jobs.inc(state=event)
        log = _log.bind(tenant=job.tenant, job=job.id)
        if event == "submitted":
            log.info("job_created", cells=len(job.cells),
                     trace_id=job.trace_id)
            return
        log.info("job_finished", status=event,
                 completed=job.progress.completed,
                 failed=job.progress.failed)
        if self.journal is not None:
            self.journal.record(
                kind="job", job_id=job.id, tenant=job.tenant,
                trace_id=job.trace_id, span_id=job.span_id,
                parent_id=job.parent_id, status=event,
                cells=len(job.cells), t0=job.created_wall,
                t1=time.time())

    def _record_cache_hit(self, start: float) -> None:
        seconds = time.monotonic() - start
        self.stats.record_cache_hit(seconds)
        self.metrics.cache_hit_latency.observe(seconds)

    def _healthz(self) -> Dict:
        return {
            "ok": True,
            "port": self.port,
            "jobs": self.manager.counters(),
            "cells_completed": self.stats.cells_completed,
            "inflight": len(self._inflight),
            "connections": len(self._connections),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.telemetry_interval > 0:
            self._telemetry_task = asyncio.ensure_future(
                self._telemetry_loop())
        if self._metrics_port is not None:
            from repro.obs.http import ObsHTTPServer

            self._http = ObsHTTPServer(
                self.metrics.registry, healthz=self._healthz,
                host=self.host, port=self._metrics_port)
            await self._http.start()
            self.metrics_http_port = self._http.port
        _log.info("service_started", host=self.host, port=self.port,
                  workers=self.jobs,
                  metrics_port=self.metrics_http_port,
                  trace_dir=(str(self.journal.root)
                             if self.journal else None))

    async def stop(self) -> None:
        """Graceful stop: refuse new connections, cancel active jobs,
        tear down the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            try:
                await self._telemetry_task
            except asyncio.CancelledError:
                pass
            self._telemetry_task = None
        job_tasks = [job.task for job in self.manager.jobs.values()
                     if job.task is not None and not job.task.done()]
        for job in list(self.manager.jobs.values()):
            self._cancel_job(job)
        # let the cancelled job tasks run their job_done emission
        if job_tasks:
            await asyncio.gather(*job_tasks, return_exceptions=True)
        for entry in list(self._inflight.values()):
            if not entry.future.done():
                entry.future.cancel()
        self._inflight.clear()
        for connection in list(self._connections):
            await connection.close()
        self._connections.clear()
        if self._http is not None:
            await self._http.stop()
            self._http = None
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await asyncio.to_thread(pool.shutdown, True)
        if self.journal is not None:
            self.journal.close()
        _log.info("service_stopped",
                  cells_completed=self.stats.cells_completed,
                  cells_failed=self.stats.cells_failed)

    async def __aenter__(self) -> "SweepService":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    async def run_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or cancellation)."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = _Connection(
            writer,
            on_bytes=lambda n: self.metrics.ndjson_bytes.inc(
                n, direction="out"))
        self._connections.add(connection)
        peer = writer.get_extra_info("peername")
        _log.debug("connection_opened", peer=repr(peer))
        try:
            while True:
                try:
                    message = await read_message(
                        reader,
                        on_bytes=lambda n: self.metrics.ndjson_bytes.inc(
                            n, direction="in"))
                except ProtocolError as exc:
                    self.metrics.protocol_errors.inc(kind="malformed")
                    _log.warning("malformed_request", peer=repr(peer),
                                 error=str(exc))
                    connection.send({"type": "error", "message": str(exc)})
                    break
                if message is None:
                    break
                await self._handle_request(connection, message)
        finally:
            self._connections.discard(connection)
            await connection.close()
            _log.debug("connection_closed", peer=repr(peer))

    async def _handle_request(self, connection: _Connection,
                              message: Dict) -> None:
        req_id = message.get("req_id")

        def fail(text: str, kind: str = "rejected") -> None:
            self.metrics.protocol_errors.inc(kind=kind)
            _log.warning("request_rejected",
                         request=message.get("type"), reason=text)
            error: Dict = {"type": "error", "message": text}
            if req_id is not None:
                error["req_id"] = req_id
            connection.send(error)

        try:
            kind = validate_request(message)
        except ProtocolError as exc:
            fail(str(exc), kind="malformed")
            return

        if kind == "ping":
            connection.send({"type": "pong", "protocol": PROTOCOL_VERSION,
                             **({"req_id": req_id} if req_id else {})})
        elif kind == "watch":
            connection.watching = True
            connection.send({"type": "watching",
                             "interval_seconds": self.telemetry_interval})
        elif kind == "stats":
            payload = {"type": "stats", "protocol": PROTOCOL_VERSION,
                       "jobs": self.manager.counters(),
                       "inflight": len(self._inflight),
                       **self.stats.snapshot()}
            if req_id is not None:
                payload["req_id"] = req_id
            connection.send(payload)
        elif kind == "metrics":
            payload = {"type": "metrics",
                       "content_type": obsmetrics.CONTENT_TYPE,
                       "exposition": self.metrics.registry.render()}
            if req_id is not None:
                payload["req_id"] = req_id
            connection.send(payload)
        elif kind == "status":
            job = self.manager.get(message["job_id"])
            if job is None:
                fail(f"unknown job: {message['job_id']}")
            else:
                connection.send({"type": "job_status", **job.snapshot()})
        elif kind == "cancel":
            job = self.manager.get(message["job_id"])
            if job is None:
                fail(f"unknown job: {message['job_id']}")
            elif self._cancel_job(job):
                connection.send({"type": "cancelled", "job_id": job.id})
            else:
                fail(f"job already {job.status}: {job.id}")
        elif kind == "shutdown":
            connection.send({"type": "shutting_down"})
            self._shutdown.set()
        elif kind == "submit":
            try:
                cells = cells_from_submit(message)
            except ProtocolError as exc:
                fail(str(exc), kind="malformed")
                return
            trace = message.get("trace")
            job = self.manager.create(
                cells, message.get("tenant"),
                trace=trace if isinstance(trace, dict) else None)
            self.stats.cells_requested += len(cells)
            self.metrics.cells_requested.inc(len(cells))
            ack: Dict = {"type": "job", "job_id": job.id,
                         "cells": len(cells)}
            if req_id is not None:
                ack["req_id"] = req_id
            connection.send(ack)
            connection.active_jobs += 1
            job.status = jobstate.RUNNING
            job.task = asyncio.ensure_future(self._run_job(job, connection))

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job, connection: _Connection) -> None:
        cell_tasks = [
            asyncio.ensure_future(self._run_cell(job, connection, index))
            for index in range(len(job.cells))
        ]
        status = jobstate.COMPLETED
        try:
            await asyncio.gather(*cell_tasks)
            status = (jobstate.FAILED if job.progress.failed
                      else jobstate.COMPLETED)
        except asyncio.CancelledError:
            for task in cell_tasks:
                task.cancel()
            await asyncio.gather(*cell_tasks, return_exceptions=True)
            status = jobstate.CANCELLED
        except Exception:
            # defensive: _run_cell handles its own errors; anything that
            # escapes is a service bug, reported as a failed job rather
            # than a silently wedged one
            status = jobstate.FAILED
            connection.send({"type": "error", "job_id": job.id,
                             "message": traceback.format_exc()})
        finally:
            self.manager.finish(job, status)
            connection.active_jobs = max(0, connection.active_jobs - 1)
            connection.send({"type": "job_done", **job.snapshot()})

    async def _run_cell(self, job: Job, connection: _Connection,
                        index: int) -> None:
        if job.cancelled:
            return
        cell = job.cells[index]
        key = job.keys[index]
        start = time.monotonic()

        # memo fast path: results this service already holds in memory
        # are served synchronously — no pool, no disk, no future
        memoised = self.core.peek(key)
        if memoised is not None:
            self._record_cache_hit(start)
            self._deliver(job, connection, index, key, "cache",
                          memoised.to_dict(), start)
            return

        entry = self._inflight.get(key)
        if entry is None:
            entry = _Inflight(asyncio.get_running_loop().create_future(),
                              owner_job=job.id)
            self._inflight[key] = entry
            asyncio.ensure_future(self._execute_key(cell, key, entry))
            owner = True
        else:
            entry.waiters += 1
            owner = False

        try:
            # shield: cancelling one waiter's job must not cancel the
            # shared future other tenants are attached to
            source, result_dict = await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if job.cancelled:
                return
            job.progress.completed += 1
            job.progress.failed += 1
            self.stats.cells_failed += 1
            self.stats.failed_keys += 1
            self.metrics.cell_errors.inc()
            _log.error("cell_error", tenant=job.tenant, job=job.id,
                       index=index, key=key, error=str(exc)[:2000])
            self._journal_cell(job, index, key, "simulated", "error",
                               start)
            connection.send({"type": "cell_error", "job_id": job.id,
                            "index": index, "key": key,
                             "error": str(exc)})
            return

        if job.cancelled:
            return
        if owner:
            if source == "cache":
                self._record_cache_hit(start)
            else:
                self.stats.source_simulated += 1
        else:
            source = "dedup"
            self.stats.source_dedup += 1
        self._deliver(job, connection, index, key, source, result_dict,
                      start)

    def _journal_cell(self, job: Job, index: int, key: str, source: str,
                      status: str, start: float) -> None:
        """Append this cell's span to the fleet-trace journal.  Wall
        t0 is recovered from the monotonic intake stamp so the span
        covers intake-to-emission, not just pool time."""
        if self.journal is None:
            return
        t1 = time.time()
        t0 = t1 - (time.monotonic() - start)
        self.journal.record(
            kind="cell", job_id=job.id, tenant=job.tenant, index=index,
            key=key, source=source, status=status,
            trace_id=job.trace_id, parent_id=job.span_id,
            span_id=new_span_id(), t0=t0, t1=t1)

    def _deliver(self, job: Job, connection: _Connection, index: int,
                 key: str, source: str, result_dict: Dict,
                 start: float) -> None:
        job.progress.completed += 1
        if source == "simulated":
            job.progress.simulated += 1
        else:
            job.progress.cache_hits += 1
        self.stats.cells_completed += 1
        self.metrics.cells_completed.inc(source=source)
        self._journal_cell(job, index, key, source, "ok", start)
        connection.send({
            "type": "cell",
            "job_id": job.id,
            "index": index,
            "key": key,
            "source": source,
            "latency_ms": round((time.monotonic() - start) * 1e3, 3),
            "result": result_dict,
        })

    async def _execute_key(self, cell: Cell, key: str,
                           entry: _Inflight) -> None:
        """Single-flight owner: resolve the key once, for every waiter."""
        try:
            # the disk lookup rides a thread so a cold cache directory
            # (or slow filesystem) never blocks the event loop
            result = await asyncio.to_thread(self.core.lookup, key)
            if result is not None:
                outcome = ("cache", result.to_dict())
            else:
                pool = self._ensure_pool()
                loop = asyncio.get_running_loop()
                self._pool_busy += 1
                try:
                    if self.journal is not None:
                        owner = self.manager.get(entry.owner_job)
                        ctx = {
                            "key": key,
                            "trace_id": (owner.trace_id if owner
                                         else None),
                            "parent_id": (owner.span_id if owner
                                          else None),
                            "spans_dir": str(self.journal.spans_dir),
                        }
                        result_dict, error = await loop.run_in_executor(
                            pool, execute_cell_payload_traced, cell, ctx)
                    else:
                        result_dict, error = await loop.run_in_executor(
                            pool, execute_cell_payload, cell)
                finally:
                    self._pool_busy -= 1
                if error is not None:
                    _log.error("worker_failure", key=key,
                               error=error[:2000])
                    raise CellExecutionError(error)
                self.stats.unique_simulated += 1
                self.stats.executions_by_key[key] += 1
                self.metrics.unique_simulations.inc()
                result = RunResult.from_dict(result_dict)
                await asyncio.to_thread(self.core.remember, key, result,
                                        cell)
                outcome = ("simulated", result_dict)
            if not entry.future.done():
                entry.future.set_result(outcome)
        except CellExecutionError as exc:
            if not entry.future.done():
                entry.future.set_exception(exc)
        except asyncio.CancelledError:
            if not entry.future.done():
                entry.future.cancel()
            raise
        except Exception:
            if not entry.future.done():
                entry.future.set_exception(
                    CellExecutionError(traceback.format_exc()))
        finally:
            # published to memo (or failed): later requests must take
            # the memo path / retry path, not attach to a dead entry
            self._inflight.pop(key, None)

    # ------------------------------------------------------------------
    # cancel / telemetry
    # ------------------------------------------------------------------
    def _cancel_job(self, job: Job) -> bool:
        if job.status in jobstate.TERMINAL:
            return False
        job.cancelled = True
        if job.task is not None:
            job.task.cancel()
        else:
            self.manager.finish(job, jobstate.CANCELLED)
        return True

    async def _telemetry_loop(self) -> None:
        while True:
            await asyncio.sleep(self.telemetry_interval)
            self._emit_telemetry()

    def _emit_telemetry(self) -> None:
        totals = {
            "completed": self.stats.cells_completed,
            "failed": self.stats.cells_failed,
            "cache": self.stats.source_cache,
            "simulated": self.stats.source_simulated,
            "dedup": self.stats.source_dedup,
        }
        last = self._last_window or {key: 0 for key in totals}
        window = {key: totals[key] - last[key] for key in totals}
        self._last_window = totals
        self._telemetry_seq += 1
        self.metrics.cells_per_second.set(
            window["completed"] / self.telemetry_interval
            if self.telemetry_interval else 0.0)
        event = {
            "type": "telemetry",
            "seq": self._telemetry_seq,
            "interval_seconds": self.telemetry_interval,
            "window": {
                **window,
                "cells_per_second": round(
                    window["completed"] / self.telemetry_interval, 3)
                if self.telemetry_interval else 0.0,
            },
            "totals": totals,
            "inflight": len(self._inflight),
            "active_jobs": self.manager.active,
        }
        for connection in self._connections:
            if connection.watching or connection.active_jobs > 0:
                connection.send(event)
