"""Perf-regression bench harness: ``python -m repro bench``.

Runs a pinned (scheme x workload) set through the simulator, timing the
**wall clock** of each cell, and writes a schema-versioned
``BENCH_<date>.json`` so successive checkouts can be compared: a
simulator change that slows the hot path shows up as a drop in
``accesses_per_sec`` long before anyone notices interactive sluggishness,
and a change that shifts the *headline figures of merit* (speedups over
the no-NM baseline) shows up in ``figures_of_merit`` even when all
functional tests still pass.

The workload set is pinned (fixed schemes, workloads, miss counts and
seed) precisely so the numbers are comparable across runs; scale knobs
change the *machine*, not the benchmark definition.  Cells run serially
in-process — parallel workers would share cores and turn wall-clock
timing into noise.

Since schema v3 each cell also carries **request-latency tails**
(``p95_latency``/``p99_latency``, simulation cycles): a second, untimed
run of the same cell with span sampling at rate 1 records every
request's issue-to-retire latency, so a change that quietly lengthens
the tail (a scheduling bug, a lost coalescing opportunity) fails the
regression gate even when throughput and the mean stay flat.  The tails
are deterministic given the pinned seed — the gate threshold is
host-noise-free and tight.  ``--quick`` runs skip the tail pass unless
the config explicitly enables span sampling: the CI-sized suite exists
for throughput, and the untimed pass used to double its runtime.

Since schema v4 each cell is run **twice**, scalar and batched
(``SystemConfig.batch_window = BENCH_BATCH_WINDOW``), both timed.  The
two runs' ``RunResult`` digests must be identical — the bench refuses
to report a speedup for an engine that changed behaviour — and the cell
carries ``batched_wall_seconds``/``batched_accesses_per_sec``/
``batch_speedup`` so the regression gate can hold both engines to their
baselines.

Since schema v6 the payload also carries a ``service`` section: the
multi-tenant sweep service (``python -m repro serve``) driven through a
pinned concurrent load by :func:`repro.service.bench.run_service_bench`
— cold sharded throughput, hot cache-hit latency, dedup hit rate, and
the exactly-once execution witness the gate hard-fails on.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.sim.config import SystemConfig, default_config
from repro.stats.collectors import geometric_mean

#: bump when the BENCH_*.json layout changes.
#: v2: cells gained ``key``/``mshr_entries`` and the suites an
#: MSHR-coalescing variant of the paper scheme.
#: v3: cells gained ``p95_latency``/``p99_latency`` request-latency
#: tails (simulation cycles, from a separate untimed span-sampled run).
#: v4: cells gained a timed batch-engine twin run
#: (``batched_wall_seconds``/``batched_accesses_per_sec``/
#: ``batch_speedup``, digest-checked against the scalar run) and the
#: throughput summary a ``batched_accesses_per_sec`` total; quick runs
#: stopped carrying tails unless span sampling is enabled in the config.
#: v5: the MSHR transaction pipeline became the simulator default after
#: the silc-mshr32 postmortem (docs/architecture.md) — the headline
#: cells now run with the default MSHR file, the old ``silc-mshr32``
#: cell is gone, and a ``silc-compat`` cell (``mshr_entries=0``) keeps
#: the pre-MSHR front door measured so the figures-of-merit gate can
#: assert the default mode dominates it.
#: v6: the payload gained a ``service`` section
#: (:func:`repro.service.bench.run_service_bench`): the sweep service
#: under a pinned multi-tenant load — cold sharded throughput
#: (cells/sec), hot cache-hit throughput and service latency
#: (p50/p95 ms), dedup hit rate, and the exactly-once/conservation
#: correctness witnesses the gate hard-fails on.
#: v7: the payload gained a ``batch_curve`` section — the closed-form
#: window evaluator (:mod:`repro.sim.window`) swept across
#: ``batch_window`` sizes (:data:`BENCH_CURVE_WINDOWS`, window 0 being
#: the scalar reference) over the pinned quick-suite cells, each point
#: digest-checked against the scalar run.  The regression gate treats a
#: missing curve against a v7+ baseline as a failure (pre-v7 baselines
#: skip), so the closed-form column cannot silently drop out of the
#: bench.
BENCH_SCHEMA_VERSION = 7

#: pinned seed — throughput comparisons need identical event streams.
BENCH_SEED = 1234

#: MSHR size for the default-mode bench cells — the simulator default
#: (cores × per-core outstanding misses, the aggregate MLP), pinned
#: here so the benchmark definition stays frozen even if the simulator
#: default moves again.
BENCH_MSHR_ENTRIES = 128

#: telemetry window for the untimed tail-latency companion run.
BENCH_TAIL_WINDOW = 50_000

#: miss-stream window for the batch-engine twin run (v4).  Pinned like
#: the seed: the speedup column is only comparable across checkouts if
#: every run batches the same way.
BENCH_BATCH_WINDOW = 256

#: ``batch_window`` sweep for the v7 speedup curve.  Window 0 is the
#: scalar reference engine (the curve's denominator); the rest exercise
#: the closed-form evaluator at increasing trace-window sizes.  Pinned
#: like everything else: the curve is only comparable across checkouts
#: if every run sweeps the same points.
BENCH_CURVE_WINDOWS = (0, 256, 1024, 4096)

#: suites are (cell key, scheme, mshr_entries) triples; the key names
#: the cell in the JSON and stays stable across schema versions.
#: Full: the paper's main comparison points on three memory-behaviour
#: extremes (latency-bound mcf, low-locality milc, streaming lbm).
FULL_VARIANTS = [
    ("nonm", "nonm", BENCH_MSHR_ENTRIES),
    ("cam", "cam", BENCH_MSHR_ENTRIES),
    ("pom", "pom", BENCH_MSHR_ENTRIES),
    ("silc", "silc", BENCH_MSHR_ENTRIES),
    ("silc-compat", "silc", 0),
]
FULL_WORKLOADS = ["mcf", "milc", "lbm"]
FULL_MISSES = 4000

#: the quick suite (CI-sized): baseline + the paper scheme on one
#: workload, with and without the MSHR front door.
QUICK_VARIANTS = [
    ("nonm", "nonm", BENCH_MSHR_ENTRIES),
    ("silc", "silc", BENCH_MSHR_ENTRIES),
    ("silc-compat", "silc", 0),
]
QUICK_WORKLOADS = ["mcf"]
QUICK_MISSES = 1500


@dataclass
class BenchCell:
    """Timing + headline figures for one (variant, workload) run."""

    key: str
    scheme: str
    mshr_entries: int
    workload: str
    misses_per_core: int
    wall_seconds: float
    accesses: int
    accesses_per_sec: float
    elapsed_cycles: float
    access_rate: float
    #: request-latency tails in simulation cycles, measured by a second
    #: *untimed* run with span sampling at rate 1 (spans off in the timed
    #: run so the throughput numbers stay comparable to older baselines).
    #: Deterministic given the pinned seed, so the regression gate can be
    #: much tighter than the wall-clock one.  ``None`` = histogram
    #: overflow, a pre-v3 baseline, or a quick run with tails disabled.
    p95_latency: Optional[float] = None
    p99_latency: Optional[float] = None
    #: batch-engine twin run (schema v4): same cell with
    #: ``batch_window = BENCH_BATCH_WINDOW``, digest-checked against the
    #: scalar run before its throughput is reported.
    batched_wall_seconds: Optional[float] = None
    batched_accesses_per_sec: Optional[float] = None
    #: scalar wall / batched wall (>1 = the batch engine is faster).
    batch_speedup: Optional[float] = None

    def to_dict(self) -> Dict:
        return dict(self.__dict__)


def run_batch_curve(config: Optional[SystemConfig] = None) -> Dict:
    """The v7 ``batch_window`` speedup curve over the pinned quick-suite
    cells (both quick and full benches run the same curve definition, so
    the points are comparable between them).

    Each swept window re-runs every curve cell; every windowed run's
    ``RunResult`` digest must equal the scalar (window 0) run's — a
    point is only reported for an engine that proved bit-identity at
    that window size.  Returns the ``batch_curve`` payload section.
    """
    import dataclasses

    from repro.experiments.runner import run_one

    config = config or default_config()
    scalar_digests: Dict[tuple, str] = {}
    points = []
    scalar_wall = None
    for window in BENCH_CURVE_WINDOWS:
        start = time.perf_counter()
        for workload in QUICK_WORKLOADS:
            for key, scheme, mshr_entries in QUICK_VARIANTS:
                cell_config = dataclasses.replace(
                    config, mshr_entries=mshr_entries, batch_window=window)
                result = run_one(scheme, workload, cell_config,
                                 misses_per_core=QUICK_MISSES,
                                 seed=BENCH_SEED)
                digest = json.dumps(result.to_dict(), sort_keys=True)
                if window == 0:
                    scalar_digests[(key, workload)] = digest
                elif digest != scalar_digests[(key, workload)]:
                    raise AssertionError(
                        f"closed-form evaluator diverged from scalar on "
                        f"curve cell {key}/{workload} at "
                        f"batch_window={window}; run the equivalence "
                        "suite (tests/integration/"
                        "test_batch_equivalence.py)")
        wall = time.perf_counter() - start
        if window == 0:
            scalar_wall = wall
        points.append({
            "batch_window": window,
            "wall_seconds": round(wall, 4),
            "speedup": round(scalar_wall / wall, 2) if wall else 0.0,
        })
    return {
        "variants": [key for key, _s, _m in QUICK_VARIANTS],
        "workloads": list(QUICK_WORKLOADS),
        "misses_per_core": QUICK_MISSES,
        "points": points,
    }


def run_bench(quick: bool = False,
              config: Optional[SystemConfig] = None,
              today: Optional[str] = None,
              profile_dir: Optional[Union[str, Path]] = None) -> Dict:
    """Run the pinned set; returns the ``BENCH_*.json`` payload.

    ``profile_dir`` (the ``--profile`` flag) additionally captures a
    cProfile of one *untimed* closed-form run per cell, written as
    ``<key>-<workload>.pstats`` side artifacts — outside the
    ``perf_counter`` windows, so the reported throughput stays
    comparable to unprofiled baselines.  Inspect with::

        python -m pstats results/profiles/silc-mcf.pstats
    """
    import dataclasses

    from repro.experiments.runner import run_one

    if profile_dir is not None:
        profile_dir = Path(profile_dir)
        profile_dir.mkdir(parents=True, exist_ok=True)

    variants = QUICK_VARIANTS if quick else FULL_VARIANTS
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    misses = QUICK_MISSES if quick else FULL_MISSES
    config = config or default_config()
    # the tail pass is untimed and doubles a cell's cost; quick runs
    # skip it unless the caller's config explicitly samples spans.
    measure_tails = (not quick) or config.span_sample_rate > 0

    cells: List[BenchCell] = []
    results: Dict[tuple, object] = {}
    for workload in workloads:
        for key, scheme, mshr_entries in variants:
            # always replace: an ``if mshr_entries`` guard would make an
            # explicit 0 (the compat cell) silently inherit the config's
            # nonzero default.
            cell_config = dataclasses.replace(config,
                                              mshr_entries=mshr_entries)
            start = time.perf_counter()
            result = run_one(scheme, workload, cell_config,
                             misses_per_core=misses, seed=BENCH_SEED)
            wall = time.perf_counter() - start
            results[(key, workload)] = result
            accesses = misses * config.cores
            # batch-engine twin (v4): same cell, batched windows.  The
            # digest check makes the speedup claim honest — a batch
            # engine that drifts from the scalar engine has no
            # throughput to report, it has a bug.
            batched_config = dataclasses.replace(
                cell_config, batch_window=BENCH_BATCH_WINDOW)
            start = time.perf_counter()
            batched_result = run_one(scheme, workload, batched_config,
                                     misses_per_core=misses,
                                     seed=BENCH_SEED)
            batched_wall = time.perf_counter() - start
            scalar_digest = json.dumps(result.to_dict(), sort_keys=True)
            batched_digest = json.dumps(batched_result.to_dict(),
                                        sort_keys=True)
            if batched_digest != scalar_digest:
                raise AssertionError(
                    f"batch engine diverged from scalar on bench cell "
                    f"{key}/{workload}; run the equivalence suite "
                    "(tests/integration/test_batch_equivalence.py)")
            if profile_dir is not None:
                # untimed profiled re-run of the closed-form cell, so
                # residual evaluator hotspots are measurable instead of
                # guessed (kept outside the perf_counter windows).
                import cProfile

                profiler = cProfile.Profile()
                profiler.enable()
                run_one(scheme, workload, batched_config,
                        misses_per_core=misses, seed=BENCH_SEED)
                profiler.disable()
                profiler.dump_stats(
                    str(profile_dir / f"{key}-{workload}.pstats"))
            tails = {"p95": None, "p99": None}
            if measure_tails:
                # tail latencies come from a run with span sampling,
                # deliberately outside the perf_counter windows: the
                # timed runs stay span-free so accesses_per_sec is
                # comparable across baselines that predate span tracing.
                tail_config = dataclasses.replace(
                    cell_config, telemetry_window=BENCH_TAIL_WINDOW,
                    span_sample_rate=1)
                tail_result = run_one(scheme, workload, tail_config,
                                      misses_per_core=misses,
                                      seed=BENCH_SEED)
                tails = tail_result.telemetry["spans"]["latency"]
            cells.append(BenchCell(
                key=key,
                scheme=scheme,
                mshr_entries=mshr_entries,
                workload=workload,
                misses_per_core=misses,
                wall_seconds=round(wall, 4),
                accesses=accesses,
                accesses_per_sec=round(accesses / wall, 1) if wall else 0.0,
                elapsed_cycles=result.elapsed_cycles,
                access_rate=round(result.access_rate, 4),
                p95_latency=tails["p95"],
                p99_latency=tails["p99"],
                batched_wall_seconds=round(batched_wall, 4),
                batched_accesses_per_sec=(round(accesses / batched_wall, 1)
                                          if batched_wall else 0.0),
                batch_speedup=(round(wall / batched_wall, 2)
                               if batched_wall else 0.0),
            ))

    # headline figures of merit: per-workload speedups over the no-NM
    # baseline, plus each variant's geomean — the numbers Figs. 6/7 plot.
    speedups: Dict[str, Dict[str, float]] = {}
    for key, _scheme, _mshr in variants:
        if key == "nonm":
            continue
        per_wl = {
            wl: round(results[(key, wl)].speedup_over(
                results[("nonm", wl)]), 4)
            for wl in workloads
        }
        per_wl["geomean"] = round(geometric_mean(list(per_wl.values())), 4)
        speedups[key] = per_wl

    # v6: the sweep service under a pinned concurrent multi-tenant load
    # (its own tiny cell pool — the simulator cells above stay the
    # wall-clock-comparable definition they have always been).
    from repro.service.bench import run_service_bench

    service = run_service_bench(quick=quick)

    # v7: the closed-form evaluator's batch_window speedup curve (same
    # pinned definition for quick and full runs).
    batch_curve = run_batch_curve(config)

    total_wall = sum(c.wall_seconds for c in cells)
    total_batched_wall = sum(c.batched_wall_seconds for c in cells)
    total_accesses = sum(c.accesses for c in cells)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "date": today or time.strftime("%Y-%m-%d"),
        "quick": quick,
        "seed": BENCH_SEED,
        "batch_window": BENCH_BATCH_WINDOW,
        "platform": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "cells": [c.to_dict() for c in cells],
        "throughput": {
            "total_wall_seconds": round(total_wall, 4),
            "total_accesses": total_accesses,
            "accesses_per_sec": (round(total_accesses / total_wall, 1)
                                 if total_wall else 0.0),
            "batched_wall_seconds": round(total_batched_wall, 4),
            "batched_accesses_per_sec": (
                round(total_accesses / total_batched_wall, 1)
                if total_batched_wall else 0.0),
            "batch_speedup": (round(total_wall / total_batched_wall, 2)
                              if total_batched_wall else 0.0),
        },
        "figures_of_merit": {"speedup_over_nonm": speedups},
        "service": service,
        "batch_curve": batch_curve,
    }


def write_bench(payload: Dict,
                out_dir: Union[str, Path] = "results") -> Path:
    """Write ``BENCH_<date>.json`` (one file per calendar day; a rerun
    the same day overwrites — the latest numbers win)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{payload['date']}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
