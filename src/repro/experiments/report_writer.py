"""EXPERIMENTS.md generator: paper-vs-measured for every artefact.

``write_experiments_report`` runs the full grid once (or reuses a
caller-provided :class:`SuiteRunner`) and renders a markdown report with
one section per paper table/figure, so the repository's recorded numbers
are always regenerable from a single entry point::

    python -c "from repro.experiments.report_writer import main; main()"
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.executor import ExperimentExecutor, Progress
from repro.experiments.figures import FIG6_LABELS, FIG6_STAGES, FIG7_SCHEMES
from repro.experiments.runner import SCHEMES, SuiteRunner
from repro.sim.config import SystemConfig, default_config
from repro.stats.collectors import geometric_mean
from repro.workloads.spec import BENCHMARKS

#: paper-reported reference values used in the comparison columns
PAPER = {
    "fig6_swap_only": 1.55,
    "fig6_total": 1.82,
    "fig7_silc_vs_best": 1.36,
    "fig8_silc_share": 0.76,
    "fig8_hma_share": 0.71,
    "fig8_pom_share": 0.58,
    "fig9_silc": {16: 1.83, 8: None, 4: 2.04},
    "fig9_best_other": {16: 1.47, 8: None, 4: 1.76},
    "edp_vs_best": 0.87,
}


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def write_experiments_report(path: Union[str, Path],
                             runner: Optional[SuiteRunner] = None,
                             config: Optional[SystemConfig] = None,
                             misses_per_core: int = 8_000,
                             fig9_misses: Optional[int] = None,
                             fig9_workloads: Optional[List[str]] = None,
                             executor: Optional[ExperimentExecutor] = None,
                             jobs: Optional[int] = None,
                             cache_dir: Optional[str] = None,
                             force: bool = False) -> str:
    """Run the evaluation grid and write the markdown report.

    Returns the rendered text (also written to ``path``).  With ``jobs``
    (or a caller-built ``executor``) the full grid fans out over worker
    processes; with ``cache_dir`` completed cells are memoised on disk
    so an interrupted report resumes where it stopped.
    """
    config = config or default_config()
    if runner is None:
        executor = executor or ExperimentExecutor(
            jobs=jobs or 1, cache_dir=cache_dir, force=force)
        runner = SuiteRunner(config, misses_per_core=misses_per_core,
                             executor=executor)
    # fan the whole main grid out in one batch before any section reads
    # individual results (the sections then assemble from the memo)
    main_schemes = list(dict.fromkeys(FIG7_SCHEMES + FIG6_STAGES + ["rand"]))
    runner.prefetch(main_schemes, BENCHMARKS)
    sections: List[str] = []

    sections.append(
        "# EXPERIMENTS — paper vs measured\n\n"
        "All measured numbers come from the scaled simulation described in "
        "DESIGN.md (capacity/bandwidth/footprint *ratios* preserved; "
        "absolute cycle counts are not comparable to the paper's testbed). "
        f"Configuration: NM {config.nm_bytes >> 20} MiB + FM "
        f"{config.fm_bytes >> 20} MiB, {config.cores} cores, "
        f"{misses_per_core} LLC misses/core (20% warmup discarded). "
        "Regenerate with `pytest benchmarks/ --benchmark-only -s` or "
        "`python -c \"from repro.experiments.report_writer import main; "
        "main()\"`.\n")

    # ------------------------------------------------------------ fig 7
    fig7: Dict[str, Dict[str, float]] = {}
    for scheme in FIG7_SCHEMES:
        fig7[scheme] = {wl: runner.speedup(scheme, wl) for wl in BENCHMARKS}
        fig7[scheme]["geomean"] = geometric_mean(
            [fig7[scheme][wl] for wl in BENCHMARKS])
    headers = ["workload"] + [SCHEMES[s].label for s in FIG7_SCHEMES]
    rows = [[wl] + [_fmt(fig7[s][wl]) for s in FIG7_SCHEMES]
            for wl in BENCHMARKS + ["geomean"]]
    silc = fig7["silc"]["geomean"]
    best_other = max(fig7[s]["geomean"] for s in FIG7_SCHEMES if s != "silc")
    sections.append(
        "## Fig. 7 — scheme comparison (speedup over no-NM baseline)\n\n"
        + _md_table(headers, rows)
        + f"\n\nSILC-FM vs best other scheme: **{silc / best_other:.3f}x** "
          f"(paper: {PAPER['fig7_silc_vs_best']:.2f}x).\n")

    # ------------------------------------------------------------ fig 6
    stages = ["rand"] + FIG6_STAGES
    labels = dict(FIG6_LABELS, rand="Random")
    fig6 = {}
    for stage in stages:
        per = {wl: runner.speedup(stage, wl) for wl in BENCHMARKS}
        per["geomean"] = geometric_mean([per[wl] for wl in BENCHMARKS])
        fig6[stage] = per
    rows = []
    previous = None
    for stage in stages:
        geo = fig6[stage]["geomean"]
        delta = "-" if previous is None else f"{(geo / previous - 1) * 100:+.1f}%"
        rows.append([labels[stage], _fmt(geo), delta])
        previous = geo
    sections.append(
        "## Fig. 6 — feature breakdown (geomean speedup)\n\n"
        + _md_table(["stage", "geomean speedup", "delta"], rows)
        + f"\n\nPaper: swap-only ≈ {PAPER['fig6_swap_only']}x over static "
          f"placement with +11%/+8%/+8% from locking/associativity/bypass, "
          f"full stack ≈ {PAPER['fig6_total']}x.\n")

    # ------------------------------------------------------------ fig 8
    rows = []
    for scheme in FIG7_SCHEMES:
        share = sum(runner.result(scheme, wl).access_rate
                    for wl in BENCHMARKS) / len(BENCHMARKS)
        paper_ref = {"silc": PAPER["fig8_silc_share"],
                     "hma": PAPER["fig8_hma_share"],
                     "pom": PAPER["fig8_pom_share"]}.get(scheme, "-")
        rows.append([SCHEMES[scheme].label, _fmt(share), paper_ref])
    sections.append(
        "## Fig. 8 — NM share of demand traffic (ideal 0.8)\n\n"
        + _md_table(["scheme", "measured", "paper"], rows) + "\n")

    # ------------------------------------------------------------ EDP
    rows = []
    for scheme in FIG7_SCHEMES:
        ratios = [runner.result(scheme, wl).edp
                  / runner.result("nonm", wl).edp for wl in BENCHMARKS]
        rows.append([SCHEMES[scheme].label, _fmt(geometric_mean(ratios))])
    sections.append(
        "## §V — EDP normalised to no-NM baseline (lower is better)\n\n"
        + _md_table(["scheme", "geomean EDP ratio"], rows)
        + f"\n\nPaper: SILC-FM at ~{PAPER['edp_vs_best']:.2f}x the best "
          "state-of-the-art scheme's EDP (−13%).\n")

    # ------------------------------------------------------------ fig 9
    fig9_workloads = fig9_workloads or ["xalancbmk", "gcc", "gemsFDTD",
                                        "mcf", "milc", "cactusADM"]
    fig9_misses = fig9_misses or max(2000, misses_per_core // 2)
    fig9_schemes = ["hma", "cam", "camp", "pom", "silc"]
    sweep: Dict[str, Dict[int, float]] = {s: {} for s in fig9_schemes}
    for ratio in (16, 8, 4):
        sub_runner = SuiteRunner(config.with_ratio(ratio),
                                 misses_per_core=fig9_misses,
                                 executor=runner.executor)
        sub_runner.prefetch(fig9_schemes, fig9_workloads)
        for scheme in fig9_schemes:
            sweep[scheme][ratio] = geometric_mean(
                [sub_runner.speedup(scheme, wl) for wl in fig9_workloads])
    rows = [[SCHEMES[s].label] + [_fmt(sweep[s][r]) for r in (16, 8, 4)]
            for s in fig9_schemes]
    sections.append(
        "## Fig. 9 — NM capacity sweep (geomean speedup, subset suite)\n\n"
        + _md_table(["scheme", "NM=1/16", "NM=1/8", "NM=1/4"], rows)
        + f"\n\nPaper: SILC-FM {PAPER['fig9_silc'][16]} → "
          f"{PAPER['fig9_silc'][4]}; best other "
          f"{PAPER['fig9_best_other'][16]} → {PAPER['fig9_best_other'][4]} "
          "over the same sweep.\n")

    sections.append(
        "## Known deviations from the paper\n\n"
        "* **PoM is stronger here than in the paper.**  Our synthetic hot "
        "sets reward its one-time whole-page placement more than the "
        "authors' traces did; SILC-FM still leads, but by a smaller margin "
        "than the paper's +36%.\n"
        "* **Locking is roughly performance-neutral on the geomean** "
        "(paper: +11%).  At simulation scale, fully displacing a native "
        "page costs more relative to the lock's benefit because runs are "
        "too short to amortise the full-block fetch; the locking "
        "machinery itself (thresholds, aging, unlocking, the "
        "all-locked fallback) is implemented and unit-tested per the "
        "paper.\n"
        "* **Associativity's gain is small and workload-dependent** "
        "(paper: +8% average).  Higher associativity buys a higher access "
        "rate but spreads the NM-resident set over more DRAM rows at "
        "scaled capacities (see DESIGN.md 5b on row-size scaling).\n"
        "* **HMA's absolute level depends on the scaled epoch economics** "
        "(DESIGN.md 5b); its qualitative behaviour — fully associative "
        "placement wins on stable hot sets, epoch lag loses on churn — "
        "matches the paper.\n"
        "* **CAMEO+prefetch overshoots the NM bandwidth share** exactly as "
        "the paper's Fig. 8 describes; on some workloads that costs it "
        "performance relative to plain CAMEO.\n")
    text = "\n".join(sections)
    Path(path).write_text(text)
    return text


def print_progress(progress: Progress) -> None:
    """Default ``on_progress`` hook: a live one-line ticker on stderr."""
    import sys

    end = "\n" if progress.completed == progress.total else "\r"
    print(f"  {progress.render()}", end=end, file=sys.stderr, flush=True)


def main(jobs: Optional[int] = None,
         cache_dir: Optional[str] = None) -> None:
    """Write EXPERIMENTS.md in the repository root (parallel across all
    cores by default, resuming from ``results/cache``)."""
    import os

    root = Path(__file__).resolve().parents[3]
    while not (root / "pyproject.toml").exists() and root != root.parent:
        root = root.parent
    target = root / "EXPERIMENTS.md"
    executor = ExperimentExecutor(
        jobs=jobs if jobs is not None else (os.cpu_count() or 1),
        cache_dir=cache_dir if cache_dir is not None
        else str(root / "results" / "cache"),
        on_progress=print_progress)
    write_experiments_report(target, executor=executor)
    print(f"wrote {target}")
