"""Experiment runner: scheme registry + single-run and suite helpers.

Every scheme the paper compares is registered here with its frame-
allocation policy (static schemes differ *only* in allocation policy):

=========  ==========================================================
key        meaning
=========  ==========================================================
nonm       baseline: no die-stacked DRAM (all pages in FM)
alloy      NM as a hardware cache (Alloy-style; FM-only address space)
rand       Random static placement over NM+FM
hma        epoch-based OS migration (HMA)
cam        CAMEO (64 B congruence-group swap)
camp       CAMEO + next-3-line prefetch
pom        PoM (2 KB counter-threshold migration)
silc       full SILC-FM
silc-swap  Fig. 6 stage 1: interleaved subblock swap only (1-way,
           no locking/bypass)
silc-lock  Fig. 6 stage 2: + locking
silc-assoc Fig. 6 stage 3: + 4-way associativity
=========  ==========================================================

(Fig. 6 stage 4, + bypassing, is the full ``silc``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import RunResult, System
from repro.experiments.executor import Cell, ExperimentExecutor
from repro.schemes.base import MemoryScheme
from repro.schemes.alloycache import AlloyCacheScheme
from repro.schemes.cameo import CameoPrefetchScheme, CameoScheme
from repro.schemes.hma import HmaScheme
from repro.schemes.pom import PomScheme
from repro.schemes.static import StaticScheme
from repro.sim.config import SystemConfig
from repro.workloads.spec import BENCHMARKS, per_core_spec
from repro.xmem.address import AddressSpace


@dataclass(frozen=True)
class SchemeSetup:
    """Factory + OS allocation policy for one registered scheme."""

    key: str
    label: str
    factory: Callable[[AddressSpace, SystemConfig], MemoryScheme]
    alloc_policy: str = "interleaved"


def _silc_factory(**feature_overrides):
    def build(space: AddressSpace, config: SystemConfig) -> SilcFmScheme:
        silc_config = config.silcfm
        if feature_overrides:
            import dataclasses

            silc_config = dataclasses.replace(silc_config, **feature_overrides)
        return SilcFmScheme(space, silc_config)

    return build


SCHEMES: Dict[str, SchemeSetup] = {
    "nonm": SchemeSetup(
        "nonm", "No NM baseline", lambda space, cfg: StaticScheme(space),
        alloc_policy="fm_only"),
    "rand": SchemeSetup(
        "rand", "Random static", lambda space, cfg: StaticScheme(space),
        alloc_policy="random"),
    "hma": SchemeSetup(
        "hma", "HMA (epoch OS)", lambda space, cfg: HmaScheme(space)),
    "cam": SchemeSetup(
        "cam", "CAMEO", lambda space, cfg: CameoScheme(space)),
    "camp": SchemeSetup(
        "camp", "CAMEO+prefetch", lambda space, cfg: CameoPrefetchScheme(space)),
    "pom": SchemeSetup(
        "pom", "PoM", lambda space, cfg: PomScheme(space)),
    "silc": SchemeSetup(
        "silc", "SILC-FM", _silc_factory()),
    "silc-swap": SchemeSetup(
        "silc-swap", "SILC-FM swap only",
        _silc_factory(associativity=1, enable_locking=False, enable_bypass=False)),
    "silc-lock": SchemeSetup(
        "silc-lock", "SILC-FM +locking",
        _silc_factory(associativity=1, enable_bypass=False)),
    "silc-assoc": SchemeSetup(
        "silc-assoc", "SILC-FM +associativity",
        _silc_factory(enable_bypass=False)),
    "alloy": SchemeSetup(
        "alloy", "Alloy cache (NM as cache)",
        lambda space, cfg: AlloyCacheScheme(space),
        alloc_policy="fm_only"),
}


def run_one(scheme_key: str, workload_name: str, config: SystemConfig,
            misses_per_core: int = 20_000, seed: Optional[int] = None,
            mode: str = "miss", warmup_fraction: float = 0.2) -> RunResult:
    """Simulate one (scheme, benchmark) pair end to end.

    A fifth of each trace warms the remap structures before measurement
    starts (the paper measures steady-state Simpoint regions).

    With ``config.check_interval > 0`` the run carries the differential
    oracle (:mod:`repro.validate`) and raises ``InvariantViolation`` on
    the first metadata/bijection inconsistency; the executor's result
    cache keys on the whole config, so checked and unchecked runs never
    share cache entries.
    """
    if scheme_key not in SCHEMES:
        raise KeyError(f"unknown scheme {scheme_key!r}; have {sorted(SCHEMES)}")
    setup = SCHEMES[scheme_key]
    workload = per_core_spec(workload_name, config)
    system = System(
        config,
        scheme_factory=setup.factory,
        workload=workload,
        misses_per_core=misses_per_core,
        alloc_policy=setup.alloc_policy,
        mode=mode,
        seed=seed,
        warmup_fraction=warmup_fraction,
    )
    result = system.run()
    result.scheme_name = scheme_key
    return result


class SuiteRunner:
    """Runs (scheme x workload) grids through the experiment executor.

    Every simulation is submitted as an executor :class:`Cell`, so the
    grid inherits the executor's parallelism (``jobs``) and on-disk
    result cache for free; without an explicit executor it falls back to
    a private in-process one (``jobs=1``, no persistence) and behaves
    exactly like the old serial runner.  Use :meth:`prefetch` to fan a
    whole grid out before reading individual results.
    """

    def __init__(self, config: SystemConfig, misses_per_core: int = 20_000,
                 seed: Optional[int] = None,
                 executor: Optional[ExperimentExecutor] = None) -> None:
        self.config = config
        self.misses_per_core = misses_per_core
        self.seed = seed
        self.executor = executor or ExperimentExecutor(jobs=1)
        self._cache: Dict[Tuple[str, str], RunResult] = {}

    def _cell(self, scheme_key: str, workload_name: str) -> Cell:
        if scheme_key not in SCHEMES:
            raise KeyError(
                f"unknown scheme {scheme_key!r}; have {sorted(SCHEMES)}")
        return Cell(
            scheme_key=scheme_key,
            workload_name=workload_name,
            config=self.config,
            misses_per_core=self.misses_per_core,
            seed=self.seed,
        )

    def prefetch(self, scheme_keys: Iterable[str],
                 workload_names: Optional[List[str]] = None,
                 include_baseline: bool = True) -> None:
        """Submit the whole (scheme x workload) grid in one executor
        batch so cells run in parallel; subsequent :meth:`result` /
        :meth:`speedup` calls are memo lookups.  The ``nonm`` baseline
        every speedup normalises against rides along by default."""
        workload_names = workload_names or BENCHMARKS
        keys = list(scheme_keys)
        if include_baseline and "nonm" not in keys:
            keys.append("nonm")
        cells = [self._cell(s, wl) for s in keys for wl in workload_names]
        for cell, result in self.executor.run_cells(cells).items():
            self._cache[(cell.scheme_key, cell.workload_name)] = result

    def result(self, scheme_key: str, workload_name: str) -> RunResult:
        key = (scheme_key, workload_name)
        if key not in self._cache:
            self._cache[key] = self.executor.run_cell(
                self._cell(scheme_key, workload_name))
        return self._cache[key]

    def speedup(self, scheme_key: str, workload_name: str) -> float:
        """Speedup over the no-NM baseline (the paper's normalisation)."""
        baseline = self.result("nonm", workload_name)
        return self.result(scheme_key, workload_name).speedup_over(baseline)

    def grid(self, scheme_keys: Iterable[str],
             workload_names: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
        """{scheme -> {workload -> speedup-over-baseline}}."""
        workload_names = workload_names or BENCHMARKS
        scheme_keys = list(scheme_keys)
        self.prefetch(scheme_keys, workload_names)
        return {
            key: {name: self.speedup(key, name) for name in workload_names}
            for key in scheme_keys
        }
