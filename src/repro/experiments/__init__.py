"""Experiment harness: scheme registry, suite runner, and one function
per paper table/figure."""

from repro.experiments.executor import (
    Cell,
    CellFailure,
    ExecutorCore,
    ExecutorError,
    ExperimentExecutor,
    Progress,
    ResultCache,
    execute_cell_payload,
)
from repro.experiments.figures import (
    FIG6_LABELS,
    FIG6_STAGES,
    FIG7_SCHEMES,
    edp_comparison,
    fig6_breakdown,
    fig7_comparison,
    fig8_bandwidth_split,
    fig9_capacity_sweep,
    table3_measured,
)
from repro.experiments.mixes import MIXES, mix_specs, mix_speedups, run_mix
from repro.experiments.runner import SCHEMES, SchemeSetup, SuiteRunner, run_one
from repro.experiments.sweeps import (
    capacity_transform,
    mlp_transform,
    sweep_silcfm,
    sweep_system,
)

__all__ = [
    "Cell",
    "CellFailure",
    "ExecutorCore",
    "ExecutorError",
    "execute_cell_payload",
    "ExperimentExecutor",
    "Progress",
    "ResultCache",
    "FIG6_LABELS",
    "FIG6_STAGES",
    "FIG7_SCHEMES",
    "MIXES",
    "SCHEMES",
    "SchemeSetup",
    "SuiteRunner",
    "edp_comparison",
    "fig6_breakdown",
    "fig7_comparison",
    "fig8_bandwidth_split",
    "fig9_capacity_sweep",
    "mix_specs",
    "mix_speedups",
    "capacity_transform",
    "mlp_transform",
    "run_mix",
    "run_one",
    "sweep_silcfm",
    "sweep_system",
    "table3_measured",
]
