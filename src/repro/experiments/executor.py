"""Parallel, resumable experiment execution.

Reproducing Figs. 6-9 means sweeping ~11 schemes across the Table III
workloads — hundreds of independent (scheme, workload, config) *cells*
that the runner previously replayed serially and from scratch.  This
module turns each cell into a unit of work that is

* **parallel** — cells fan out over a ``multiprocessing`` pool
  (``jobs=N``, default ``os.cpu_count()``); the simulation is
  deterministic per cell, so ``jobs=1`` and ``jobs=N`` produce
  bit-identical :class:`RunResult`\\ s, and

* **resumable** — each cell is keyed by a stable SHA-256 hash of its
  full :class:`SystemConfig` + scheme key + workload name + trace
  parameters and memoised in an on-disk JSON store
  (``results/cache/<hash>.json``).  Re-running a figure after a crash or
  a code-irrelevant edit skips completed cells; ``force=True``
  invalidates them.

Worker failures are isolated: a cell that raises is collected as a
:class:`CellFailure` (with its traceback) instead of aborting the whole
sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.cpu.system import RunResult
from repro.sim.config import SystemConfig, config_from_dict

#: bump when the cell-hash inputs or the RunResult schema change, so a
#: stale cache from an older code version is never replayed.
CACHE_SCHEMA_VERSION = 1

#: default on-disk result store, relative to the current directory.
DEFAULT_CACHE_DIR = os.path.join("results", "cache")


class ExecutorError(RuntimeError):
    """A cell failed and its result was required."""


@dataclass(frozen=True)
class Cell:
    """One (scheme, workload, config) simulation — the executor's unit
    of work.  Frozen and fully picklable so it can cross process
    boundaries and serve as a dict key."""

    scheme_key: str
    workload_name: str
    config: SystemConfig
    misses_per_core: int = 20_000
    seed: Optional[int] = None
    mode: str = "miss"
    warmup_fraction: float = 0.2

    def key(self) -> str:
        """Stable content hash: identical inputs -> identical key across
        processes and interpreter runs (no reliance on ``hash()``)."""
        config_dict = dataclasses.asdict(self.config)
        if not config_dict.get("span_sample_rate"):
            # span tracing is pure observation and disabled at 0; drop
            # the field so caches populated before it existed keep
            # their keys byte-identical
            config_dict.pop("span_sample_rate", None)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "scheme": self.scheme_key,
            "workload": self.workload_name,
            "config": config_dict,
            "misses_per_core": self.misses_per_core,
            "seed": self.seed,
            "mode": self.mode,
            "warmup_fraction": self.warmup_fraction,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # ------------------------------------------------------------------
    # wire round-trip (the sweep service ships cells as JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """A JSON-serialisable dict that :meth:`from_dict` inverts
        exactly: the rebuilt cell hashes to the same :meth:`key`, so a
        cell submitted over the service's wire protocol hits the same
        cache entry as the local CLI run it duplicates."""
        return {
            "scheme_key": self.scheme_key,
            "workload_name": self.workload_name,
            "config": dataclasses.asdict(self.config),
            "misses_per_core": self.misses_per_core,
            "seed": self.seed,
            "mode": self.mode,
            "warmup_fraction": self.warmup_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Cell":
        return cls(
            scheme_key=data["scheme_key"],
            workload_name=data["workload_name"],
            config=config_from_dict(data["config"]),
            misses_per_core=data["misses_per_core"],
            seed=data["seed"],
            mode=data["mode"],
            warmup_fraction=data["warmup_fraction"],
        )


@dataclass
class CellFailure:
    """A cell whose worker raised; the sweep continues without it."""

    cell: Cell
    key: str
    error: str  # formatted traceback from the worker


@dataclass
class Progress:
    """Live sweep accounting, passed to the ``on_progress`` callback
    after every completed cell."""

    total: int
    completed: int = 0
    cache_hits: int = 0
    simulated: int = 0
    failed: int = 0
    started_at: float = field(default_factory=time.monotonic)

    @property
    def elapsed_seconds(self) -> float:
        return max(0.0, time.monotonic() - self.started_at)

    @property
    def cells_per_second(self) -> float:
        # 0.0, not a division by (almost) zero: the first completion can
        # land within the clock's resolution of started_at, and the old
        # 1e-9 elapsed floor turned that into a billions-of-cells/s rate
        elapsed = self.elapsed_seconds
        if self.completed == 0 or elapsed <= 0.0:
            return 0.0
        return self.completed / elapsed

    def render(self) -> str:
        parts = [f"{self.completed}/{self.total} cells"]
        if self.total:
            parts.append(f"{self.cells_per_second:.2f} cells/s")
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        return ", ".join(parts)

    def as_dict(self) -> Dict:
        """JSON-serialisable snapshot (the sweep service's status and
        completion events carry these)."""
        return {
            "total": self.total,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "failed": self.failed,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "cells_per_second": round(self.cells_per_second, 3),
        }


class ResultCache:
    """On-disk JSON store: one ``<cell-hash>.json`` file per result.

    Files are written atomically (a *uniquely named* temp file in the
    cache directory, then ``os.replace``) so neither a crash mid-write
    nor several processes storing the **same key concurrently** — the
    sweep service's cross-tenant dedup makes that an everyday event —
    can leave a torn or half-written entry: every reader sees either no
    file or one writer's complete bytes.  Unreadable or
    schema-mismatched files are treated as misses.

    Telemetry-enabled results additionally get **side artifacts** —
    ``telemetry/<cell-hash>.series.json`` (the windowed time series) and
    ``telemetry/<cell-hash>.trace.json`` (Chrome trace, loadable in
    Perfetto) — in a subdirectory so the main store's ``*.json`` glob
    semantics are untouched.  The telemetry window is part of the
    config, hence of the cell hash: enabled and disabled runs of the
    same experiment never share a cache entry.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def telemetry_dir(self) -> Path:
        return self.root / "telemetry"

    def load(self, key: str) -> Optional[RunResult]:
        path = self.path(key)
        try:
            with open(path) as fh:
                data = json.load(fh)
            if data.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            return RunResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, key: str, result: RunResult, cell: Optional[Cell] = None) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        data = {
            "schema": CACHE_SCHEMA_VERSION,
            "result": result.to_dict(),
        }
        if cell is not None:
            data["cell"] = {
                "scheme_key": cell.scheme_key,
                "workload_name": cell.workload_name,
                "misses_per_core": cell.misses_per_core,
                "seed": cell.seed,
                "mode": cell.mode,
                "warmup_fraction": cell.warmup_fraction,
            }
        path = self.path(key)
        # the temp name must be unique per writer: a shared
        # ``<key>.json.tmp`` would let two processes racing on one key
        # interleave writes into the same file and publish the torn
        # result with os.replace
        fd, tmp = tempfile.mkstemp(prefix=f".{key}.", suffix=".tmp",
                                   dir=self.root)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(data, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        if result.telemetry is not None:
            from repro.telemetry import run_metadata, write_artifacts

            meta = None
            if cell is not None:
                meta = run_metadata(cell.scheme_key, cell.workload_name,
                                    cell.seed, cell.config,
                                    misses_per_core=cell.misses_per_core,
                                    mode=cell.mode)
            write_artifacts(self.telemetry_dir(), key, result.telemetry,
                            meta=meta)
        return path

    def discard(self, key: str) -> bool:
        for side in (self.telemetry_dir() / f"{key}.series.json",
                     self.telemetry_dir() / f"{key}.trace.json"):
            try:
                os.remove(side)
            except OSError:
                pass
        try:
            os.remove(self.path(key))
            return True
        except OSError:
            return False

    def clear(self) -> int:
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        if self.telemetry_dir().is_dir():
            for path in self.telemetry_dir().glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json")) if self.root.is_dir() else 0


def _execute_cell(cell: Cell) -> RunResult:
    """Simulate one cell (runs inside worker processes)."""
    # local import: runner imports this module for SuiteRunner's executor
    from repro.experiments.runner import run_one

    return run_one(cell.scheme_key, cell.workload_name, cell.config,
                   misses_per_core=cell.misses_per_core, seed=cell.seed,
                   mode=cell.mode, warmup_fraction=cell.warmup_fraction)


def execute_cell_payload(cell: Cell) -> Tuple[Optional[Dict], Optional[str]]:
    """Simulate one cell, returning ``(result_dict, None)`` on success
    or ``(None, traceback)`` on failure.

    The single worker entry point shared by every dispatch path — the
    sync executor's multiprocessing pool and the sweep service's process
    pool — so a cell produces byte-identical JSON no matter which
    front end submitted it.  Shipping the result as its JSON dict means
    the caller deserialises through exactly the same code as a cache
    hit: one canonical representation everywhere.
    """
    from repro.obs import log as _obslog

    # workers under the spawn start method re-import in a fresh
    # interpreter; the parent's CLI logging choice rides the
    # REPRO_LOG_LEVEL / REPRO_LOG_FILE environment
    _obslog.configure_from_env()
    _wlog = _obslog.get_logger("repro.worker")
    _wlog.debug("cell_started", scheme=cell.scheme_key,
                workload=cell.workload_name)
    try:
        result = _execute_cell(cell).to_dict(), None
    except Exception:
        error = traceback.format_exc()
        _wlog.error("cell_failed", scheme=cell.scheme_key,
                    workload=cell.workload_name, error=error[:2000])
        return None, error
    _wlog.debug("cell_finished", scheme=cell.scheme_key,
                workload=cell.workload_name)
    return result


def _worker(payload: Tuple[int, Cell]) -> Tuple[int, Optional[Dict], Optional[str]]:
    """Pool entry point for the sync executor (index-tagged)."""
    index, cell = payload
    result_dict, error = execute_cell_payload(cell)
    return index, result_dict, error


class ExecutorCore:
    """The executor's cache heart, shared by both front ends.

    Holds everything *stateful but dispatch-agnostic* about running
    cells: the on-disk :class:`ResultCache`, the in-memory memo, and
    the force semantics.  :class:`ExperimentExecutor` (the one-shot CLI
    path) layers blocking pool fan-out on top; the asyncio sweep
    service (:mod:`repro.service`) layers a long-running worker pool,
    single-flight dedup and event streaming on top of the *same* core,
    so both populate and consume one cache, one format, one key scheme.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 force: bool = False) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.force = force
        self._memo: Dict[str, RunResult] = {}

    def peek(self, key: str) -> Optional[RunResult]:
        """In-memory memo only — no disk I/O, safe to call from an
        event loop (the sweep service's synchronous fast path)."""
        return self._memo.get(key)

    def lookup(self, key: str) -> Optional[RunResult]:
        """Memoised result for ``key``, or None.  The in-memory memo is
        always valid: force only invalidates *pre-existing* on-disk
        entries, not work this core already did."""
        if key in self._memo:
            return self._memo[key]
        if self.force:
            return None
        if self.cache is not None:
            result = self.cache.load(key)
            if result is not None:
                self._memo[key] = result
            return result
        return None

    def remember(self, key: str, result: RunResult, cell: Cell) -> None:
        """Record a freshly simulated result in memo and (if configured)
        the on-disk store."""
        self._memo[key] = result
        if self.cache is not None:
            self.cache.store(key, result, cell)


class ExperimentExecutor:
    """Fans cells out over worker processes, memoising results on disk.

    Parameters
    ----------
    jobs:
        Worker processes (default ``os.cpu_count()``).  ``jobs=1`` runs
        in-process — handy under pdb and for determinism checks.
    cache_dir:
        Directory of the on-disk result store; ``None`` disables
        persistence (results still memoise in memory for the executor's
        lifetime).
    force:
        Ignore *and overwrite* existing cache entries for submitted
        cells (resume-invalidation after a semantics-relevant edit).
    on_progress:
        Called with a :class:`Progress` after every completed cell.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 force: bool = False,
                 on_progress: Optional[Callable[[Progress], None]] = None) -> None:
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.core = ExecutorCore(cache_dir=cache_dir, force=force)
        self.on_progress = on_progress
        self.failures: List[CellFailure] = []
        self.last_progress: Optional[Progress] = None

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.core.cache

    @property
    def force(self) -> bool:
        return self.core.force

    # ------------------------------------------------------------------
    def run_cells(self, cells: Iterable[Cell]) -> Dict[Cell, RunResult]:
        """Execute every distinct cell, returning ``{cell: result}``.

        Failed cells are absent from the mapping and recorded in
        :attr:`failures`; callers that need a specific cell should use
        :meth:`run_cell`, which raises :class:`ExecutorError`.
        """
        ordered: List[Cell] = []
        seen = set()
        for cell in cells:
            key = cell.key()
            if key not in seen:
                seen.add(key)
                ordered.append(cell)

        progress = Progress(total=len(ordered))
        self.last_progress = progress
        results: Dict[Cell, RunResult] = {}
        pending: List[Tuple[int, Cell, str]] = []

        for index, cell in enumerate(ordered):
            key = cell.key()
            hit = self._lookup(key)
            if hit is not None:
                results[cell] = hit
                progress.completed += 1
                progress.cache_hits += 1
                self._tick(progress)
            else:
                pending.append((index, cell, key))

        if pending:
            by_index = {index: (cell, key) for index, cell, key in pending}
            for index, result_dict, error in self._dispatch(pending):
                cell, key = by_index[index]
                progress.completed += 1
                if error is not None:
                    progress.failed += 1
                    self.failures.append(CellFailure(cell, key, error))
                else:
                    result = RunResult.from_dict(result_dict)
                    self._remember(key, result, cell)
                    results[cell] = result
                    progress.simulated += 1
                self._tick(progress)

        return {cell: results[cell] for cell in ordered if cell in results}

    def run_cell(self, cell: Cell) -> RunResult:
        """Execute (or recall) a single cell; raises on failure."""
        results = self.run_cells([cell])
        if cell not in results:
            failure = next(
                (f for f in self.failures if f.key == cell.key()), None)
            detail = f":\n{failure.error}" if failure else ""
            raise ExecutorError(
                f"cell ({cell.scheme_key}, {cell.workload_name}) failed"
                + detail)
        return results[cell]

    # ------------------------------------------------------------------
    def _dispatch(self, pending: List[Tuple[int, Cell, str]]):
        payloads = [(index, cell) for index, cell, _key in pending]
        jobs = min(self.jobs, len(payloads))
        if jobs <= 1:
            for payload in payloads:
                yield _worker(payload)
            return
        import multiprocessing

        with multiprocessing.Pool(processes=jobs) as pool:
            for outcome in pool.imap_unordered(_worker, payloads):
                yield outcome

    def _lookup(self, key: str) -> Optional[RunResult]:
        return self.core.lookup(key)

    def _remember(self, key: str, result: RunResult, cell: Cell) -> None:
        self.core.remember(key, result, cell)

    def _tick(self, progress: Progress) -> None:
        if self.on_progress is not None:
            self.on_progress(progress)
