"""Multiprogrammed *mixes*: heterogeneous per-core workloads.

The paper evaluates rate mode (16 copies of one benchmark); real
consolidated servers run mixes.  This extension assigns a different
Table III benchmark to each core — footprints are divided as in rate
mode, so the total memory pressure stays comparable — and reuses the
whole scheme/experiment machinery.

Predefined mixes:

* ``mix-high``   — the five high-MPKI benchmarks round-robin: maximum
  bandwidth pressure.
* ``mix-low``    — the four low-MPKI benchmarks: latency-sensitive.
* ``mix-blend``  — one of each class in turn: the consolidation case.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cpu.system import RunResult, System
from repro.experiments.runner import SCHEMES
from repro.sim.config import SystemConfig
from repro.workloads.model import WorkloadSpec
from repro.workloads.spec import HIGH_MPKI, LOW_MPKI, MEDIUM_MPKI, per_core_spec

MIXES: Dict[str, List[str]] = {
    "mix-high": HIGH_MPKI,
    "mix-low": LOW_MPKI,
    "mix-blend": [LOW_MPKI[0], MEDIUM_MPKI[0], HIGH_MPKI[0],
                  LOW_MPKI[1], MEDIUM_MPKI[1], HIGH_MPKI[1]],
}


def mix_specs(mix_name: str, config: SystemConfig) -> List[WorkloadSpec]:
    """One per-core spec per core, cycling through the mix's members."""
    if mix_name not in MIXES:
        raise KeyError(f"unknown mix {mix_name!r}; have {sorted(MIXES)}")
    members = MIXES[mix_name]
    return [
        per_core_spec(members[core % len(members)], config)
        for core in range(config.cores)
    ]


def run_mix(scheme_key: str, mix_name: str, config: SystemConfig,
            misses_per_core: int = 5_000, seed: Optional[int] = None,
            warmup_fraction: float = 0.2) -> RunResult:
    """Simulate one scheme on a heterogeneous mix."""
    if scheme_key not in SCHEMES:
        raise KeyError(f"unknown scheme {scheme_key!r}")
    setup = SCHEMES[scheme_key]
    specs = mix_specs(mix_name, config)
    system = System(
        config,
        scheme_factory=setup.factory,
        workload=specs[0],
        misses_per_core=misses_per_core,
        alloc_policy=setup.alloc_policy,
        seed=seed,
        workload_per_core=specs,
        warmup_fraction=warmup_fraction,
    )
    result = system.run()
    result.scheme_name = scheme_key
    result.workload_name = mix_name
    return result


def mix_speedups(mix_name: str, config: SystemConfig,
                 scheme_keys: Optional[List[str]] = None,
                 misses_per_core: int = 5_000,
                 seed: Optional[int] = None) -> Dict[str, float]:
    """Speedup over the no-NM baseline for each scheme on a mix."""
    scheme_keys = scheme_keys or ["cam", "pom", "silc"]
    baseline = run_mix("nonm", mix_name, config, misses_per_core, seed)
    return {
        key: run_mix(key, mix_name, config, misses_per_core,
                     seed).speedup_over(baseline)
        for key in scheme_keys
    }
