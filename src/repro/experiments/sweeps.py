"""Parameter-sweep tooling: one-dimensional sensitivity studies over any
SILC-FM parameter or system knob.

``sweep_silcfm`` re-runs one workload while varying a single
``SilcFmConfig`` field; ``sweep_system`` does the same for system-level
knobs expressed as config transformers.  Both normalise against a shared
no-NM baseline, so the output is directly plottable as a sensitivity
curve (the ablation benches are thin wrappers over these).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import RunResult, System
from repro.experiments.runner import run_one
from repro.sim.config import SystemConfig
from repro.workloads.spec import per_core_spec


def sweep_silcfm(field: str, values: Sequence, workload: str,
                 config: SystemConfig, misses_per_core: int = 4_000,
                 seed: Optional[int] = None,
                 warmup_fraction: float = 0.2) -> Dict[str, float]:
    """Speedup over the no-NM baseline for each value of one
    ``SilcFmConfig`` field.

    >>> sweep_silcfm("associativity", [1, 2, 4], "gcc", config)  # doctest: +SKIP
    {'1': 1.9, '2': 2.0, '4': 2.1}
    """
    if field not in {f.name for f in dataclasses.fields(config.silcfm)}:
        raise KeyError(f"SilcFmConfig has no field {field!r}")
    baseline = run_one("nonm", workload, config,
                       misses_per_core=misses_per_core, seed=seed)
    results: Dict[str, float] = {}
    for value in values:
        def factory(space, cfg, value=value):
            return SilcFmScheme(
                space, dataclasses.replace(cfg.silcfm, **{field: value}))

        system = System(config, factory, per_core_spec(workload, config),
                        misses_per_core=misses_per_core,
                        alloc_policy="interleaved", seed=seed,
                        warmup_fraction=warmup_fraction)
        results[str(value)] = system.run().speedup_over(baseline)
    return results


def sweep_system(transform: Callable[[SystemConfig, object], SystemConfig],
                 values: Sequence, scheme_key: str, workload: str,
                 config: SystemConfig, misses_per_core: int = 4_000,
                 seed: Optional[int] = None) -> Dict[str, float]:
    """Speedup curve over system-level variations.

    ``transform(config, value)`` produces the varied configuration; each
    point is normalised to its *own* no-NM baseline (so capacity sweeps
    compare like with like).
    """
    results: Dict[str, float] = {}
    for value in values:
        varied = transform(config, value)
        baseline = run_one("nonm", workload, varied,
                           misses_per_core=misses_per_core, seed=seed)
        run = run_one(scheme_key, workload, varied,
                      misses_per_core=misses_per_core, seed=seed)
        results[str(value)] = run.speedup_over(baseline)
    return results


def capacity_transform(config: SystemConfig, ratio: int) -> SystemConfig:
    """The Fig. 9 knob: FM:NM capacity ratio."""
    return config.with_ratio(ratio)


def mlp_transform(config: SystemConfig, window: int) -> SystemConfig:
    """Core memory-level-parallelism window (outstanding misses)."""
    return dataclasses.replace(
        config, core=dataclasses.replace(config.core,
                                         max_outstanding_misses=window))


def sweep_table(results_by_label: Dict[str, Dict[str, float]]) -> List[List]:
    """Arrange several sweeps into table rows for reporting."""
    rows: List[List] = []
    for label, curve in results_by_label.items():
        for x, y in curve.items():
            rows.append([label, x, y])
    return rows
