"""Parameter-sweep tooling: one-dimensional sensitivity studies over any
SILC-FM parameter or system knob.

``sweep_silcfm`` re-runs one workload while varying a single
``SilcFmConfig`` field; ``sweep_system`` does the same for system-level
knobs expressed as config transformers.  Both normalise against a shared
no-NM baseline, so the output is directly plottable as a sensitivity
curve (the ablation benches are thin wrappers over these).

Each sweep point is an independent executor :class:`Cell` — a varied
``SystemConfig`` under a registered scheme key — so the whole curve is
submitted as one batch and inherits the executor's parallel workers and
on-disk result cache.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.executor import Cell, ExperimentExecutor
from repro.sim.config import SystemConfig


def _executor(executor: Optional[ExperimentExecutor],
              jobs: Optional[int]) -> ExperimentExecutor:
    return executor or ExperimentExecutor(jobs=jobs or 1)


def sweep_silcfm(field: str, values: Sequence, workload: str,
                 config: SystemConfig, misses_per_core: int = 4_000,
                 seed: Optional[int] = None,
                 warmup_fraction: float = 0.2,
                 executor: Optional[ExperimentExecutor] = None,
                 jobs: Optional[int] = None) -> Dict[str, float]:
    """Speedup over the no-NM baseline for each value of one
    ``SilcFmConfig`` field.

    >>> sweep_silcfm("associativity", [1, 2, 4], "gcc", config)  # doctest: +SKIP
    {'1': 1.9, '2': 2.0, '4': 2.1}
    """
    if field not in {f.name for f in dataclasses.fields(config.silcfm)}:
        raise KeyError(f"SilcFmConfig has no field {field!r}")
    executor = _executor(executor, jobs)
    baseline_cell = Cell("nonm", workload, config,
                         misses_per_core=misses_per_core, seed=seed,
                         warmup_fraction=warmup_fraction)
    point_cells = {
        str(value): Cell("silc", workload,
                         config.with_silcfm(**{field: value}),
                         misses_per_core=misses_per_core, seed=seed,
                         warmup_fraction=warmup_fraction)
        for value in values
    }
    executor.run_cells([baseline_cell] + list(point_cells.values()))
    baseline = executor.run_cell(baseline_cell)
    return {
        label: executor.run_cell(cell).speedup_over(baseline)
        for label, cell in point_cells.items()
    }


def sweep_system(transform: Callable[[SystemConfig, object], SystemConfig],
                 values: Sequence, scheme_key: str, workload: str,
                 config: SystemConfig, misses_per_core: int = 4_000,
                 seed: Optional[int] = None,
                 executor: Optional[ExperimentExecutor] = None,
                 jobs: Optional[int] = None) -> Dict[str, float]:
    """Speedup curve over system-level variations.

    ``transform(config, value)`` produces the varied configuration; each
    point is normalised to its *own* no-NM baseline (so capacity sweeps
    compare like with like).
    """
    executor = _executor(executor, jobs)
    pairs = {}
    for value in values:
        varied = transform(config, value)
        pairs[str(value)] = (
            Cell("nonm", workload, varied,
                 misses_per_core=misses_per_core, seed=seed),
            Cell(scheme_key, workload, varied,
                 misses_per_core=misses_per_core, seed=seed),
        )
    executor.run_cells([c for pair in pairs.values() for c in pair])
    return {
        label: executor.run_cell(run).speedup_over(executor.run_cell(base))
        for label, (base, run) in pairs.items()
    }


def capacity_transform(config: SystemConfig, ratio: int) -> SystemConfig:
    """The Fig. 9 knob: FM:NM capacity ratio."""
    return config.with_ratio(ratio)


def mlp_transform(config: SystemConfig, window: int) -> SystemConfig:
    """Core memory-level-parallelism window (outstanding misses)."""
    return dataclasses.replace(
        config, core=dataclasses.replace(config.core,
                                         max_outstanding_misses=window))


def sweep_table(results_by_label: Dict[str, Dict[str, float]]) -> List[List]:
    """Arrange several sweeps into table rows for reporting."""
    rows: List[List] = []
    for label, curve in results_by_label.items():
        for x, y in curve.items():
            rows.append([label, x, y])
    return rows
