"""One entry point per paper table/figure (the per-experiment index in
DESIGN.md maps each to its benchmark file).

Each function returns plain data structures (dicts of floats) so the
benches can both print the paper-style table and assert shape
properties; nothing here depends on pytest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cpu.system import RunResult
from repro.experiments.runner import SCHEMES, SuiteRunner, run_one
from repro.sim.config import SystemConfig, default_config
from repro.stats.collectors import geometric_mean
from repro.workloads.spec import BENCHMARKS

#: Fig. 6 stages in paper order: each adds one feature on top of Random.
FIG6_STAGES = ["silc-swap", "silc-lock", "silc-assoc", "silc"]
FIG6_LABELS = {
    "silc-swap": "SILC-FM swap",
    "silc-lock": "+locking",
    "silc-assoc": "+associativity",
    "silc": "+bypassing",
}

#: Fig. 7 comparison schemes in paper order.
FIG7_SCHEMES = ["rand", "hma", "cam", "camp", "pom", "silc"]


def fig6_breakdown(config: Optional[SystemConfig] = None,
                   misses_per_core: int = 12_000,
                   workloads: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig. 6: cumulative feature breakdown.

    Returns {stage -> {workload -> speedup over no-NM baseline}}, plus a
    'rand' row as the stack's floor and a 'geomean' entry per stage.
    """
    runner = SuiteRunner(config or default_config(), misses_per_core)
    workloads = workloads or BENCHMARKS
    out: Dict[str, Dict[str, float]] = {}
    for stage in ["rand"] + FIG6_STAGES:
        per_wl = {wl: runner.speedup(stage, wl) for wl in workloads}
        per_wl["geomean"] = geometric_mean(per_wl.values())
        out[stage] = per_wl
    return out


def fig7_comparison(config: Optional[SystemConfig] = None,
                    misses_per_core: int = 12_000,
                    workloads: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig. 7: speedups of all schemes over the no-NM baseline.

    Returns {scheme -> {workload -> speedup, 'geomean' -> g}}.
    """
    runner = SuiteRunner(config or default_config(), misses_per_core)
    workloads = workloads or BENCHMARKS
    out: Dict[str, Dict[str, float]] = {}
    for scheme in FIG7_SCHEMES:
        per_wl = {wl: runner.speedup(scheme, wl) for wl in workloads}
        per_wl["geomean"] = geometric_mean(per_wl.values())
        out[scheme] = per_wl
    return out


def fig8_bandwidth_split(config: Optional[SystemConfig] = None,
                         misses_per_core: int = 12_000,
                         workloads: Optional[List[str]] = None) -> Dict[str, float]:
    """Fig. 8: mean fraction of *demand* bandwidth served by NM, per
    scheme (migration traffic excluded, as in the paper).  Ideal = 0.8.
    """
    runner = SuiteRunner(config or default_config(), misses_per_core)
    workloads = workloads or BENCHMARKS
    out: Dict[str, float] = {}
    for scheme in FIG7_SCHEMES:
        fractions = [
            runner.result(scheme, wl).nm_demand_fraction for wl in workloads
        ]
        out[scheme] = sum(fractions) / len(fractions)
    return out


def fig9_capacity_sweep(config: Optional[SystemConfig] = None,
                        misses_per_core: int = 12_000,
                        ratios: Optional[List[int]] = None,
                        schemes: Optional[List[str]] = None,
                        workloads: Optional[List[str]] = None) -> Dict[str, Dict[int, float]]:
    """Fig. 9: geomean speedup vs FM:NM capacity ratio (16, 8, 4).

    Returns {scheme -> {ratio -> geomean speedup}}.
    """
    config = config or default_config()
    ratios = ratios or [16, 8, 4]
    schemes = schemes or FIG7_SCHEMES
    workloads = workloads or BENCHMARKS
    out: Dict[str, Dict[int, float]] = {s: {} for s in schemes}
    for ratio in ratios:
        runner = SuiteRunner(config.with_ratio(ratio), misses_per_core)
        for scheme in schemes:
            speedups = [runner.speedup(scheme, wl) for wl in workloads]
            out[scheme][ratio] = geometric_mean(speedups)
    return out


def edp_comparison(config: Optional[SystemConfig] = None,
                   misses_per_core: int = 12_000,
                   workloads: Optional[List[str]] = None) -> Dict[str, float]:
    """Section V energy result: geomean EDP normalised to the no-NM
    baseline, per scheme (lower is better; the paper reports SILC-FM at
    ~13% below the best state-of-the-art scheme)."""
    runner = SuiteRunner(config or default_config(), misses_per_core)
    workloads = workloads or BENCHMARKS
    out: Dict[str, float] = {}
    for scheme in FIG7_SCHEMES:
        ratios = []
        for wl in workloads:
            baseline = runner.result("nonm", wl)
            ratios.append(runner.result(scheme, wl).edp / baseline.edp)
        out[scheme] = geometric_mean(ratios)
    return out


def table3_measured(config: Optional[SystemConfig] = None,
                    misses_per_core: int = 2_000) -> Dict[str, Dict[str, float]]:
    """Table III check: run each benchmark's *reference* stream through
    the real cache hierarchy and report measured LLC MPKI + footprint.
    """
    from repro.cpu.system import System
    from repro.workloads.spec import per_core_spec

    config = config or default_config()
    out: Dict[str, Dict[str, float]] = {}
    for name in BENCHMARKS:
        spec = per_core_spec(name, config)
        system = System(
            config, SCHEMES["nonm"].factory, spec, misses_per_core,
            alloc_policy="fm_only", mode="reference",
        )
        result = system.run()
        instructions = result.total_instructions
        misses = sum(c.misses_issued for c in result.core_stats)
        out[name] = {
            "target_mpki": spec.mpki,
            "measured_mpki": misses / instructions * 1000.0,
            "footprint_pages_per_core": spec.footprint_pages,
            "category": {"low": 0.0, "medium": 1.0, "high": 2.0}[spec.category],
        }
    return out
