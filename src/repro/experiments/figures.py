"""One entry point per paper table/figure (the per-experiment index in
DESIGN.md maps each to its benchmark file).

Each function returns plain data structures (dicts of floats) so the
benches can both print the paper-style table and assert shape
properties; nothing here depends on pytest.

Every function accepts an optional :class:`ExperimentExecutor` (or the
``jobs``/``cache_dir``/``force`` knobs to build one) and submits its
whole (scheme x workload) grid as a single batch, so figures
parallelise over worker processes and resume from the on-disk result
cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.executor import Cell, ExperimentExecutor
from repro.experiments.runner import SuiteRunner
from repro.sim.config import SystemConfig, default_config
from repro.stats.collectors import geometric_mean
from repro.workloads.spec import BENCHMARKS

#: Fig. 6 stages in paper order: each adds one feature on top of Random.
FIG6_STAGES = ["silc-swap", "silc-lock", "silc-assoc", "silc"]
FIG6_LABELS = {
    "silc-swap": "SILC-FM swap",
    "silc-lock": "+locking",
    "silc-assoc": "+associativity",
    "silc": "+bypassing",
}

#: Fig. 7 comparison schemes in paper order.
FIG7_SCHEMES = ["rand", "hma", "cam", "camp", "pom", "silc"]


def _executor(executor: Optional[ExperimentExecutor], jobs: Optional[int],
              cache_dir: Optional[str], force: bool) -> ExperimentExecutor:
    """The figure functions' executor: the caller's, or a private serial
    one (so plain ``fig7_comparison()`` stays dependency-free)."""
    if executor is not None:
        return executor
    return ExperimentExecutor(jobs=jobs or 1, cache_dir=cache_dir, force=force)


def fig6_breakdown(config: Optional[SystemConfig] = None,
                   misses_per_core: int = 12_000,
                   workloads: Optional[List[str]] = None,
                   executor: Optional[ExperimentExecutor] = None,
                   jobs: Optional[int] = None,
                   cache_dir: Optional[str] = None,
                   force: bool = False) -> Dict[str, Dict[str, float]]:
    """Fig. 6: cumulative feature breakdown.

    Returns {stage -> {workload -> speedup over no-NM baseline}}, plus a
    'rand' row as the stack's floor and a 'geomean' entry per stage.
    """
    runner = SuiteRunner(config or default_config(), misses_per_core,
                         executor=_executor(executor, jobs, cache_dir, force))
    workloads = workloads or BENCHMARKS
    stages = ["rand"] + FIG6_STAGES
    runner.prefetch(stages, workloads)
    out: Dict[str, Dict[str, float]] = {}
    for stage in stages:
        per_wl = {wl: runner.speedup(stage, wl) for wl in workloads}
        per_wl["geomean"] = geometric_mean(per_wl.values())
        out[stage] = per_wl
    return out


def fig7_comparison(config: Optional[SystemConfig] = None,
                    misses_per_core: int = 12_000,
                    workloads: Optional[List[str]] = None,
                    executor: Optional[ExperimentExecutor] = None,
                    jobs: Optional[int] = None,
                    cache_dir: Optional[str] = None,
                    force: bool = False) -> Dict[str, Dict[str, float]]:
    """Fig. 7: speedups of all schemes over the no-NM baseline.

    Returns {scheme -> {workload -> speedup, 'geomean' -> g}}.
    """
    runner = SuiteRunner(config or default_config(), misses_per_core,
                         executor=_executor(executor, jobs, cache_dir, force))
    workloads = workloads or BENCHMARKS
    runner.prefetch(FIG7_SCHEMES, workloads)
    out: Dict[str, Dict[str, float]] = {}
    for scheme in FIG7_SCHEMES:
        per_wl = {wl: runner.speedup(scheme, wl) for wl in workloads}
        per_wl["geomean"] = geometric_mean(per_wl.values())
        out[scheme] = per_wl
    return out


def fig8_bandwidth_split(config: Optional[SystemConfig] = None,
                         misses_per_core: int = 12_000,
                         workloads: Optional[List[str]] = None,
                         executor: Optional[ExperimentExecutor] = None,
                         jobs: Optional[int] = None,
                         cache_dir: Optional[str] = None,
                         force: bool = False) -> Dict[str, float]:
    """Fig. 8: mean fraction of *demand* bandwidth served by NM, per
    scheme (migration traffic excluded, as in the paper).  Ideal = 0.8.
    """
    runner = SuiteRunner(config or default_config(), misses_per_core,
                         executor=_executor(executor, jobs, cache_dir, force))
    workloads = workloads or BENCHMARKS
    runner.prefetch(FIG7_SCHEMES, workloads, include_baseline=False)
    out: Dict[str, float] = {}
    for scheme in FIG7_SCHEMES:
        fractions = [
            runner.result(scheme, wl).nm_demand_fraction for wl in workloads
        ]
        out[scheme] = sum(fractions) / len(fractions)
    return out


def fig9_capacity_sweep(config: Optional[SystemConfig] = None,
                        misses_per_core: int = 12_000,
                        ratios: Optional[List[int]] = None,
                        schemes: Optional[List[str]] = None,
                        workloads: Optional[List[str]] = None,
                        executor: Optional[ExperimentExecutor] = None,
                        jobs: Optional[int] = None,
                        cache_dir: Optional[str] = None,
                        force: bool = False) -> Dict[str, Dict[int, float]]:
    """Fig. 9: geomean speedup vs FM:NM capacity ratio (16, 8, 4).

    Returns {scheme -> {ratio -> geomean speedup}}.
    """
    config = config or default_config()
    ratios = ratios or [16, 8, 4]
    schemes = schemes or FIG7_SCHEMES
    workloads = workloads or BENCHMARKS
    executor = _executor(executor, jobs, cache_dir, force)
    # one runner per capacity point, all feeding the same executor so
    # the entire ratio x scheme x workload cube shares one worker pool
    runners = {
        ratio: SuiteRunner(config.with_ratio(ratio), misses_per_core,
                           executor=executor)
        for ratio in ratios
    }
    cells = []
    for runner in runners.values():
        for scheme in list(schemes) + ["nonm"]:
            cells.extend(runner._cell(scheme, wl) for wl in workloads)
    executor.run_cells(cells)
    out: Dict[str, Dict[int, float]] = {s: {} for s in schemes}
    for ratio, runner in runners.items():
        for scheme in schemes:
            speedups = [runner.speedup(scheme, wl) for wl in workloads]
            out[scheme][ratio] = geometric_mean(speedups)
    return out


def edp_comparison(config: Optional[SystemConfig] = None,
                   misses_per_core: int = 12_000,
                   workloads: Optional[List[str]] = None,
                   executor: Optional[ExperimentExecutor] = None,
                   jobs: Optional[int] = None,
                   cache_dir: Optional[str] = None,
                   force: bool = False) -> Dict[str, float]:
    """Section V energy result: geomean EDP normalised to the no-NM
    baseline, per scheme (lower is better; the paper reports SILC-FM at
    ~13% below the best state-of-the-art scheme)."""
    runner = SuiteRunner(config or default_config(), misses_per_core,
                         executor=_executor(executor, jobs, cache_dir, force))
    workloads = workloads or BENCHMARKS
    runner.prefetch(FIG7_SCHEMES, workloads)
    out: Dict[str, float] = {}
    for scheme in FIG7_SCHEMES:
        ratios = []
        for wl in workloads:
            baseline = runner.result("nonm", wl)
            ratios.append(runner.result(scheme, wl).edp / baseline.edp)
        out[scheme] = geometric_mean(ratios)
    return out


def table3_measured(config: Optional[SystemConfig] = None,
                    misses_per_core: int = 2_000,
                    executor: Optional[ExperimentExecutor] = None,
                    jobs: Optional[int] = None,
                    cache_dir: Optional[str] = None,
                    force: bool = False) -> Dict[str, Dict[str, float]]:
    """Table III check: run each benchmark's *reference* stream through
    the real cache hierarchy and report measured LLC MPKI + footprint.
    """
    from repro.workloads.spec import per_core_spec

    config = config or default_config()
    executor = _executor(executor, jobs, cache_dir, force)
    cells = {
        name: Cell("nonm", name, config, misses_per_core=misses_per_core,
                   mode="reference", warmup_fraction=0.0)
        for name in BENCHMARKS
    }
    executor.run_cells(cells.values())
    out: Dict[str, Dict[str, float]] = {}
    for name in BENCHMARKS:
        spec = per_core_spec(name, config)
        result = executor.run_cell(cells[name])
        instructions = result.total_instructions
        misses = sum(c.misses_issued for c in result.core_stats)
        out[name] = {
            "target_mpki": spec.mpki,
            "measured_mpki": misses / instructions * 1000.0,
            "footprint_pages_per_core": spec.footprint_pages,
            "category": {"low": 0.0, "medium": 1.0, "high": 2.0}[spec.category],
        }
    return out
