"""Energy model for the EDP comparison (Section V: SILC-FM reduces
Energy-Delay Product by 13% vs the best state-of-the-art scheme).

Die-stacked DRAM moves bits over short TSVs instead of board traces, so
its access energy per bit is roughly a third of DDR3's; both devices pay
background (standby/refresh) power proportional to time.  Values follow
the literature the paper builds on (HBM ~4 pJ/bit access vs DDR3
~13 pJ/bit; background power scaled to channel counts).

EDP = total energy x execution time; only *relative* EDP matters for the
reproduction (the paper reports a ratio).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Per-device energy characteristics."""

    access_pj_per_bit: float
    background_watts: float


#: die-stacked HBM: cheap bit movement, modest standby for 8 channels.
HBM_ENERGY = EnergyParams(access_pj_per_bit=4.0, background_watts=0.5)
#: off-chip DDR3: board-trace signalling dominates.
DDR3_ENERGY = EnergyParams(access_pj_per_bit=13.0, background_watts=1.0)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent by one simulation run."""

    nm_access_joules: float
    fm_access_joules: float
    nm_background_joules: float
    fm_background_joules: float

    @property
    def total_joules(self) -> float:
        return (self.nm_access_joules + self.fm_access_joules
                + self.nm_background_joules + self.fm_background_joules)


class EnergyModel:
    """Computes energy and EDP from transferred bytes and elapsed time."""

    def __init__(self, nm: EnergyParams = HBM_ENERGY,
                 fm: EnergyParams = DDR3_ENERGY,
                 cpu_ghz: float = 3.2) -> None:
        self.nm = nm
        self.fm = fm
        self.cpu_ghz = cpu_ghz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_ghz * 1e9)

    def breakdown(self, nm_bytes: int, fm_bytes: int,
                  elapsed_cycles: float) -> EnergyBreakdown:
        seconds = self.cycles_to_seconds(elapsed_cycles)
        return EnergyBreakdown(
            nm_access_joules=nm_bytes * 8 * self.nm.access_pj_per_bit * 1e-12,
            fm_access_joules=fm_bytes * 8 * self.fm.access_pj_per_bit * 1e-12,
            nm_background_joules=self.nm.background_watts * seconds,
            fm_background_joules=self.fm.background_watts * seconds,
        )

    def edp(self, nm_bytes: int, fm_bytes: int, elapsed_cycles: float) -> float:
        """Energy-Delay Product in joule-seconds."""
        energy = self.breakdown(nm_bytes, fm_bytes, elapsed_cycles).total_joules
        return energy * self.cycles_to_seconds(elapsed_cycles)
