"""Energy and EDP modelling."""

from repro.energy.model import (
    DDR3_ENERGY,
    HBM_ENERGY,
    EnergyBreakdown,
    EnergyModel,
    EnergyParams,
)

__all__ = ["DDR3_ENERGY", "EnergyBreakdown", "EnergyModel", "EnergyParams",
           "HBM_ENERGY"]
