"""repro — a reproduction of SILC-FM: Subblocked InterLeaved Cache-Like
Flat Memory Organization (Ryoo, Meswani, Prodromou and John, HPCA 2017).

The package simulates a two-level flat (part-of-memory) heterogeneous
memory system — die-stacked HBM "near memory" plus off-chip DDR3 "far
memory" — under seven data-management schemes, including the paper's
subblock-interleaving SILC-FM and the CAMEO / PoM / HMA baselines it is
evaluated against, on a trace-driven 16-core system with an event-driven
DRAM timing model.

Quickstart::

    from repro import default_config, run_one

    config = default_config()
    baseline = run_one("nonm", "mcf", config, misses_per_core=5000)
    silcfm = run_one("silc", "mcf", config, misses_per_core=5000)
    print("speedup:", silcfm.speedup_over(baseline))
    print("NM access rate:", silcfm.access_rate)
"""

from repro.core.silcfm import SilcFmScheme
from repro.cpu.system import RunResult, System
from repro.experiments.runner import SCHEMES, SuiteRunner, run_one
from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import SilcFmConfig, SystemConfig, default_config, paper_config
from repro.workloads.model import WorkloadModel, WorkloadSpec
from repro.workloads.spec import BENCHMARKS
from repro.xmem.address import AddressSpace

__version__ = "1.0.0"

__all__ = [
    "AccessPlan",
    "AddressSpace",
    "BENCHMARKS",
    "Level",
    "MemoryScheme",
    "Op",
    "RunResult",
    "SCHEMES",
    "SilcFmConfig",
    "SilcFmScheme",
    "SuiteRunner",
    "System",
    "SystemConfig",
    "WorkloadModel",
    "WorkloadSpec",
    "default_config",
    "paper_config",
    "run_one",
    "__version__",
]
