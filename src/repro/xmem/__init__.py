"""Flat address space arithmetic and OS-level virtual memory."""

from repro.xmem.address import AddressSpace
from repro.xmem.translation import FrameAllocator, OutOfMemoryError, PageTable

__all__ = ["AddressSpace", "FrameAllocator", "OutOfMemoryError", "PageTable"]
