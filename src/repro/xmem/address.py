"""Flat physical address-space arithmetic.

The paper's convention (Section III): NM occupies the **low** physical
addresses ``[0, nm_bytes)`` and FM the high ones
``[nm_bytes, nm_bytes + fm_bytes)``.  All schemes reason in terms of

* 64 B **subblocks** (the LLC line / swap unit),
* 2 KB **large blocks** (the page / remap unit), and
* **congruence sets**: FM block ``b`` may only occupy NM frames in set
  ``b mod num_sets``.

:class:`AddressSpace` centralises this arithmetic so every scheme and the
property-based tests share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SUBBLOCKS_PER_BLOCK


@dataclass(frozen=True)
class AddressSpace:
    """The two-level flat physical address space."""

    nm_bytes: int
    fm_bytes: int

    def __post_init__(self) -> None:
        if self.nm_bytes <= 0 or self.fm_bytes <= 0:
            raise ValueError("both memory levels must be non-empty")
        if self.nm_bytes % BLOCK_BYTES or self.fm_bytes % BLOCK_BYTES:
            raise ValueError("capacities must be multiples of the 2KB block")

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.nm_bytes + self.fm_bytes

    @property
    def nm_blocks(self) -> int:
        return self.nm_bytes // BLOCK_BYTES

    @property
    def fm_blocks(self) -> int:
        return self.fm_bytes // BLOCK_BYTES

    @property
    def total_blocks(self) -> int:
        return self.total_bytes // BLOCK_BYTES

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        return 0 <= addr < self.total_bytes

    def is_nm(self, addr: int) -> bool:
        """True when ``addr`` belongs to the NM address range."""
        self._check(addr)
        return addr < self.nm_bytes

    def is_fm(self, addr: int) -> bool:
        self._check(addr)
        return addr >= self.nm_bytes

    def _check(self, addr: int) -> None:
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside flat space")

    # ------------------------------------------------------------------
    # block / subblock arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def block_of(addr: int) -> int:
        """Large-block number of an address (global, over NM then FM)."""
        return addr // BLOCK_BYTES

    @staticmethod
    def block_base(block: int) -> int:
        return block * BLOCK_BYTES

    @staticmethod
    def subblock_of(addr: int) -> int:
        """Global subblock number."""
        return addr // SUBBLOCK_BYTES

    @staticmethod
    def subblock_index(addr: int) -> int:
        """Index of the subblock within its large block (0..31) — the bit
        position in the residency bit vector."""
        return (addr % BLOCK_BYTES) // SUBBLOCK_BYTES

    @staticmethod
    def subblock_addr(block: int, index: int) -> int:
        """Physical address of subblock ``index`` of large block ``block``."""
        if not 0 <= index < SUBBLOCKS_PER_BLOCK:
            raise ValueError(f"subblock index {index} out of range")
        return block * BLOCK_BYTES + index * SUBBLOCK_BYTES

    def fm_block_of(self, addr: int) -> int:
        """Block number inside FM (0-based within the FM region)."""
        if not self.is_fm(addr):
            raise ValueError(f"{addr:#x} is not an FM address")
        return (addr - self.nm_bytes) // BLOCK_BYTES

    def nm_block_of(self, addr: int) -> int:
        """Block number inside NM (== the NM frame number it lives in)."""
        if not self.is_nm(addr):
            raise ValueError(f"{addr:#x} is not an NM address")
        return addr // BLOCK_BYTES

    # device-local offsets -------------------------------------------------
    def nm_offset(self, addr: int) -> int:
        """Device-local byte offset within the NM device."""
        if not self.is_nm(addr):
            raise ValueError(f"{addr:#x} is not an NM address")
        return addr

    def fm_offset(self, addr: int) -> int:
        """Device-local byte offset within the FM device."""
        if not self.is_fm(addr):
            raise ValueError(f"{addr:#x} is not an FM address")
        return addr - self.nm_bytes

    # ------------------------------------------------------------------
    # congruence sets
    # ------------------------------------------------------------------
    def num_sets(self, associativity: int) -> int:
        """Number of congruence sets when NM frames are grouped
        ``associativity`` ways."""
        if associativity <= 0 or self.nm_blocks % associativity:
            raise ValueError(
                f"associativity {associativity} does not divide "
                f"{self.nm_blocks} NM frames"
            )
        return self.nm_blocks // associativity

    def set_of_block(self, block: int, associativity: int) -> int:
        """Congruence set of a global block number (paper Section III:
        index = block address mod number of sets)."""
        return block % self.num_sets(associativity)

    def nm_frames_of_set(self, set_index: int, associativity: int) -> list:
        """The NM frame numbers (== NM-resident block numbers) forming
        ``set_index``'s ways."""
        sets = self.num_sets(associativity)
        if not 0 <= set_index < sets:
            raise ValueError(f"set {set_index} out of range")
        return [set_index + way * sets for way in range(associativity)]
