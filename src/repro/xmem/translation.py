"""Virtual-to-physical translation with 2 KB pages.

The paper implements virtual-to-physical translation with a 2 KB page
size and runs 16 single-threaded benchmark instances whose physical
address spaces never overlap (rate mode).  We reproduce that with one
:class:`PageTable` per core/process drawing frames from a shared
:class:`FrameAllocator`.

Frame-allocation policy is what distinguishes the *static* placement
schemes:

* ``interleaved`` — pages striped over the whole flat space (NM+FM) in
  proportion to capacity; the OS-oblivious default under hardware
  migration schemes.
* ``random`` — the paper's Random static baseline.
* ``fm_only`` — the no-NM baseline (all pages in far memory).
* ``nm_first`` — greedy: NM until full, then FM.

The epoch-based HMA scheme additionally *remaps* pages at runtime via
:meth:`PageTable.remap`, modelling OS page migration + TLB shootdown.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.sim.config import BLOCK_BYTES
from repro.xmem.address import AddressSpace


class OutOfMemoryError(RuntimeError):
    """All physical frames are in use."""


class FrameAllocator:
    """Hands out physical page frames (2 KB) from the flat space."""

    POLICIES = ("interleaved", "random", "fm_only", "nm_first")

    def __init__(self, space: AddressSpace, policy: str = "interleaved",
                 seed: int = 1) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown allocation policy {policy!r}")
        self.space = space
        self.policy = policy
        self._free = self._build_order(policy, seed)
        self._next = 0
        self._released: List[int] = []

    def _build_order(self, policy: str, seed: int) -> List[int]:
        nm = list(range(self.space.nm_blocks))
        fm = list(range(self.space.nm_blocks, self.space.total_blocks))
        if policy == "fm_only":
            return fm
        if policy == "nm_first":
            return nm + fm
        if policy == "random":
            frames = nm + fm
            random.Random(seed).shuffle(frames)
            return frames
        # interleaved: one NM frame per fm_to_nm_ratio FM frames, so a
        # footprint samples NM in proportion to its share of capacity.
        ratio = max(1, self.space.fm_blocks // self.space.nm_blocks)
        frames: List[int] = []
        nm_iter, fm_iter = iter(nm), iter(fm)
        exhausted = False
        while not exhausted:
            exhausted = True
            nxt = next(nm_iter, None)
            if nxt is not None:
                frames.append(nxt)
                exhausted = False
            for _ in range(ratio):
                nxt = next(fm_iter, None)
                if nxt is not None:
                    frames.append(nxt)
                    exhausted = False
        return frames

    def allocate(self) -> int:
        """Return the next free frame number.

        Released frames are reused (LIFO) before fresh ones so page-table
        reclaim can run indefinitely on a full machine.
        """
        if self._released:
            return self._released.pop()
        if self._next >= len(self._free):
            raise OutOfMemoryError(
                f"out of physical frames after {self._next} allocations"
            )
        frame = self._free[self._next]
        self._next += 1
        return frame

    def release(self, frame: int) -> None:
        """Return ``frame`` to the allocator (page-table eviction)."""
        self._released.append(frame)

    @property
    def frames_allocated(self) -> int:
        return self._next - len(self._released)

    @property
    def frames_total(self) -> int:
        return len(self._free)


class PageTable:
    """Per-process translation, populated on first touch."""

    def __init__(self, allocator: FrameAllocator, asid: int = 0) -> None:
        self._allocator = allocator
        self.asid = asid
        self._vpage_to_frame: Dict[int, int] = {}
        self._frame_to_vpage: Dict[int, int] = {}
        #: pages evicted to satisfy an allocation on a full machine
        self.reclaims = 0

    # ------------------------------------------------------------------
    def translate(self, vaddr: int) -> int:
        """Translate a virtual address, allocating a frame on first touch.

        When physical memory is exhausted the table reclaims its own
        oldest mapping (FIFO, modelling OS page reclaim) instead of
        letting :class:`OutOfMemoryError` escape mid-run; a process with
        no pages of its own to reclaim still raises.
        """
        if vaddr < 0:
            raise ValueError("negative virtual address")
        vpage, offset = divmod(vaddr, BLOCK_BYTES)
        frame = self._vpage_to_frame.get(vpage)
        if frame is None:
            try:
                frame = self._allocator.allocate()
            except OutOfMemoryError:
                frame = self._reclaim_oldest()
            self._vpage_to_frame[vpage] = frame
            self._frame_to_vpage[frame] = vpage
        return frame * BLOCK_BYTES + offset

    def _reclaim_oldest(self) -> int:
        if not self._vpage_to_frame:
            raise OutOfMemoryError(
                f"out of physical frames and asid {self.asid} has no pages"
                " to reclaim"
            )
        victim = next(iter(self._vpage_to_frame))
        frame = self._vpage_to_frame.pop(victim)
        del self._frame_to_vpage[frame]
        self.reclaims += 1
        return frame

    def frame_of(self, vpage: int) -> Optional[int]:
        return self._vpage_to_frame.get(vpage)

    def vpage_of(self, frame: int) -> Optional[int]:
        return self._frame_to_vpage.get(frame)

    def remap(self, vpage: int, new_frame: int) -> int:
        """Move ``vpage`` to ``new_frame`` (OS page migration).

        Returns the old frame.  The caller (HMA) is responsible for
        charging migration traffic and TLB-shootdown time.
        """
        if vpage not in self._vpage_to_frame:
            raise KeyError(f"vpage {vpage} is not mapped")
        if new_frame in self._frame_to_vpage:
            raise ValueError(f"frame {new_frame} already holds a page")
        old = self._vpage_to_frame[vpage]
        del self._frame_to_vpage[old]
        self._vpage_to_frame[vpage] = new_frame
        self._frame_to_vpage[new_frame] = vpage
        return old

    def swap_frames(self, vpage_a: int, vpage_b: int) -> None:
        """Exchange the frames of two mapped pages (bulk NM<->FM swap)."""
        fa = self._vpage_to_frame[vpage_a]
        fb = self._vpage_to_frame[vpage_b]
        self._vpage_to_frame[vpage_a] = fb
        self._vpage_to_frame[vpage_b] = fa
        self._frame_to_vpage[fa] = vpage_b
        self._frame_to_vpage[fb] = vpage_a

    # ------------------------------------------------------------------
    def mapped_pages(self) -> Iterable[int]:
        return self._vpage_to_frame.keys()

    @property
    def resident_pages(self) -> int:
        return len(self._vpage_to_frame)

    def footprint_bytes(self) -> int:
        return self.resident_pages * BLOCK_BYTES
