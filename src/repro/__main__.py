"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``      simulate one (scheme, benchmark) pair and print its report
``compare``  several schemes on one benchmark, speedups over the baseline
``figure``   regenerate one paper figure (parallel, resumable)
``schemes``  list the registered schemes
``suite``    list the Table III benchmarks and their parameters
``trace``    workload trace file, or (``--scheme``) a Chrome event trace
``report``   regenerate EXPERIMENTS.md (the full evaluation grid)
``bench``    timed perf-regression suite -> ``BENCH_<date>.json``
``analyze``  latency-attribution report from a telemetry artifact
``serve``    long-running multi-tenant sweep service (asyncio, TCP)
``submit``   submit a compare-style sweep to a running service
``top``      live terminal dashboard over a running service's telemetry

``compare``, ``figure`` and ``report`` fan their (scheme x workload)
cells out over ``--jobs N`` worker processes and memoise each cell in an
on-disk result cache (``--cache-dir``, default ``results/cache``), so an
interrupted sweep resumes where it stopped; ``--force`` re-simulates,
``--no-cache`` disables persistence.

``run``, ``compare`` and ``figure`` accept ``--telemetry`` (and
``--telemetry-window N``) to record windowed time-series samples and a
Chrome-format event trace per simulation; ``run`` writes the artifacts
to ``results/telemetry/``, the cached commands store them next to each
cell's cache entry.  The window is part of the cell hash, so telemetry
runs never collide with plain ones in the cache.

``--span-sample-rate N`` (implies ``--telemetry``) additionally rides a
:class:`~repro.telemetry.spans.Span` on every Nth memory request,
recording cycle-stamped stage transitions through the transaction
pipeline; ``analyze`` then prints the Figure-6-style latency
attribution (per-stage shares, per-Table-I-row tails, top coalescing
chains) from the written series or trace file.

Examples::

    python -m repro run silc mcf --misses 5000 --telemetry
    python -m repro run silc mcf --misses 5000 --span-sample-rate 1
    python -m repro analyze results/telemetry/silc-mcf.series.json
    python -m repro compare mcf --schemes cam pom silc --jobs 4
    python -m repro figure fig7 --jobs 8 --misses 6000
    python -m repro trace lbm /tmp/lbm.trc --misses 20000
    python -m repro trace mcf /tmp/mcf.json --scheme silc   # Perfetto
    python -m repro bench --quick
    python -m repro serve --jobs 8 &
    python -m repro submit mcf --schemes cam pom silc --tenant alice

``serve`` keeps one shared result cache and single-flight dedup table
across every client: identical cells submitted by different tenants
simulate once and fan out to all of them (docs/service.md).

Observability (docs/observability.md): the global ``--log-level`` /
``--log-file`` flags turn on structured JSON-lines logging for any
command (worker processes inherit the setting); ``serve
--metrics-port`` exposes Prometheus ``/metrics`` + ``/healthz`` over
HTTP and ``serve --trace-dir`` journals every job and cell so ``trace
--service`` can stitch a cross-process fleet trace for Perfetto.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional

from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    Cell,
    ExperimentExecutor,
    Progress,
)
from repro.experiments.runner import SCHEMES, run_one
from repro.sim.config import default_config
from repro.telemetry import DEFAULT_TELEMETRY_WINDOW, write_artifacts
from repro.validate import DEFAULT_CHECK_EVERY
from repro.stats.report import bar_chart, format_table
from repro.workloads.io import save_trace
from repro.workloads.model import WorkloadModel
from repro.workloads.spec import BENCHMARKS, per_core_spec


def _add_executor_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all CPUs)")
    sub_parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"on-disk result cache (default {DEFAULT_CACHE_DIR})")
    sub_parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache")
    sub_parser.add_argument(
        "--force", action="store_true",
        help="ignore and overwrite existing cache entries")


def _add_check_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--check", action="store_true",
        help="attach the shadow-memory differential oracle (repro.validate)"
             " to every simulation; the run fails on the first metadata or"
             " bijection violation")
    sub_parser.add_argument(
        "--check-every", type=int, default=None, metavar="N",
        help="full bijection scan every N misses (implies --check; "
             f"default {DEFAULT_CHECK_EVERY})")


def _add_mshr_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--mshr-entries", type=int, default=None, metavar="N",
        help="MSHR file size: same-subblock read misses coalesce onto"
             " one in-flight transaction, arrivals beyond N entries"
             " stall structurally (default: the config's MLP-sized"
             " file; pass 0 for the compat mode with no MSHR)")


def _add_batch_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--batch-window", type=int, default=None, metavar="N",
        help="run the vectorized batch engine with N-record trace windows"
             " (bit-identical results, faster wall clock; default 0 ="
             " scalar reference engine; see docs/batch_engine.md)")


def _add_telemetry_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--telemetry", action="store_true",
        help="record windowed time-series samples and a Chrome event"
             " trace for every simulation")
    sub_parser.add_argument(
        "--telemetry-window", type=int, default=None, metavar="CYCLES",
        help="sampling window in CPU cycles (implies --telemetry; "
             f"default {DEFAULT_TELEMETRY_WINDOW})")
    sub_parser.add_argument(
        "--span-sample-rate", type=int, default=None, metavar="N",
        help="trace every Nth memory request through the pipeline as a"
             " span (1 = every request; implies --telemetry); feed the"
             " written artifact to 'repro analyze'")


def _build_parser() -> argparse.ArgumentParser:
    from repro.obs import log as obs_log

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SILC-FM (HPCA 2017) flat-memory simulator",
    )
    parser.add_argument(
        "--log-level", choices=sorted(obs_log.LEVELS), default=None,
        help="structured JSON-lines log threshold (default warning;"
             " worker processes inherit the setting)")
    parser.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured log records to PATH instead of stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one scheme on one benchmark")
    run_p.add_argument("scheme", choices=sorted(SCHEMES))
    run_p.add_argument("benchmark", choices=BENCHMARKS)
    run_p.add_argument("--misses", type=int, default=5000,
                       help="LLC misses per core (default 5000)")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--scale", type=float, default=None,
                       help="memory capacity scale factor")
    run_p.add_argument("--telemetry-out", default=os.path.join(
        "results", "telemetry"), metavar="DIR",
        help="artifact directory for --telemetry runs "
             "(default results/telemetry)")
    _add_check_flags(run_p)
    _add_telemetry_flags(run_p)
    _add_mshr_flag(run_p)
    _add_batch_flag(run_p)

    cmp_p = sub.add_parser("compare", help="compare schemes on a benchmark")
    cmp_p.add_argument("benchmark", choices=BENCHMARKS)
    cmp_p.add_argument("--schemes", nargs="+", default=["cam", "pom", "silc"],
                       choices=sorted(SCHEMES))
    cmp_p.add_argument("--misses", type=int, default=5000)
    cmp_p.add_argument("--seed", type=int, default=None)
    cmp_p.add_argument("--scale", type=float, default=None)
    _add_check_flags(cmp_p)
    _add_telemetry_flags(cmp_p)
    _add_mshr_flag(cmp_p)
    _add_batch_flag(cmp_p)
    _add_executor_flags(cmp_p)

    fig_p = sub.add_parser(
        "figure", help="regenerate one paper figure (parallel, resumable)")
    fig_p.add_argument("name",
                       choices=["fig6", "fig7", "fig8", "fig9", "edp"])
    fig_p.add_argument("--misses", type=int, default=5000,
                       help="LLC misses per core per cell (default 5000)")
    fig_p.add_argument("--scale", type=float, default=None)
    fig_p.add_argument("--workloads", nargs="+", default=None,
                       choices=BENCHMARKS,
                       help="subset of the Table III suite (default: all)")
    _add_check_flags(fig_p)
    _add_telemetry_flags(fig_p)
    _add_executor_flags(fig_p)

    sub.add_parser("schemes", help="list registered schemes")
    sub.add_parser("suite", help="list the Table III benchmark presets")

    trace_p = sub.add_parser(
        "trace", help="write a workload trace file, (with --scheme) a"
                      " Chrome-format event trace of a simulated run, or"
                      " (with --service) a stitched fleet trace from a"
                      " service trace directory")
    trace_p.add_argument(
        "benchmark", nargs="?", default=None,
        help=f"one of {', '.join(BENCHMARKS)} (omitted with --service)")
    trace_p.add_argument(
        "path", nargs="?", default=None,
        help="output file (with --service: the stitched fleet trace)")
    trace_p.add_argument(
        "--service", default=None, metavar="DIR",
        help="stitch the fleet-trace journal a 'serve --trace-dir DIR'"
             " run wrote (tenant->job->cell->worker flows, one Perfetto"
             " file) instead of generating a trace")
    trace_p.add_argument("--misses", type=int, default=20_000)
    trace_p.add_argument("--seed", type=int, default=1)
    trace_p.add_argument(
        "--scheme", choices=sorted(SCHEMES), default=None,
        help="simulate this scheme with telemetry and write the run's"
             " Chrome event trace (open in Perfetto / chrome://tracing)"
             " instead of a workload trace file")
    trace_p.add_argument(
        "--telemetry-window", type=int, default=None, metavar="CYCLES",
        help="sampling window for --scheme traces "
             f"(default {DEFAULT_TELEMETRY_WINDOW})")
    trace_p.add_argument(
        "--span-sample-rate", type=int, default=None, metavar="N",
        help="also ride spans on every Nth request so the written trace"
             " carries request/stage slices and coalescing flow arrows")

    report_p = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (runs the full grid)")
    report_p.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    report_p.add_argument("--misses", type=int, default=5000)
    _add_check_flags(report_p)
    _add_executor_flags(report_p)

    bench_p = sub.add_parser(
        "bench", help="timed perf-regression suite -> BENCH_<date>.json")
    bench_p.add_argument(
        "--quick", action="store_true",
        help="CI-sized subset (baseline + silc on mcf)")
    bench_p.add_argument(
        "--out-dir", default="results", metavar="DIR",
        help="where BENCH_<date>.json lands (default results/)")
    bench_p.add_argument(
        "--profile", action="store_true",
        help="capture a cProfile of one untimed closed-form run per"
             " cell into <out-dir>/profiles/*.pstats")

    analyze_p = sub.add_parser(
        "analyze", help="latency-attribution report from a telemetry"
                        " artifact (a span-enabled *.series.json, or a"
                        " *.trace.json fallback)")
    analyze_p.add_argument("path", help="series or trace artifact file")
    analyze_p.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="coalescing chains to list (default 5)")

    from repro.service import DEFAULT_PORT

    serve_p = sub.add_parser(
        "serve", help="run the multi-tenant sweep service until a client"
                      " sends shutdown (or Ctrl-C)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"listen port (default {DEFAULT_PORT}; "
                              "0 = ephemeral)")
    serve_p.add_argument(
        "--telemetry-interval", type=float, default=1.0, metavar="SECONDS",
        help="windowed telemetry emission interval (default 1.0; "
             "0 disables)")
    serve_p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus /metrics and /healthz over HTTP on this"
             " port (0 = ephemeral; default: no HTTP listener)")
    serve_p.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="journal every job/cell and collect per-cell worker span"
             " files under DIR; stitch with 'repro trace --service DIR"
             " out.json' (default: tracing off)")
    _add_executor_flags(serve_p)

    submit_p = sub.add_parser(
        "submit", help="submit a compare-style sweep to a running service"
                       " and stream the results")
    submit_p.add_argument("benchmark", choices=BENCHMARKS)
    submit_p.add_argument("--schemes", nargs="+",
                          default=["cam", "pom", "silc"],
                          choices=sorted(SCHEMES))
    submit_p.add_argument("--misses", type=int, default=5000)
    submit_p.add_argument("--seed", type=int, default=None)
    submit_p.add_argument("--scale", type=float, default=None)
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit_p.add_argument("--tenant", default=None,
                          help="label for this client in service stats")
    _add_check_flags(submit_p)
    _add_mshr_flag(submit_p)
    _add_batch_flag(submit_p)

    top_p = sub.add_parser(
        "top", help="live terminal dashboard over a running service"
                    " (throughput, source mix, queue depth, latency)")
    top_p.add_argument("--host", default="127.0.0.1")
    top_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    top_p.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="exit after N telemetry windows (default: run until ^C)")
    return parser


def _with_check(config, args):
    """Fold the ``--check`` / ``--check-every`` flags into a config."""
    check_every = getattr(args, "check_every", None)
    if not getattr(args, "check", False) and check_every is None:
        return config
    interval = DEFAULT_CHECK_EVERY if check_every is None else check_every
    if interval <= 0:
        raise SystemExit("--check-every must be a positive miss count")
    return dataclasses.replace(config, check_interval=interval)


def _with_telemetry(config, args):
    """Fold ``--telemetry`` / ``--telemetry-window`` /
    ``--span-sample-rate`` into a config.  Span tracing implies
    telemetry (the recorder emits into the event tracer), and both
    fields are applied in one replace so ``__post_init__`` validates
    the combination."""
    window = getattr(args, "telemetry_window", None)
    rate = getattr(args, "span_sample_rate", None)
    if (not getattr(args, "telemetry", False) and window is None
            and rate is None):
        return config
    if window is None:
        window = DEFAULT_TELEMETRY_WINDOW
    if window <= 0:
        raise SystemExit("--telemetry-window must be a positive cycle count")
    if rate is None:
        rate = config.span_sample_rate
    elif rate < 1:
        raise SystemExit("--span-sample-rate must be >= 1")
    return dataclasses.replace(config, telemetry_window=window,
                               span_sample_rate=rate)


def _with_mshr(config, args):
    """Fold ``--mshr-entries`` into a config."""
    entries = getattr(args, "mshr_entries", None)
    if entries is None:
        return config
    if entries < 0:
        raise SystemExit("--mshr-entries must be >= 0")
    return dataclasses.replace(config, mshr_entries=entries)


def _with_batch(config, args):
    """Fold ``--batch-window`` into a config."""
    window = getattr(args, "batch_window", None)
    if window is None:
        return config
    if window < 0:
        raise SystemExit("--batch-window must be >= 0")
    return dataclasses.replace(config, batch_window=window)


def _config(scale: Optional[float], args=None):
    config = default_config() if scale is None else default_config(scale=scale)
    if args is not None:
        config = _with_batch(_with_mshr(
            _with_telemetry(_with_check(config, args), args), args), args)
    return config


def _print_progress(progress: Progress) -> None:
    end = "\n" if progress.completed == progress.total else "\r"
    print(f"  {progress.render()}", end=end, file=sys.stderr, flush=True)


def _executor(args) -> ExperimentExecutor:
    """Build the executor the command-line flags describe."""
    return ExperimentExecutor(
        jobs=args.jobs if args.jobs is not None else (os.cpu_count() or 1),
        cache_dir=None if args.no_cache else args.cache_dir,
        force=args.force,
        on_progress=_print_progress,
    )


def _report_failures(executor: ExperimentExecutor) -> int:
    """Print collected worker tracebacks; returns the failure count."""
    for failure in executor.failures:
        print(f"\nFAILED cell ({failure.cell.scheme_key}, "
              f"{failure.cell.workload_name}):\n{failure.error}",
              file=sys.stderr)
    return len(executor.failures)


def _cmd_run(args) -> int:
    config = _config(args.scale, args)
    result = run_one(args.scheme, args.benchmark, config,
                     misses_per_core=args.misses, seed=args.seed)
    rows = [
        ["execution cycles", f"{result.elapsed_cycles:,.0f}"],
        ["NM access rate", f"{result.access_rate:.3f}"],
        ["NM demand-bw share", f"{result.nm_demand_fraction:.3f}"],
        ["mean miss latency", f"{result.controller_stats.mean_miss_latency:.1f}"],
        ["subblock swaps", result.scheme_stats.subblock_swaps],
        ["2KB migrations", result.scheme_stats.block_migrations],
        ["energy (J)", f"{result.energy.total_joules:.3e}"],
        ["EDP (J*s)", f"{result.edp:.3e}"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{SCHEMES[args.scheme].label} on {args.benchmark}"))
    if result.telemetry is not None:
        from repro.telemetry import run_metadata

        snap = result.telemetry
        meta = run_metadata(args.scheme, args.benchmark, args.seed, config,
                            misses_per_core=args.misses)
        series, trace = write_artifacts(
            args.telemetry_out, f"{args.scheme}-{args.benchmark}", snap,
            meta=meta)
        print(f"telemetry: {len(snap['samples'])} samples "
              f"({snap['spilled_samples']} spilled), "
              f"{len(snap['events'])} trace events "
              f"({snap['dropped_events']} dropped)")
        print(f"  series: {series}\n  trace:  {trace}  (open in Perfetto)")
        if "spans" in snap:
            print(f"  spans:  {snap['spans']['spans']} recorded — run "
                  f"'python -m repro analyze {series}' for the latency"
                  " attribution")
    return 0


def _cmd_compare(args) -> int:
    config = _config(args.scale, args)
    executor = _executor(args)
    cells = {
        key: Cell(key, args.benchmark, config, misses_per_core=args.misses,
                  seed=args.seed)
        for key in ["nonm"] + [k for k in args.schemes if k != "nonm"]
    }
    results = executor.run_cells(cells.values())
    if _report_failures(executor):
        return 1
    baseline = results[cells["nonm"]]
    speedups = {
        SCHEMES[key].label: results[cells[key]].speedup_over(baseline)
        for key in args.schemes
    }
    print(bar_chart(speedups, title=f"Speedup over no-NM baseline "
                                    f"({args.benchmark})", unit="x"))
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import figures

    config = _config(args.scale, args)
    executor = _executor(args)
    entry = {
        "fig6": figures.fig6_breakdown,
        "fig7": figures.fig7_comparison,
        "fig8": figures.fig8_bandwidth_split,
        "fig9": figures.fig9_capacity_sweep,
        "edp": figures.edp_comparison,
    }[args.name]
    try:
        table = entry(config=config, misses_per_core=args.misses,
                      workloads=args.workloads, executor=executor)
    finally:
        failed = _report_failures(executor)
    if args.name in ("fig6", "fig7"):
        rows = [[scheme] + [f"{v:.3f}" for v in per_wl.values()]
                for scheme, per_wl in table.items()]
        headers = ["scheme"] + list(next(iter(table.values())))
        print(format_table(headers, rows, title=f"{args.name} (speedup)"))
    elif args.name == "fig9":
        ratios = sorted({r for per in table.values() for r in per}, reverse=True)
        rows = [[scheme] + [f"{per[r]:.3f}" for r in ratios]
                for scheme, per in table.items()]
        print(format_table(["scheme"] + [f"NM=1/{r}" for r in ratios], rows,
                           title="fig9 (geomean speedup)"))
    else:
        unit = "" if args.name == "fig8" else "x"
        print(bar_chart({SCHEMES[s].label: v for s, v in table.items()},
                        title=args.name, unit=unit))
    progress = executor.last_progress
    if progress is not None:
        print(f"[{progress.render()}; "
              f"{progress.simulated} simulated]", file=sys.stderr)
    return 1 if failed else 0


def _cmd_schemes(_args) -> int:
    rows = [[setup.key, setup.label, setup.alloc_policy]
            for setup in SCHEMES.values()]
    print(format_table(["key", "scheme", "allocation"], rows))
    return 0


def _cmd_suite(_args) -> int:
    config = default_config()
    rows = []
    for name in BENCHMARKS:
        spec = per_core_spec(name, config)
        rows.append([name, spec.category, spec.mpki, spec.footprint_pages,
                     spec.spatial_run, spec.page_density,
                     spec.phase_misses or "-"])
    print(format_table(
        ["benchmark", "class", "MPKI", "pages/core", "spatial", "density",
         "phase"],
        rows, title="Table III workload suite (scaled)",
        float_format="{:.2g}"))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report_writer import write_experiments_report

    executor = _executor(args)
    try:
        write_experiments_report(args.path, config=_config(None, args),
                                 misses_per_core=args.misses,
                                 fig9_misses=max(1500, args.misses // 2),
                                 executor=executor)
    finally:
        failed = _report_failures(executor)
    print(f"wrote {args.path}")
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    if args.service is not None:
        from repro.obs.trace import write_fleet_trace

        # with --service the single positional is the output file; it
        # may have landed in either slot
        out = args.path or args.benchmark or "fleet-trace.json"
        try:
            summary = write_fleet_trace(args.service, out)
        except (OSError, ValueError) as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 1
        print(f"stitched {summary['tenants']} tenant(s), "
              f"{summary['jobs']} job(s), {summary['cells']} cell(s), "
              f"{summary['worker_spans']} worker span(s) -> {out}; "
              "open in Perfetto or chrome://tracing")
        return 0
    if args.benchmark not in BENCHMARKS:
        raise SystemExit(
            f"trace: benchmark must be one of {', '.join(BENCHMARKS)}"
            " (or pass --service DIR)")
    if args.path is None:
        raise SystemExit("trace: output path required")
    config = default_config()
    if args.scheme is not None:
        from repro.telemetry import run_metadata, write_trace

        window = args.telemetry_window or DEFAULT_TELEMETRY_WINDOW
        if window <= 0:
            raise SystemExit(
                "--telemetry-window must be a positive cycle count")
        rate = args.span_sample_rate
        if rate is not None and rate < 1:
            raise SystemExit("--span-sample-rate must be >= 1")
        config = dataclasses.replace(
            config, telemetry_window=window,
            span_sample_rate=rate if rate is not None else 0)
        result = run_one(args.scheme, args.benchmark, config,
                         misses_per_core=args.misses, seed=args.seed)
        snap = result.telemetry
        write_trace(args.path, snap,
                    meta=run_metadata(args.scheme, args.benchmark,
                                      args.seed, config,
                                      misses_per_core=args.misses))
        print(f"wrote {len(snap['events'])} trace events "
              f"({snap['dropped_events']} dropped) to {args.path}; "
              "open in Perfetto or chrome://tracing")
        return 0
    spec = per_core_spec(args.benchmark, config)
    model = WorkloadModel(spec, seed=args.seed)
    count = save_trace(args.path, model.miss_stream(args.misses))
    print(f"wrote {count} records to {args.path}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.experiments.bench import run_bench, write_bench

    profile_dir = Path(args.out_dir) / "profiles" if args.profile else None
    payload = run_bench(quick=args.quick, profile_dir=profile_dir)
    path = write_bench(payload, args.out_dir)
    throughput = payload["throughput"]
    def _tail(value):
        return f"{value:,.0f}" if value is not None else "-"

    print(format_table(
        ["cell", "workload", "wall s", "accesses/s", "p95 cyc", "p99 cyc"],
        [[c.get("key", c["scheme"]), c["workload"],
          f"{c['wall_seconds']:.2f}",
          f"{c['accesses_per_sec']:,.0f}",
          _tail(c.get("p95_latency")), _tail(c.get("p99_latency"))]
         for c in payload["cells"]],
        title=f"bench ({'quick' if args.quick else 'full'})"))
    speedup = throughput.get("batch_speedup")
    print(f"total: {throughput['total_accesses']:,} accesses in "
          f"{throughput['total_wall_seconds']:.2f}s "
          f"({throughput['accesses_per_sec']:,.0f}/s"
          + (f", batch speedup {speedup:.2f}x" if speedup else "") + ")")
    curve = payload.get("batch_curve")
    if curve:
        points = "  ".join(
            f"w={p['batch_window']}: {p['speedup']:.2f}x"
            for p in curve["points"])
        print(f"closed-form speedup curve ({'/'.join(curve['workloads'])}"
              f" x {'/'.join(curve['variants'])}): {points}")
    if profile_dir is not None:
        print(f"wrote per-cell profiles to {profile_dir}/")
    print(f"wrote {path}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import SweepService

    service = SweepService(
        host=args.host, port=args.port,
        jobs=args.jobs if args.jobs is not None else (os.cpu_count() or 1),
        cache_dir=None if args.no_cache else args.cache_dir,
        force=args.force,
        telemetry_interval=args.telemetry_interval,
        metrics_port=args.metrics_port,
        trace_dir=args.trace_dir,
    )

    async def _serve() -> None:
        await service.start()
        print(f"serving on {service.host}:{service.port} "
              f"({service.jobs} workers, cache="
              f"{'off' if service.core.cache is None else service.core.cache.root})",
              flush=True)
        if service.metrics_http_port is not None:
            print(f"metrics on http://{service.host}:"
                  f"{service.metrics_http_port}/metrics (+ /healthz)",
                  flush=True)
        if service.journal is not None:
            print(f"fleet trace journal in {service.journal.root}/ "
                  f"(stitch with 'python -m repro trace --service "
                  f"{service.journal.root} fleet.json')", flush=True)
        await service.run_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args) -> int:
    from repro.cpu.system import RunResult
    from repro.service import ServiceError, run_sweep

    config = _config(args.scale, args)
    scheme_keys = ["nonm"] + [k for k in args.schemes if k != "nonm"]
    cells = [Cell(key, args.benchmark, config, misses_per_core=args.misses,
                  seed=args.seed) for key in scheme_keys]

    def _on_event(event) -> None:
        if event.get("type") == "cell":
            print(f"  cell {event['index']} ({scheme_keys[event['index']]})"
                  f" <- {event['source']} in {event['latency_ms']:.1f} ms",
                  file=sys.stderr, flush=True)

    try:
        outcome = run_sweep(args.host, args.port, cells,
                            tenant=args.tenant, on_event=_on_event)
    except (ConnectionError, OSError) as exc:
        print(f"submit: cannot reach the service at "
              f"{args.host}:{args.port} ({exc}); start one with"
              f" 'python -m repro serve'", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1

    for index, error in sorted(outcome.errors.items()):
        print(f"\nFAILED cell ({scheme_keys[index]}, {args.benchmark}):\n"
              f"{error}", file=sys.stderr)
    if not outcome.ok:
        print(f"submit: job {outcome.job_id} {outcome.status} "
              f"({len(outcome.errors)} failed cells)", file=sys.stderr)
        return 1

    results = {scheme_keys[i]: RunResult.from_dict(r)
               for i, r in outcome.results.items()}
    baseline = results["nonm"]
    speedups = {
        SCHEMES[key].label: results[key].speedup_over(baseline)
        for key in args.schemes
    }
    print(bar_chart(speedups, title=f"Speedup over no-NM baseline "
                                    f"({args.benchmark}) [{outcome.job_id}]",
                    unit="x"))
    return 0


def _cmd_top(args) -> int:
    from repro.obs.top import run_top
    from repro.service import ServiceError

    try:
        return run_top(args.host, args.port, frames=args.frames)
    except (ConnectionError, OSError) as exc:
        print(f"top: cannot reach the service at {args.host}:{args.port}"
              f" ({exc}); start one with 'python -m repro serve'",
              file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1


def _cmd_analyze(args) -> int:
    from repro.telemetry.analyze import AnalyzeError, analyze

    try:
        print(analyze(args.path, top=args.top))
    except AnalyzeError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.log_level is not None or args.log_file is not None:
        from repro.obs import log as obs_log

        obs_log.configure(level=args.log_level or "warning",
                          path=args.log_file)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "schemes": _cmd_schemes,
        "suite": _cmd_suite,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "bench": _cmd_bench,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "top": _cmd_top,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # stdout pipe closed early (e.g. `repro analyze ... | head`);
        # detach stdout so the interpreter's flush-at-exit stays quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 1
    raise SystemExit(code)
