"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``      simulate one (scheme, benchmark) pair and print its report
``compare``  several schemes on one benchmark, speedups over the baseline
``schemes``  list the registered schemes
``suite``    list the Table III benchmarks and their parameters
``trace``    generate a workload trace file for external tools
``report``   regenerate EXPERIMENTS.md (the full evaluation grid)

Examples::

    python -m repro run silc mcf --misses 5000
    python -m repro compare mcf --schemes cam pom silc
    python -m repro trace lbm /tmp/lbm.trc --misses 20000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.runner import SCHEMES, run_one
from repro.sim.config import default_config
from repro.stats.report import bar_chart, format_table
from repro.workloads.io import save_trace
from repro.workloads.model import WorkloadModel
from repro.workloads.spec import BENCHMARKS, per_core_spec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SILC-FM (HPCA 2017) flat-memory simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one scheme on one benchmark")
    run_p.add_argument("scheme", choices=sorted(SCHEMES))
    run_p.add_argument("benchmark", choices=BENCHMARKS)
    run_p.add_argument("--misses", type=int, default=5000,
                       help="LLC misses per core (default 5000)")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--scale", type=float, default=None,
                       help="memory capacity scale factor")

    cmp_p = sub.add_parser("compare", help="compare schemes on a benchmark")
    cmp_p.add_argument("benchmark", choices=BENCHMARKS)
    cmp_p.add_argument("--schemes", nargs="+", default=["cam", "pom", "silc"],
                       choices=sorted(SCHEMES))
    cmp_p.add_argument("--misses", type=int, default=5000)
    cmp_p.add_argument("--seed", type=int, default=None)
    cmp_p.add_argument("--scale", type=float, default=None)

    sub.add_parser("schemes", help="list registered schemes")
    sub.add_parser("suite", help="list the Table III benchmark presets")

    trace_p = sub.add_parser("trace", help="write a trace file")
    trace_p.add_argument("benchmark", choices=BENCHMARKS)
    trace_p.add_argument("path")
    trace_p.add_argument("--misses", type=int, default=20_000)
    trace_p.add_argument("--seed", type=int, default=1)

    report_p = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (runs the full grid)")
    report_p.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    report_p.add_argument("--misses", type=int, default=5000)
    return parser


def _config(scale: Optional[float]):
    return default_config() if scale is None else default_config(scale=scale)


def _cmd_run(args) -> int:
    config = _config(args.scale)
    result = run_one(args.scheme, args.benchmark, config,
                     misses_per_core=args.misses, seed=args.seed)
    rows = [
        ["execution cycles", f"{result.elapsed_cycles:,.0f}"],
        ["NM access rate", f"{result.access_rate:.3f}"],
        ["NM demand-bw share", f"{result.nm_demand_fraction:.3f}"],
        ["mean miss latency", f"{result.controller_stats.mean_miss_latency:.1f}"],
        ["subblock swaps", result.scheme_stats.subblock_swaps],
        ["2KB migrations", result.scheme_stats.block_migrations],
        ["energy (J)", f"{result.energy.total_joules:.3e}"],
        ["EDP (J*s)", f"{result.edp:.3e}"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{SCHEMES[args.scheme].label} on {args.benchmark}"))
    return 0


def _cmd_compare(args) -> int:
    config = _config(args.scale)
    baseline = run_one("nonm", args.benchmark, config,
                       misses_per_core=args.misses, seed=args.seed)
    speedups = {}
    for key in args.schemes:
        result = run_one(key, args.benchmark, config,
                         misses_per_core=args.misses, seed=args.seed)
        speedups[SCHEMES[key].label] = result.speedup_over(baseline)
        print(f"ran {SCHEMES[key].label}", file=sys.stderr)
    print(bar_chart(speedups, title=f"Speedup over no-NM baseline "
                                    f"({args.benchmark})", unit="x"))
    return 0


def _cmd_schemes(_args) -> int:
    rows = [[setup.key, setup.label, setup.alloc_policy]
            for setup in SCHEMES.values()]
    print(format_table(["key", "scheme", "allocation"], rows))
    return 0


def _cmd_suite(_args) -> int:
    config = default_config()
    rows = []
    for name in BENCHMARKS:
        spec = per_core_spec(name, config)
        rows.append([name, spec.category, spec.mpki, spec.footprint_pages,
                     spec.spatial_run, spec.page_density,
                     spec.phase_misses or "-"])
    print(format_table(
        ["benchmark", "class", "MPKI", "pages/core", "spatial", "density",
         "phase"],
        rows, title="Table III workload suite (scaled)",
        float_format="{:.2g}"))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report_writer import write_experiments_report

    write_experiments_report(args.path, misses_per_core=args.misses,
                             fig9_misses=max(1500, args.misses // 2))
    print(f"wrote {args.path}")
    return 0


def _cmd_trace(args) -> int:
    config = default_config()
    spec = per_core_spec(args.benchmark, config)
    model = WorkloadModel(spec, seed=args.seed)
    count = save_trace(args.path, model.miss_stream(args.misses))
    print(f"wrote {count} records to {args.path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "schemes": _cmd_schemes,
        "suite": _cmd_suite,
        "trace": _cmd_trace,
        "report": _cmd_report,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
