"""Event-driven DRAM substrate (the reproduction's Ramulator stand-in)."""

from repro.dram.bank import Bank, BankStats
from repro.dram.channel import Channel, ChannelStats
from repro.dram.device import MemoryDevice
from repro.dram.mapping import CHANNEL_INTERLEAVE_BYTES, AddressMapper, DRAMCoordinates
from repro.dram.request import DRAMRequest, Priority
from repro.dram.timing import DDR3_TIMINGS, HBM2_TIMINGS, DRAMTimings

__all__ = [
    "AddressMapper",
    "Bank",
    "BankStats",
    "CHANNEL_INTERLEAVE_BYTES",
    "Channel",
    "ChannelStats",
    "DDR3_TIMINGS",
    "DRAMCoordinates",
    "DRAMRequest",
    "DRAMTimings",
    "HBM2_TIMINGS",
    "MemoryDevice",
    "Priority",
]
