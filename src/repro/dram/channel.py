"""One DRAM channel: request queues, an FR-FCFS-style scheduler and a
shared data bus.

The model is event-driven rather than cycle-stepped: when the scheduler
picks a request it computes, from the bank's row-buffer state and the
bus's next free time, when the transfer completes, and schedules that
completion on the engine.  A small in-flight window (``pipeline_depth``)
lets the next request's bank preparation overlap the current burst, so
back-to-back row hits stream at full bus utilisation while row conflicts
serialise on the bank — the two effects the evaluation depends on.

Scheduling policy (FR-FCFS with priority classes): demand requests beat
background (swap/migration) traffic; within a class, row-buffer hits are
preferred; ties go to the oldest request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Deque, Optional

from repro.dram.bank import Bank
from repro.dram.request import DRAMRequest, Priority
from repro.dram.timing import DRAMTimings
from repro.sim import faults
from repro.sim.engine import Engine


@dataclass
class ChannelStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    demand_bytes: int = 0
    background_bytes: int = 0
    bus_busy_cycles: float = 0.0
    total_queue_wait: float = 0.0
    max_queue_depth: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def mean_queue_wait(self) -> float:
        return self.total_queue_wait / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero every counter (used for warmup discarding)."""
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.demand_bytes = 0
        self.background_bytes = 0
        self.bus_busy_cycles = 0.0
        self.total_queue_wait = 0.0
        self.max_queue_depth = 0


class Channel:
    """A single channel of one memory device."""

    #: how many scheduled-but-incomplete requests may overlap; sized to
    #: the paper's 32-entry per-channel queues so all 8 banks of a
    #: channel can be preparing rows while the bus streams data.
    pipeline_depth = 16
    #: FR-FCFS lookahead: only this many of the oldest requests per
    #: priority class are considered for row-hit reordering (a real
    #: scheduler's window is similarly bounded; this also keeps the pick
    #: cost O(window) under deep backlogs).
    scheduler_window = 32
    #: DRAMRequest free pool — a list on turbo channels (see
    #: ``enable_turbo``), None on scalar channels.
    _req_pool = None

    def __init__(self, engine: Engine, timings: DRAMTimings) -> None:
        self._engine = engine
        self._t = timings
        self._banks = [Bank(timings) for _ in range(timings.banks)]
        self._demand_queue: Deque[DRAMRequest] = deque()
        self._background_queue: Deque[DRAMRequest] = deque()
        self._bus_free: float = 0.0
        self._inflight = 0
        self._picks = 0
        self.refreshes = 0
        self.stats = ChannelStats()
        #: conversion factor and per-size burst durations, cached off the
        #: timing properties — ``_issue`` runs once per DRAM request and
        #: the formulas are pure in ``size``.
        self._cpm = timings.cpu_cycles_per_mem
        self._burst_cpu_cycles: dict = {}
        if timings.t_refi > 0:
            engine.schedule(timings.t_refi * self._cpm, self._refresh)

    def _refresh(self) -> None:
        """All-bank refresh: every bank precharges and is unavailable
        for tRFC (only modelled when the device enables t_refi).

        Note: the refresh chain reschedules itself forever, so an
        engine driving a refresh-enabled device never drains — run it
        with a horizon (``engine.run(until=...)``) or via ``System.run``
        (which stops when the cores finish)."""
        cpm = self._cpm
        done = self._engine.now + self._t.t_rfc * cpm
        for bank in self._banks:
            bank.open_row = None
            bank.ready = max(bank.ready, done)
        self.refreshes += 1
        self._engine.schedule(self._t.t_refi * cpm, self._refresh)

    #: how many demand requests are served for each background request
    #: when both queues are non-empty.  Background (swap/migration/
    #: writeback) traffic is deprioritised but NOT starved: migration
    #: bandwidth competing with demand is the effect the paper's
    #: PoM-vs-subblocking comparison rests on.
    background_share = 4

    def submit(self, request: DRAMRequest) -> None:
        """Enqueue a request; it completes via ``request.on_complete``."""
        queue = (self._demand_queue if request.priority == Priority.DEMAND
                 else self._background_queue)
        queue.append(request)
        depth = len(self._demand_queue) + len(self._background_queue)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        self._try_issue()

    @property
    def queue_depth(self) -> int:
        return len(self._demand_queue) + len(self._background_queue)

    def bank(self, index: int) -> Bank:
        return self._banks[index]

    # ------------------------------------------------------------------
    def _try_issue(self) -> None:
        while ((self._demand_queue or self._background_queue)
               and self._inflight < self.pipeline_depth):
            request = self._pick()
            self._issue(request)

    #: oldest-request age (CPU cycles) beyond which FR-FCFS stops
    #: reordering past it — the standard starvation cap that keeps an
    #: endlessly row-hitting stream from blocking a row-miss forever.
    #: Loose enough that it only fires on genuine starvation, not on
    #: ordinary backlog (row batching is what keeps conflict-heavy
    #: streams from spiralling).
    starvation_cap = 2500.0

    def _pick(self) -> DRAMRequest:
        """FR-FCFS within the scheduler window.  Demand is preferred over
        background traffic at a ``background_share`` ratio, so migrations
        are delayed under load but still consume real bandwidth."""
        if not self._demand_queue:
            queue = self._background_queue
        elif not self._background_queue:
            queue = self._demand_queue
        else:
            self._picks += 1
            if self._picks % (self.background_share + 1) == 0:
                queue = self._background_queue
            else:
                queue = self._demand_queue
        best_index = 0
        if self._engine.now - queue[0].arrival < self.starvation_cap:
            limit = min(len(queue), self.scheduler_window)
            for i in range(limit):
                req = queue[i]
                if self._banks[req.coords.bank].open_row == req.coords.row:
                    best_index = i
                    break
        best = queue[best_index]
        del queue[best_index]
        return best

    def _issue(self, request: DRAMRequest) -> None:
        now = self._engine.now
        bank = self._banks[request.coords.bank]
        data_ready = bank.prepare(request.coords.row, now)
        data_start = max(data_ready, self._bus_free)
        burst = self._burst_cpu_cycles.get(request.size)
        if burst is None:
            burst = self._t.burst_mem_cycles(request.size) * self._cpm
            self._burst_cpu_cycles[request.size] = burst
        completion = data_start + burst
        self._bus_free = completion
        self._inflight += 1
        self.stats.bus_busy_cycles += burst
        self.stats.total_queue_wait += data_start - request.arrival
        if request.span is not None:
            # attribute the queue/service split to the sampled request:
            # everything before the data starts moving (bank preparation,
            # bus contention, scheduler backlog) is queueing, the burst
            # itself is service
            request.span.add_dram(data_start - request.arrival, burst)
        self._engine.schedule_at(completion, self._complete, request)

    # ------------------------------------------------------------------
    # batch-engine fast paths (repro.cpu.batch).  The scalar path above
    # never calls these; equivalence of the two is gated by
    # tests/integration/test_batch_equivalence.py.
    # ------------------------------------------------------------------
    def can_accept_fast(self, count: int) -> bool:
        """True when ``count`` chunks could issue immediately: nothing
        queued (so FR-FCFS has no reordering decision to make) and the
        in-flight window has room for all of them."""
        return (not self._demand_queue and not self._background_queue
                and self._inflight + count <= self.pipeline_depth)

    def submit_fast(self, bank_index: int, row: int, size: int,
                    is_write: bool, is_demand: bool, on_complete) -> bool:
        """Single-chunk fast path: issue immediately, skipping request
        construction and the scheduler pick.

        Only legal when the queues are empty and the pipeline has room —
        then ``submit`` would enqueue, ``_pick`` would trivially select
        this request, and ``_issue`` would compute exactly the timing
        below.  Returns False (touching nothing) when ineligible; the
        caller falls back to the queued ``submit`` path.
        """
        if (self._demand_queue or self._background_queue
                or self._inflight >= self.pipeline_depth):
            return False
        stats = self.stats
        if stats.max_queue_depth < 1:
            stats.max_queue_depth = 1  # submit would have seen depth 1
        now = self._engine.now
        if faults.ACTIVE is not None:
            data_ready = faults.bank_prepare(self._banks[bank_index], row, now)
        else:
            data_ready = self._banks[bank_index].prepare(row, now)
        data_start = data_ready if data_ready > self._bus_free else self._bus_free
        burst = self._burst_cpu_cycles.get(size)
        if burst is None:
            burst = self._t.burst_mem_cycles(size) * self._cpm
            self._burst_cpu_cycles[size] = burst
        completion = data_start + burst
        self._bus_free = completion
        self._inflight += 1
        stats.bus_busy_cycles += burst
        stats.total_queue_wait += data_start - now
        self._engine.schedule_at(completion, self._complete_fast, size,
                                 is_write, is_demand, on_complete)
        return True

    def issue_window(self, chunks):
        """Claim bank/bus/pipeline state for an ordered window of
        ``(bank, row, size)`` chunks and return the completion time of
        each.

        The caller must have checked ``can_accept_fast(len(chunks))``
        (all-or-nothing: a partially issued window could not fall back)
        and schedules the ``_complete_fast`` events itself — in the
        *global* chunk order of the whole access, not per channel, so
        equal-time completion events fire in the same order the scalar
        submit loop would have scheduled them.  Timing is computed by
        the vectorized kernel (:func:`repro.dram.batch.window_timing`).
        """
        from repro.dram.batch import window_timing

        stats = self.stats
        if stats.max_queue_depth < 1:
            stats.max_queue_depth = 1
        completions = window_timing(self, chunks, self._engine.now)
        self._inflight += len(chunks)
        return completions

    # ------------------------------------------------------------------
    # batch-engine fused queued path ("turbo").  Same machinery as
    # submit/_try_issue/_pick/_issue/_complete above with the method
    # boundaries removed and hot state in locals: one LLC miss through a
    # backlogged channel costs ~100 Python calls on the scalar path and
    # the bench regime is queue-bound, so the batch engine's speedup
    # lives or dies on this loop.  Enabled per *instance* by
    # ``enable_turbo`` (scalar runs never see it); behaviour is
    # bit-identical and gated by tests/integration/test_batch_equivalence.
    # ------------------------------------------------------------------
    #: recycled DRAMRequest objects kept per turbo channel.
    _REQ_POOL_CAP = 64

    def enable_turbo(self) -> None:
        """Rebind this channel's queued path to the fused twins (batch
        runs only; the class-level scalar methods stay untouched)."""
        t = self._banks[0]._t
        cpm = t.cpu_cycles_per_mem
        # Bank.prepare's cpm-scaled latencies, precomputed from the same
        # operands so every float in the inlined twin is bit-identical.
        self._turbo_rcd = t.t_rcd * cpm
        self._turbo_ras = t.t_ras * cpm
        self._turbo_rp = t.t_rp * cpm
        self._turbo_ccd = t.t_ccd * cpm
        self._turbo_cas = t.t_cas * cpm
        #: request free pool: ``_complete_turbo`` recycles, the batch
        #: dispatcher (``MemoryDevice.access_turbo``) re-acquires.  A
        #: request is dead once its completion callback has run —
        #: nothing reads it afterwards — so recycling at completion is
        #: safe.  None on scalar channels (never enabled).
        self._req_pool = []
        #: completion callbacks bound once — a ``schedule_at`` call site
        #: builds a fresh bound method per event otherwise.
        self._complete_turbo_bound = self._complete_turbo
        self._complete_fast_bound = self._complete_fast
        self.submit = self._submit_turbo
        self._try_issue = self._try_issue_turbo

    def _submit_turbo(self, request: DRAMRequest) -> None:
        """Fused ``submit``: enqueue, watermark, then drain eligibility
        in one frame."""
        dq = self._demand_queue
        bq = self._background_queue
        (dq if request.priority == Priority.DEMAND else bq).append(request)
        depth = len(dq) + len(bq)
        stats = self.stats
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        if self._inflight < self.pipeline_depth:
            self._try_issue_turbo()

    def _try_issue_turbo(self) -> None:
        """Fused ``_try_issue`` + ``_pick`` + ``_issue``.

        State (bus chain, in-flight count, float stat accumulators) is
        held in locals across the drain loop and written back once; the
        adds replay in the scalar order, so the float results are
        bit-identical.  No callback runs inside the loop (completions
        are scheduled, not invoked), so nothing can observe or mutate
        the cached state mid-drain.
        """
        dq = self._demand_queue
        bq = self._background_queue
        inflight = self._inflight
        depth_limit = self.pipeline_depth
        if inflight >= depth_limit or not (dq or bq):
            return
        engine = self._engine
        now = engine.now
        banks = self._banks
        bursts = self._burst_cpu_cycles
        stats = self.stats
        bus_free = self._bus_free
        busy = stats.bus_busy_cycles
        qwait = stats.total_queue_wait
        window = self.scheduler_window
        cap = self.starvation_cap
        share = self.background_share + 1
        schedule_at = engine.schedule_at
        complete = self._complete_turbo_bound
        rcd = self._turbo_rcd
        ras = self._turbo_ras
        rp = self._turbo_rp
        ccd = self._turbo_ccd
        cas = self._turbo_cas
        while (dq or bq) and inflight < depth_limit:
            # -- pick (FR-FCFS within the window, demand over background)
            if not dq:
                queue = bq
            elif not bq:
                queue = dq
            else:
                self._picks += 1
                queue = bq if self._picks % share == 0 else dq
            best_index = 0
            if now - queue[0].arrival < cap:
                limit = len(queue)
                if limit > window:
                    limit = window
                # islice walks the deque O(1) per step; indexing a deque
                # is O(i) per probe, which quadraticizes deep-queue scans
                for i, req in enumerate(islice(queue, limit)):
                    coords = req.coords
                    if banks[coords.bank].open_row == coords.row:
                        best_index = i
                        break
            if best_index:
                best = queue[best_index]
                del queue[best_index]
            else:
                best = queue.popleft()
            # -- issue (Bank.prepare inlined, then the bus chain); the
            # precomputed cpm-scaled latencies keep every float the
            # scalar expression's
            coords = best.coords
            bank = banks[coords.bank]
            row = coords.row
            ready = bank.ready
            start = now if now > ready else ready
            open_row = bank.open_row
            bank_stats = bank.stats
            if open_row == row:
                bank_stats.row_hits += 1
                cas_at = start
            elif open_row is None:
                bank_stats.row_closed += 1
                bank._activated_at = start
                cas_at = start + rcd
            else:
                bank_stats.row_conflicts += 1
                precharge_at = bank._activated_at + ras
                if start > precharge_at:
                    precharge_at = start
                activate_at = precharge_at + rp
                bank._activated_at = activate_at
                cas_at = activate_at + rcd
            bank.open_row = row
            bank.ready = cas_at + ccd
            data_ready = cas_at + cas
            data_start = data_ready if data_ready > bus_free else bus_free
            size = best.size
            burst = bursts.get(size)
            if burst is None:
                burst = self._t.burst_mem_cycles(size) * self._cpm
                bursts[size] = burst
            completion = data_start + burst
            bus_free = completion
            inflight += 1
            busy += burst
            qwait += data_start - best.arrival
            if best.span is not None:
                best.span.add_dram(data_start - best.arrival, burst)
            schedule_at(completion, complete, best)
        self._bus_free = bus_free
        self._inflight = inflight
        stats.bus_busy_cycles = busy
        stats.total_queue_wait = qwait

    def _complete_turbo(self, request: DRAMRequest) -> None:
        """Fused ``_complete`` for turbo-issued requests.  The trailing
        drain reloads channel state (the completion callback may have
        submitted to this very channel)."""
        request.completed_at = now = self._engine.now
        self._inflight -= 1
        stats = self.stats
        size = request.size
        if request.is_write:
            stats.writes += 1
            stats.bytes_written += size
        else:
            stats.reads += 1
            stats.bytes_read += size
        if request.priority == Priority.DEMAND:
            stats.demand_bytes += size
        else:
            stats.background_bytes += size
        on_complete = request.on_complete
        pool = self._req_pool
        if pool is not None and len(pool) < self._REQ_POOL_CAP:
            # recycle before the callback runs: the callback may submit
            # again (and re-acquire this very object) but can never read
            # the completed request — its payload is already in locals.
            request.on_complete = None
            request.span = None
            pool.append(request)
        if on_complete is not None:
            on_complete(now)
        if ((self._demand_queue or self._background_queue)
                and self._inflight < self.pipeline_depth):
            self._try_issue_turbo()

    def _complete_fast(self, size: int, is_write: bool, is_demand: bool,
                       on_complete) -> None:
        """Completion twin of ``_complete`` for fast-path chunks (no
        request object to stamp)."""
        self._inflight -= 1
        stats = self.stats
        if is_write:
            stats.writes += 1
            stats.bytes_written += size
        else:
            stats.reads += 1
            stats.bytes_read += size
        if is_demand:
            stats.demand_bytes += size
        else:
            stats.background_bytes += size
        if on_complete is not None:
            on_complete(self._engine.now)
        if self._demand_queue or self._background_queue:
            self._try_issue()

    def _complete(self, request: DRAMRequest) -> None:
        request.completed_at = self._engine.now
        self._inflight -= 1
        if request.is_write:
            self.stats.writes += 1
            self.stats.bytes_written += request.size
        else:
            self.stats.reads += 1
            self.stats.bytes_read += request.size
        if request.priority == Priority.DEMAND:
            self.stats.demand_bytes += request.size
        else:
            self.stats.background_bytes += request.size
        if request.on_complete is not None:
            request.on_complete(self._engine.now)
        self._try_issue()
