"""One DRAM channel: request queues, an FR-FCFS-style scheduler and a
shared data bus.

The model is event-driven rather than cycle-stepped: when the scheduler
picks a request it computes, from the bank's row-buffer state and the
bus's next free time, when the transfer completes, and schedules that
completion on the engine.  A small in-flight window (``pipeline_depth``)
lets the next request's bank preparation overlap the current burst, so
back-to-back row hits stream at full bus utilisation while row conflicts
serialise on the bank — the two effects the evaluation depends on.

Scheduling policy (FR-FCFS with priority classes): demand requests beat
background (swap/migration) traffic; within a class, row-buffer hits are
preferred; ties go to the oldest request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.dram.bank import Bank
from repro.dram.request import DRAMRequest, Priority
from repro.dram.timing import DRAMTimings
from repro.sim.engine import Engine


@dataclass
class ChannelStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    demand_bytes: int = 0
    background_bytes: int = 0
    bus_busy_cycles: float = 0.0
    total_queue_wait: float = 0.0
    max_queue_depth: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def mean_queue_wait(self) -> float:
        return self.total_queue_wait / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero every counter (used for warmup discarding)."""
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.demand_bytes = 0
        self.background_bytes = 0
        self.bus_busy_cycles = 0.0
        self.total_queue_wait = 0.0
        self.max_queue_depth = 0


class Channel:
    """A single channel of one memory device."""

    #: how many scheduled-but-incomplete requests may overlap; sized to
    #: the paper's 32-entry per-channel queues so all 8 banks of a
    #: channel can be preparing rows while the bus streams data.
    pipeline_depth = 16
    #: FR-FCFS lookahead: only this many of the oldest requests per
    #: priority class are considered for row-hit reordering (a real
    #: scheduler's window is similarly bounded; this also keeps the pick
    #: cost O(window) under deep backlogs).
    scheduler_window = 32

    def __init__(self, engine: Engine, timings: DRAMTimings) -> None:
        self._engine = engine
        self._t = timings
        self._banks = [Bank(timings) for _ in range(timings.banks)]
        self._demand_queue: Deque[DRAMRequest] = deque()
        self._background_queue: Deque[DRAMRequest] = deque()
        self._bus_free: float = 0.0
        self._inflight = 0
        self._picks = 0
        self.refreshes = 0
        self.stats = ChannelStats()
        #: conversion factor and per-size burst durations, cached off the
        #: timing properties — ``_issue`` runs once per DRAM request and
        #: the formulas are pure in ``size``.
        self._cpm = timings.cpu_cycles_per_mem
        self._burst_cpu_cycles: dict = {}
        if timings.t_refi > 0:
            engine.schedule(timings.t_refi * self._cpm, self._refresh)

    def _refresh(self) -> None:
        """All-bank refresh: every bank precharges and is unavailable
        for tRFC (only modelled when the device enables t_refi).

        Note: the refresh chain reschedules itself forever, so an
        engine driving a refresh-enabled device never drains — run it
        with a horizon (``engine.run(until=...)``) or via ``System.run``
        (which stops when the cores finish)."""
        cpm = self._cpm
        done = self._engine.now + self._t.t_rfc * cpm
        for bank in self._banks:
            bank.open_row = None
            bank.ready = max(bank.ready, done)
        self.refreshes += 1
        self._engine.schedule(self._t.t_refi * cpm, self._refresh)

    #: how many demand requests are served for each background request
    #: when both queues are non-empty.  Background (swap/migration/
    #: writeback) traffic is deprioritised but NOT starved: migration
    #: bandwidth competing with demand is the effect the paper's
    #: PoM-vs-subblocking comparison rests on.
    background_share = 4

    def submit(self, request: DRAMRequest) -> None:
        """Enqueue a request; it completes via ``request.on_complete``."""
        queue = (self._demand_queue if request.priority == Priority.DEMAND
                 else self._background_queue)
        queue.append(request)
        depth = len(self._demand_queue) + len(self._background_queue)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        self._try_issue()

    @property
    def queue_depth(self) -> int:
        return len(self._demand_queue) + len(self._background_queue)

    def bank(self, index: int) -> Bank:
        return self._banks[index]

    # ------------------------------------------------------------------
    def _try_issue(self) -> None:
        while ((self._demand_queue or self._background_queue)
               and self._inflight < self.pipeline_depth):
            request = self._pick()
            self._issue(request)

    #: oldest-request age (CPU cycles) beyond which FR-FCFS stops
    #: reordering past it — the standard starvation cap that keeps an
    #: endlessly row-hitting stream from blocking a row-miss forever.
    #: Loose enough that it only fires on genuine starvation, not on
    #: ordinary backlog (row batching is what keeps conflict-heavy
    #: streams from spiralling).
    starvation_cap = 2500.0

    def _pick(self) -> DRAMRequest:
        """FR-FCFS within the scheduler window.  Demand is preferred over
        background traffic at a ``background_share`` ratio, so migrations
        are delayed under load but still consume real bandwidth."""
        if not self._demand_queue:
            queue = self._background_queue
        elif not self._background_queue:
            queue = self._demand_queue
        else:
            self._picks += 1
            if self._picks % (self.background_share + 1) == 0:
                queue = self._background_queue
            else:
                queue = self._demand_queue
        best_index = 0
        if self._engine.now - queue[0].arrival < self.starvation_cap:
            limit = min(len(queue), self.scheduler_window)
            for i in range(limit):
                req = queue[i]
                if self._banks[req.coords.bank].open_row == req.coords.row:
                    best_index = i
                    break
        best = queue[best_index]
        del queue[best_index]
        return best

    def _issue(self, request: DRAMRequest) -> None:
        now = self._engine.now
        bank = self._banks[request.coords.bank]
        data_ready = bank.prepare(request.coords.row, now)
        data_start = max(data_ready, self._bus_free)
        burst = self._burst_cpu_cycles.get(request.size)
        if burst is None:
            burst = self._t.burst_mem_cycles(request.size) * self._cpm
            self._burst_cpu_cycles[request.size] = burst
        completion = data_start + burst
        self._bus_free = completion
        self._inflight += 1
        self.stats.bus_busy_cycles += burst
        self.stats.total_queue_wait += data_start - request.arrival
        if request.span is not None:
            # attribute the queue/service split to the sampled request:
            # everything before the data starts moving (bank preparation,
            # bus contention, scheduler backlog) is queueing, the burst
            # itself is service
            request.span.add_dram(data_start - request.arrival, burst)
        self._engine.schedule_at(completion, self._complete, request)

    def _complete(self, request: DRAMRequest) -> None:
        request.completed_at = self._engine.now
        self._inflight -= 1
        if request.is_write:
            self.stats.writes += 1
            self.stats.bytes_written += request.size
        else:
            self.stats.reads += 1
            self.stats.bytes_read += request.size
        if request.priority == Priority.DEMAND:
            self.stats.demand_bytes += request.size
        else:
            self.stats.background_bytes += request.size
        if request.on_complete is not None:
            request.on_complete(self._engine.now)
        self._try_issue()
