"""Physical-address to DRAM-coordinate mapping.

Device-local addresses (offsets within one memory device) are interleaved
across channels at 64 B granularity — the standard choice for spreading a
miss stream over all channels — then across banks at row granularity so
that sequential rows land in different banks:

    addr bits:  | row | bank | row-offset-within-channel | channel | 6b |

The mapper is shared by both devices; geometry comes from the device's
:class:`~repro.dram.timing.DRAMTimings`.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.dram.timing import DRAMTimings

CHANNEL_INTERLEAVE_BYTES = 64


class DRAMCoordinates(NamedTuple):
    """Where a device-local address lands.

    A named tuple rather than a dataclass: one is built per chunk of
    every device access, and tuple construction is the cheapest
    immutable record CPython offers.
    """

    channel: int
    bank: int
    row: int
    column_offset: int


class AddressMapper:
    """Maps device-local byte addresses to (channel, bank, row)."""

    def __init__(self, timings: DRAMTimings) -> None:
        self._channels = timings.channels
        self._banks = timings.banks
        self._row_bytes = timings.row_bytes

    def map(self, addr: int) -> DRAMCoordinates:
        if addr < 0:
            raise ValueError(f"negative device address {addr}")
        unit = addr // CHANNEL_INTERLEAVE_BYTES
        channel = unit % self._channels
        within_channel = unit // self._channels * CHANNEL_INTERLEAVE_BYTES + (
            addr % CHANNEL_INTERLEAVE_BYTES
        )
        row_index = within_channel // self._row_bytes
        bank = row_index % self._banks
        row = row_index // self._banks
        return DRAMCoordinates(
            channel=channel,
            bank=bank,
            row=row,
            column_offset=within_channel % self._row_bytes,
        )
