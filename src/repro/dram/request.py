"""Request objects exchanged with the DRAM substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Optional

from repro.dram.mapping import DRAMCoordinates


class Priority(IntEnum):
    """Scheduling class.  Demand requests (LLC misses on the critical
    path) beat background traffic (swaps, migrations, writebacks)."""

    DEMAND = 0
    BACKGROUND = 1


@dataclass(slots=True)
class DRAMRequest:
    """One channel-level transfer (at most one interleave unit, 64 B)."""

    addr: int
    size: int
    is_write: bool
    priority: Priority
    arrival: float
    coords: DRAMCoordinates
    on_complete: Optional[Callable[[float], None]] = None
    completed_at: float = field(default=-1.0)
    #: span of the sampled memory request this transfer serves (see
    #: :mod:`repro.telemetry.spans`); None on unsampled traffic, so the
    #: channel's attribution hook is one ``is None`` check.
    span: Optional[object] = None

    @property
    def done(self) -> bool:
        return self.completed_at >= 0.0
