"""A complete memory device: channels + address interleaving.

Accesses larger than one interleave unit (64 B) are split into chunks
that land on successive channels; the completion callback fires when the
last chunk finishes.  This is how a 2 KB PoM migration naturally spreads
over (and saturates) all channels.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dram.channel import Channel, ChannelStats
from repro.dram.mapping import CHANNEL_INTERLEAVE_BYTES, AddressMapper, DRAMCoordinates
from repro.dram.request import DRAMRequest, Priority
from repro.dram.timing import DRAMTimings
from repro.sim import faults
from repro.sim.engine import Engine


class MemoryDevice:
    """One of the flat memory's two levels (NM or FM)."""

    def __init__(self, engine: Engine, timings: DRAMTimings, capacity_bytes: int,
                 name: Optional[str] = None,
                 metadata_base: Optional[int] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if metadata_base is not None and not 0 < metadata_base < capacity_bytes:
            raise ValueError("metadata_base must fall inside the device")
        self._engine = engine
        self.timings = timings
        self.capacity_bytes = capacity_bytes
        self.name = name or timings.name
        self._mapper = AddressMapper(timings)
        self.channels = [Channel(engine, timings) for _ in range(timings.channels)]
        #: accesses at or beyond ``metadata_base`` are routed to a
        #: dedicated metadata channel (the paper stores remap metadata in
        #: a separate channel for row-buffer locality and to keep it out
        #: of the data channels' way — Section III-D).
        self.metadata_base = metadata_base
        self.meta_channel = Channel(engine, timings) if metadata_base else None
        #: geometry cached as plain ints for the batch fast path (the
        #: mapper's method-call-per-chunk cost is what it avoids).
        self._nchan = timings.channels
        self._banks_per_ch = timings.banks
        self._row_bytes = timings.row_bytes

    # ------------------------------------------------------------------
    def access(self, addr: int, size: int, is_write: bool,
               priority: Priority = Priority.DEMAND,
               on_complete: Optional[Callable[[float], None]] = None,
               span=None) -> None:
        """Issue a device access of ``size`` bytes at device-local ``addr``.

        ``on_complete(time)`` fires once, after every chunk has finished.
        ``span``, when given, rides every chunk so the channels can
        attribute queue vs service cycles to the sampled request.
        """
        if not 0 <= addr < self.capacity_bytes:
            raise ValueError(
                f"address {addr:#x} outside {self.name} capacity "
                f"{self.capacity_bytes:#x}"
            )
        if size <= 0:
            raise ValueError("size must be positive")
        if addr + size > self.capacity_bytes:
            raise ValueError("access crosses end of device")

        if self.metadata_base is not None and addr >= self.metadata_base:
            self._access_metadata(addr, size, is_write, priority,
                                  on_complete, span)
            return

        # Fast path: the access fits in one interleave unit (the common
        # case — demand subblock reads), so there is exactly one chunk
        # and ``on_complete`` can ride on the request directly instead
        # of going through a countdown closure.
        if addr % CHANNEL_INTERLEAVE_BYTES + size <= CHANNEL_INTERLEAVE_BYTES:
            coords = self._mapper.map(addr)
            request = DRAMRequest(
                addr=addr,
                size=size,
                is_write=is_write,
                priority=priority,
                arrival=self._engine.now,
                coords=coords,
                on_complete=on_complete,
                span=span,
            )
            self.channels[coords.channel].submit(request)
            return

        chunks = self._chunks(addr, size)
        remaining = len(chunks)

        def chunk_done(when: float) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and on_complete is not None:
                on_complete(when)

        for chunk_addr, chunk_size in chunks:
            coords = self._mapper.map(chunk_addr)
            request = DRAMRequest(
                addr=chunk_addr,
                size=chunk_size,
                is_write=is_write,
                priority=priority,
                arrival=self._engine.now,
                coords=coords,
                on_complete=chunk_done,
                span=span,
            )
            self.channels[coords.channel].submit(request)

    # ------------------------------------------------------------------
    def access_fast(self, addr: int, size: int, is_write: bool,
                    is_demand: bool,
                    on_complete: Optional[Callable[[float], None]]) -> bool:
        """Batch-engine fast path: issue this access through the
        channels' fast paths, skipping ``DRAMRequest`` construction and
        the scheduler queues.

        Returns False — without touching any state — when a target
        channel cannot take the access immediately (its queues are
        non-empty or its pipeline is full); the caller then falls back
        to :meth:`access`, whose queued path it would have taken in
        scalar mode too.  Timing, stats, and event order are identical
        either way (gated by tests/integration/test_batch_equivalence).
        """
        if not 0 <= addr < self.capacity_bytes:
            raise ValueError(
                f"address {addr:#x} outside {self.name} capacity "
                f"{self.capacity_bytes:#x}"
            )
        if size <= 0:
            raise ValueError("size must be positive")
        if addr + size > self.capacity_bytes:
            raise ValueError("access crosses end of device")

        if self.metadata_base is not None and addr >= self.metadata_base:
            offset = addr - self.metadata_base
            group = offset // 32
            banks = self._banks_per_ch
            groups_per_row = self._row_bytes // 32
            return self.meta_channel.submit_fast(
                group % banks, group // banks // groups_per_row,
                size, is_write, is_demand, on_complete)

        nchan = self._nchan
        row_bytes = self._row_bytes
        banks = self._banks_per_ch
        if addr % CHANNEL_INTERLEAVE_BYTES + size <= CHANNEL_INTERLEAVE_BYTES:
            unit = addr // CHANNEL_INTERLEAVE_BYTES
            within = (unit // nchan * CHANNEL_INTERLEAVE_BYTES
                      + addr % CHANNEL_INTERLEAVE_BYTES)
            row_index = within // row_bytes
            return self.channels[unit % nchan].submit_fast(
                row_index % banks, row_index // banks,
                size, is_write, is_demand, on_complete)

        # multi-chunk: group the chunks per channel (order preserved
        # within each channel — that is the order the bus chain and the
        # bank CAS chains serialize in; interleaving *between* channels
        # carries no timing state).  Completion events are scheduled in
        # the *global* chunk order afterwards: equal-time completions on
        # different channels must fire in the same order the scalar
        # submit loop would have scheduled them, or downstream ties
        # (MSHR release draining, core wakeups) resolve differently.
        per_channel: dict = {}
        order = []  # (channel index, position within its group) per chunk
        for chunk_addr, chunk_size in self._chunks(addr, size):
            unit = chunk_addr // CHANNEL_INTERLEAVE_BYTES
            within = (unit // nchan * CHANNEL_INTERLEAVE_BYTES
                      + chunk_addr % CHANNEL_INTERLEAVE_BYTES)
            row_index = within // row_bytes
            group = per_channel.setdefault(unit % nchan, [])
            order.append((unit % nchan, len(group)))
            group.append((row_index % banks, row_index // banks, chunk_size))
        channels = self.channels
        for index, group in per_channel.items():
            if not channels[index].can_accept_fast(len(group)):
                # all-or-nothing: a partially fast-issued access could
                # not be rolled back into the queued path.
                return False
        if on_complete is None:
            chunk_done = None
        else:
            remaining = len(order)

            def chunk_done(when: float) -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    on_complete(when)

        times = {index: channels[index].issue_window(group)
                 for index, group in per_channel.items()}
        schedule_at = self._engine.schedule_at
        for index, pos in order:
            channel = channels[index]
            schedule_at(times[index][pos], channel._complete_fast,
                        per_channel[index][pos][2], is_write, is_demand,
                        chunk_done)
        return True

    def access_turbo(self, addr: int, size: int, is_write: bool,
                     is_demand: bool,
                     on_complete: Optional[Callable[[float], None]]) -> None:
        """Batch-mode single dispatcher: one bounds check, one mapping,
        then the fused fast or queued path in this same frame.

        Semantically ``access_fast(...) or access(...)`` — the pattern
        the batch controller used per op — but with the channel's
        ``submit_fast``/``_submit_turbo`` bodies inlined and queued
        requests drawn from the channel's recycle pool, so one device op
        costs zero allocations and at most one further call
        (``_try_issue_turbo`` when the channel is backlogged).  The
        metadata channel's 32 B-group interleave (``_access_metadata``'s
        layout) is resolved here too, which matters for SILC-FM: its
        remap-entry fetches are roughly one per miss.  Only called on
        turbo-enabled channels (batch runs); timing, stats, and event
        order are bit-identical to the scalar path, gated by
        tests/integration/test_batch_equivalence.py.
        """
        engine = self._engine
        mb = self.metadata_base
        cap = self.capacity_bytes
        if (mb is None or addr < mb) and 0 <= addr and addr + size <= cap \
                and addr % CHANNEL_INTERLEAVE_BYTES + size \
                <= CHANNEL_INTERLEAVE_BYTES and size > 0:
            nchan = self._nchan
            unit = addr // CHANNEL_INTERLEAVE_BYTES
            within = (unit // nchan * CHANNEL_INTERLEAVE_BYTES
                      + addr % CHANNEL_INTERLEAVE_BYTES)
            row_bytes = self._row_bytes
            row_index = within // row_bytes
            banks = self._banks_per_ch
            chan_no = unit % nchan
            channel = self.channels[chan_no]
            bank_index = row_index % banks
            row = row_index // banks
            column = within % row_bytes
        elif (mb is not None and addr >= mb and addr + size <= cap
              and size > 0):
            # dedicated metadata channel: 32 B groups interleaved across
            # its banks (one congruence set per group; serial scans of a
            # set stay in one row, hot sets spread across banks).
            offset = addr - mb
            group = offset // 32
            banks = self._banks_per_ch
            groups_per_row = self._row_bytes // 32
            chan_no = 0
            channel = self.meta_channel
            bank_index = group % banks
            row = group // banks // groups_per_row
            column = (group // banks % groups_per_row) * 32 + offset % 32
        else:
            # multi-chunk or out-of-range (the existing paths raise the
            # same errors the scalar engine would)
            if not self.access_fast(addr, size, is_write, is_demand,
                                    on_complete):
                self.access(addr, size, is_write,
                            Priority.DEMAND if is_demand
                            else Priority.BACKGROUND,
                            on_complete)
            return
        dq = channel._demand_queue
        bq = channel._background_queue
        if dq or bq or channel._inflight >= channel.pipeline_depth:
            # queued: pooled request, then ``_submit_turbo`` inline.
            priority = Priority.DEMAND if is_demand else Priority.BACKGROUND
            pool = channel._req_pool
            if pool:
                request = pool.pop()
                request.addr = addr
                request.size = size
                request.is_write = is_write
                request.priority = priority
                request.arrival = engine.now
                request.coords = DRAMCoordinates(chan_no, bank_index, row,
                                                 column)
                request.on_complete = on_complete
                request.completed_at = -1.0
            else:
                request = DRAMRequest(
                    addr=addr, size=size, is_write=is_write,
                    priority=priority, arrival=engine.now,
                    coords=DRAMCoordinates(chan_no, bank_index, row, column),
                    on_complete=on_complete)
            (dq if priority == Priority.DEMAND else bq).append(request)
            depth = len(dq) + len(bq)
            stats = channel.stats
            if depth > stats.max_queue_depth:
                stats.max_queue_depth = depth
            if channel._inflight < channel.pipeline_depth:
                channel._try_issue_turbo()
            return
        # eligible: ``submit_fast`` inline (Bank.prepare through the
        # precomputed cpm-scaled turbo latencies — identical floats).
        stats = channel.stats
        if stats.max_queue_depth < 1:
            stats.max_queue_depth = 1
        now = engine.now
        if faults.ACTIVE is not None:
            data_ready = faults.bank_prepare(
                channel._banks[bank_index], row, now)
        else:
            bank = channel._banks[bank_index]
            ready = bank.ready
            start = now if now > ready else ready
            open_row = bank.open_row
            bank_stats = bank.stats
            if open_row == row:
                bank_stats.row_hits += 1
                cas_at = start
            elif open_row is None:
                bank_stats.row_closed += 1
                bank._activated_at = start
                cas_at = start + channel._turbo_rcd
            else:
                bank_stats.row_conflicts += 1
                precharge_at = bank._activated_at + channel._turbo_ras
                if start > precharge_at:
                    precharge_at = start
                activate_at = precharge_at + channel._turbo_rp
                bank._activated_at = activate_at
                cas_at = activate_at + channel._turbo_rcd
            bank.open_row = row
            bank.ready = cas_at + channel._turbo_ccd
            data_ready = cas_at + channel._turbo_cas
        bus_free = channel._bus_free
        data_start = data_ready if data_ready > bus_free else bus_free
        burst = channel._burst_cpu_cycles.get(size)
        if burst is None:
            burst = channel._t.burst_mem_cycles(size) * channel._cpm
            channel._burst_cpu_cycles[size] = burst
        completion = data_start + burst
        channel._bus_free = completion
        channel._inflight += 1
        stats.bus_busy_cycles += burst
        stats.total_queue_wait += data_start - now
        engine._push(completion, channel._complete_fast_bound,
                     (size, is_write, is_demand, on_complete))

    def _access_metadata(self, addr: int, size: int, is_write: bool,
                         priority: Priority,
                         on_complete: Optional[Callable[[float], None]],
                         span=None) -> None:
        """One request on the dedicated metadata channel.

        Layout: 32 B groups (one congruence set's remap entries) are
        interleaved across the channel's banks, so a serial scan of one
        set's entries stays in one row while *different* hot sets hit
        different banks in parallel — without this the channel would be
        tCCD-bound on a single bank.
        """
        offset = addr - self.metadata_base
        group = offset // 32
        banks = self.timings.banks
        groups_per_row = self.timings.row_bytes // 32
        coords = DRAMCoordinates(
            channel=0,
            bank=group % banks,
            row=group // banks // groups_per_row,
            column_offset=(group // banks % groups_per_row) * 32 + offset % 32,
        )
        request = DRAMRequest(
            addr=addr,
            size=size,
            is_write=is_write,
            priority=priority,
            arrival=self._engine.now,
            coords=coords,
            on_complete=on_complete,
            span=span,
        )
        self.meta_channel.submit(request)

    @staticmethod
    def _chunks(addr: int, size: int):
        """Split [addr, addr+size) at interleave-unit boundaries."""
        chunks = []
        end = addr + size
        while addr < end:
            boundary = (addr // CHANNEL_INTERLEAVE_BYTES + 1) * CHANNEL_INTERLEAVE_BYTES
            chunk_end = min(end, boundary)
            chunks.append((addr, chunk_end - addr))
            addr = chunk_end
        return chunks

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def attach_telemetry(self, hub) -> None:
        """Per-channel probes: instantaneous queue depth (gauge) and
        bus-busy cycles (meter — the per-window delta divided by the
        sample's ``dt`` is that window's bus utilisation).  Device-level
        byte meters summarise the split the channels share.
        """
        def probe_channel(label: str, channel: Channel) -> None:
            hub.gauge(f"{label}.queue_depth",
                      lambda: float(channel.queue_depth), trace=True)
            hub.meter(f"{label}.busy_cycles",
                      lambda: channel.stats.bus_busy_cycles)
            hub.meter(f"{label}.bytes",
                      lambda: channel.stats.bytes_total)

        for i, channel in enumerate(self.channels):
            probe_channel(f"{self.name}.ch{i}", channel)
        if self.meta_channel is not None:
            probe_channel(f"{self.name}.meta", self.meta_channel)
        hub.meter(f"{self.name}.demand_bytes",
                  lambda: sum(c.stats.demand_bytes for c in self.channels))
        hub.meter(f"{self.name}.background_bytes",
                  lambda: sum(c.stats.background_bytes for c in self.channels))

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    def stats(self) -> ChannelStats:
        total = ChannelStats()
        extra = [self.meta_channel] if self.meta_channel is not None else []
        for channel in self.channels + extra:
            s = channel.stats
            total.reads += s.reads
            total.writes += s.writes
            total.bytes_read += s.bytes_read
            total.bytes_written += s.bytes_written
            total.demand_bytes += s.demand_bytes
            total.background_bytes += s.background_bytes
            total.bus_busy_cycles += s.bus_busy_cycles
            total.total_queue_wait += s.total_queue_wait
            total.max_queue_depth = max(total.max_queue_depth, s.max_queue_depth)
        return total

    def utilization(self, elapsed_cycles: float) -> float:
        """Mean data-bus utilisation across channels over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        busy = sum(c.stats.bus_busy_cycles for c in self.channels)
        return busy / (elapsed_cycles * len(self.channels))
