"""Per-bank row-buffer state machine (open-page policy)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import DRAMTimings


@dataclass
class BankStats:
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_closed + self.row_conflicts

    @property
    def row_hit_rate(self) -> float:
        total = self.accesses
        return self.row_hits / total if total else 0.0


class Bank:
    """One DRAM bank under an open-page policy.

    The bank tracks which row its row buffer holds, when it can start
    its next operation, and when the current row was activated (so a
    precharge respects tRAS).  All times are CPU cycles.
    """

    def __init__(self, timings: DRAMTimings) -> None:
        self._t = timings
        self.open_row: Optional[int] = None
        #: earliest CPU-cycle time the bank can accept its next command
        #: (successive CAS to an open row pipeline at the column-to-
        #: column gap; only activates/precharges occupy the bank long).
        self.ready: float = 0.0
        self._activated_at: float = float("-inf")
        self.stats = BankStats()

    def prepare(self, row: int, now: float) -> float:
        """Account for opening ``row`` and return the CPU-cycle time at
        which column data can start moving.

        Row hit: tCAS, and back-to-back hits pipeline — the next CAS can
        issue one column-to-column gap (~= tCCD, approximated by the
        burst) later, so a hot row streams at bus rate.  Closed bank:
        tRCD + tCAS.  Conflict: wait out tRAS, then tRP + tRCD + tCAS.
        """
        cpm = self._t.cpu_cycles_per_mem
        start = max(now, self.ready)
        if self.open_row == row:
            self.stats.row_hits += 1
            cas_at = start
        elif self.open_row is None:
            self.stats.row_closed += 1
            self._activated_at = start
            cas_at = start + self._t.t_rcd * cpm
        else:
            self.stats.row_conflicts += 1
            precharge_at = max(start, self._activated_at + self._t.t_ras * cpm)
            activate_at = precharge_at + self._t.t_rp * cpm
            self._activated_at = activate_at
            cas_at = activate_at + self._t.t_rcd * cpm
        self.open_row = row
        # the bank can take its next CAS one column gap (tCCD) after
        # this one, so an open row streams at the bus rate.
        self.ready = cas_at + self._t.t_ccd * cpm
        return cas_at + self._t.t_cas * cpm

    # ------------------------------------------------------------------
    # two-tier clock support (repro.sim.window / repro.dram.batch): the
    # closed-form window evaluator advances bank state in window-sized
    # steps; these helpers make that an explicit, tested protocol
    # instead of ad-hoc attribute pokes.
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """The complete timing state ``prepare`` reads or writes —
        ``(open_row, ready, activated_at)``.  Counters are excluded:
        they accumulate monotonically and are never rolled back."""
        return (self.open_row, self.ready, self._activated_at)

    def restore(self, state: tuple) -> None:
        """Reinstate a :meth:`snapshot` — exact, including the float
        bit patterns (the tuple holds the original objects)."""
        self.open_row, self.ready, self._activated_at = state

    def prepare_window(self, row: int, count: int, now: float) -> list:
        """Advance-by-window: fold ``count`` same-row accesses arriving
        together at ``now`` and return each access's data-ready time.

        Bit-identical to ``count`` sequential :meth:`prepare` calls:
        after the first access the row is open and the bank's ready
        time (one tCCD past the last CAS) always exceeds ``now``, so
        every later access is a row hit whose CAS is the previous CAS
        plus one column gap.  That ``cas += ccd`` chain is replayed
        with ``np.add.accumulate`` — a strictly left-to-right scan, so
        the float rounding matches the scalar loop exactly (a closed
        form ``cas1 + i*ccd`` would not, float addition being
        non-associative).
        """
        cpm = self._t.cpu_cycles_per_mem
        ccd = self._t.t_ccd * cpm
        cas_extra = self._t.t_cas * cpm
        start = max(now, self.ready)
        if self.open_row == row:
            self.stats.row_hits += 1
            cas1 = start
        elif self.open_row is None:
            self.stats.row_closed += 1
            self._activated_at = start
            cas1 = start + self._t.t_rcd * cpm
        else:
            self.stats.row_conflicts += 1
            precharge_at = max(start,
                               self._activated_at + self._t.t_ras * cpm)
            activate_at = precharge_at + self._t.t_rp * cpm
            self._activated_at = activate_at
            cas_at = activate_at + self._t.t_rcd * cpm
            cas1 = cas_at
        self.open_row = row
        rest = count - 1
        if rest == 0:
            self.ready = cas1 + ccd
            return [cas1 + cas_extra]
        import numpy as np

        self.stats.row_hits += rest
        steps = np.empty(count, dtype=np.float64)
        steps[0] = cas1
        steps[1:] = ccd
        cas = np.add.accumulate(steps)
        ready = cas + cas_extra
        self.ready = float(cas[rest]) + ccd
        return [float(r) for r in ready]
