"""DRAM timing parameters (the paper's Table II, HBM and DDR3 sections).

Timings are expressed in *memory* cycles at the device bus frequency; the
channel model converts them to CPU cycles using ``cpu_cycles_per_mem``.
Both the paper's devices run their buses at 800 MHz (DDR, 1.6 GT/s) under
a 3.2 GHz core, i.e. 4 CPU cycles per memory cycle.

The exact tCAS-tRCD-tRP-tRAS digits are cut off in the archived paper
text; we use JEDEC-typical values for DDR3-1600 (11-11-11-28) and
slightly tighter ones for HBM2 (the paper notes NM's "slightly reduced
access latency"), which preserves the latency relation the evaluation
depends on.  Bandwidth comes from bus width x channels: 8 x 128-bit HBM
channels vs 4 x 64-bit DDR3 channels = the 4:1 NM:FM ratio.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """Timing and geometry for one memory device type."""

    name: str
    bus_mhz: float = 800.0
    #: data bus width per channel, in bits (DDR: two transfers/cycle)
    bus_bits: int = 64
    channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    #: Scaled with overall capacity: the paper's devices use 8 KB rows
    #: over gigabyte capacities; at megabyte simulation scale an 8 KB
    #: row would cover a 512x larger *fraction* of memory than in the
    #: paper, collapsing hot sets into a handful of rows per bank.  1 KB
    #: keeps rows-per-bank in a realistic regime.
    row_bytes: int = 1024
    #: column access latency (memory cycles)
    t_cas: int = 11
    #: RAS-to-CAS delay
    t_rcd: int = 11
    #: row precharge
    t_rp: int = 11
    #: row active time (min cycles a row stays open before precharge)
    t_ras: int = 28
    #: column-to-column command gap (CAS pipelining floor)
    t_ccd: int = 4
    #: refresh interval in memory cycles (0 = refresh disabled).  Real
    #: devices refresh every ~7.8 us; the run lengths simulated here are
    #: short enough that refresh is a second-order effect, so it is off
    #: by default and available for sensitivity studies.
    t_refi: int = 0
    #: refresh cycle time (all banks unavailable) in memory cycles.
    t_rfc: int = 88
    cpu_ghz: float = 3.2

    def __post_init__(self) -> None:
        if self.bus_bits % 8:
            raise ValueError("bus width must be a whole number of bytes")
        if self.row_bytes <= 0 or self.channels <= 0 or self.banks_per_rank <= 0:
            raise ValueError("device geometry must be positive")

    # ------------------------------------------------------------------
    @property
    def cpu_cycles_per_mem(self) -> float:
        """CPU cycles per memory-bus cycle."""
        return self.cpu_ghz * 1000.0 / self.bus_mhz

    @property
    def banks(self) -> int:
        """Total banks per channel."""
        return self.ranks_per_channel * self.banks_per_rank

    def burst_mem_cycles(self, size_bytes: int) -> float:
        """Bus occupancy of a ``size_bytes`` transfer, in memory cycles.

        DDR signalling moves ``bus_bits / 8 * 2`` bytes per bus cycle.
        Transfers shorter than one beat still occupy a full beat.
        """
        bytes_per_cycle = self.bus_bits // 8 * 2
        cycles = size_bytes / bytes_per_cycle
        return max(cycles, 1.0)

    def peak_bandwidth_gbs(self) -> float:
        """Aggregate peak bandwidth across all channels, in GB/s."""
        per_channel = self.bus_mhz * 1e6 * (self.bus_bits / 8) * 2
        return per_channel * self.channels / 1e9

    # latency components in CPU cycles -----------------------------------
    def row_hit_cycles(self) -> float:
        return self.t_cas * self.cpu_cycles_per_mem

    def row_closed_cycles(self) -> float:
        return (self.t_rcd + self.t_cas) * self.cpu_cycles_per_mem

    def row_conflict_cycles(self) -> float:
        return (self.t_rp + self.t_rcd + self.t_cas) * self.cpu_cycles_per_mem


#: Die-stacked HBM generation 2 (Table II "HBM"): 8 channels, 128-bit,
#: 800 MHz DDR -> 204.8 GB/s peak.
HBM2_TIMINGS = DRAMTimings(
    name="hbm2",
    bus_bits=128,
    channels=8,
    banks_per_rank=16,
    t_cas=10,
    t_rcd=10,
    t_rp=10,
    t_ras=24,
    t_ccd=2,
)

#: Off-chip DDR3-1600 (Table II "DDR3"): 4 channels, 64-bit -> 51.2 GB/s.
DDR3_TIMINGS = DRAMTimings(
    name="ddr3",
    bus_bits=64,
    channels=4,
    t_cas=11,
    t_rcd=11,
    t_rp=11,
    t_ras=28,
)
