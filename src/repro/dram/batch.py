"""Vectorized DRAM timing over request windows (the batch engine's
channel-level kernel).

``window_timing`` computes the completion time of an *ordered* window of
chunks on one channel — the multi-chunk shape a swap or migration
produces — and applies the same bank/bus/stats state updates that
issuing the chunks one at a time through the channel fast path would.
The contract is **bit-identical** timing:

* per-bank CAS chains are folded by the bank's advance-by-window helper
  (:meth:`repro.dram.bank.Bank.prepare_window`), which vectorizes with
  ``np.add.accumulate`` — a strictly left-to-right scan, so the float
  rounding matches the scalar ``cas += step`` loop exactly (a
  closed-form ``cas1 + i*step`` would *not*, since float addition is
  non-associative);
* the data-bus recurrence ``busy = max(ready_i, busy) + burst_i`` is
  inherently sequential *across* banks, so it stays a scalar loop (the
  window is bounded by ``Channel.pipeline_depth``, so the loop is short);
* every accumulation into ``ChannelStats`` replays the scalar path's
  add-per-chunk order.

Scalar fallback triggers (see ``docs/batch_engine.md``): a window
shorter than ``VECTOR_THRESHOLD``, a bank group whose chunks touch more
than one row (the conflict chain ``precharge/activate/cas`` depends on
``_activated_at`` per step), or an injected fault
(:mod:`repro.sim.faults` hooks the scalar replay only).  The fallback is
the *same math* written per chunk, so eligibility never changes results
— only which code computes them.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim import faults

#: below this many chunks the numpy fixed cost exceeds the scalar loop.
VECTOR_THRESHOLD = 4


def window_timing(channel, chunks: List[Tuple[int, int, int]],
                  now: float) -> List[float]:
    """Time an ordered window of ``(bank_index, row, size)`` chunks.

    Mutates ``channel`` (banks, ``_bus_free``, stats) exactly as the
    equivalent sequence of single-chunk fast-path issues would, and
    returns the per-chunk completion times in window order.
    """
    t = channel._t
    cpm = channel._cpm
    cache = channel._burst_cpu_cycles
    bursts = []
    for _bank, _row, size in chunks:
        burst = cache.get(size)
        if burst is None:
            burst = t.burst_mem_cycles(size) * cpm
            cache[size] = burst
        bursts.append(burst)

    if len(chunks) < VECTOR_THRESHOLD or faults.ACTIVE is not None:
        return _scalar_window(channel, chunks, bursts, now)

    # group chunk indices per bank, preserving window order within each
    groups: dict = {}
    for i, (bank_index, row, _size) in enumerate(chunks):
        groups.setdefault(bank_index, []).append(i)
    for bank_index, members in groups.items():
        first_row = chunks[members[0]][1]
        if any(chunks[i][1] != first_row for i in members[1:]):
            # rows change mid-group: the conflict chain is stateful per
            # step — scalar fallback for the whole window.
            return _scalar_window(channel, chunks, bursts, now)

    data_ready = [0.0] * len(chunks)
    for bank_index, members in groups.items():
        # all-same-row group (checked above): the bank's advance-by-
        # window helper folds the whole chain — first access replays
        # ``prepare``'s branch on the row-buffer state, every later one
        # is a row hit at one column gap, accumulated bit-for-bit.
        bank = channel._banks[bank_index]
        ready = bank.prepare_window(chunks[members[0]][1], len(members),
                                    now)
        for j, member in enumerate(members):
            data_ready[member] = ready[j]

    # bus serialization + stats: sequential in window order (the chain
    # crosses banks and every float add must replay the scalar order).
    stats = channel.stats
    bus_free = channel._bus_free
    completions = []
    for ready_at, burst in zip(data_ready, bursts):
        data_start = ready_at if ready_at > bus_free else bus_free
        bus_free = data_start + burst
        stats.bus_busy_cycles += burst
        stats.total_queue_wait += data_start - now
        completions.append(bus_free)
    channel._bus_free = bus_free
    return completions


def _scalar_window(channel, chunks, bursts, now: float) -> List[float]:
    """Per-chunk replay of the single-chunk fast path (and the hook
    point for injected faults)."""
    banks = channel._banks
    stats = channel.stats
    bus_free = channel._bus_free
    fault = faults.ACTIVE is not None
    completions = []
    for (bank_index, row, _size), burst in zip(chunks, bursts):
        bank = banks[bank_index]
        if fault:
            ready_at = faults.bank_prepare(bank, row, now)
        else:
            ready_at = bank.prepare(row, now)
        data_start = ready_at if ready_at > bus_free else bus_free
        bus_free = data_start + burst
        stats.bus_busy_cycles += burst
        stats.total_queue_wait += data_start - now
        completions.append(bus_free)
    channel._bus_free = bus_free
    return completions
