"""The telemetry hub: named counters, gauges, meters and windowed
time-series sampling.

The hub is a *pull*-based observability layer: components register
signal callbacks once at attach time, and the hub samples them at a
fixed cycle period driven by the simulation engine.  The hot paths of
the simulator therefore carry **zero** telemetry cost beyond the
existing statistics counters they already maintain — when telemetry is
disabled (the default, ``SystemConfig.telemetry_window == 0``) no hub
exists at all, and component-side event probes reduce to a single
``is None`` check.

Signal kinds
------------

counter
    Hub-owned cumulative value bumped with :meth:`Telemetry.incr`
    (used for event counts that no component tracks, e.g. dropped
    trace events).  Sampled as a per-window delta.
gauge
    A callback returning an instantaneous value (queue depth, bypass
    state, predictor accuracy).  Sampled raw.
meter
    A callback returning a *cumulative* value (bytes moved, swaps
    performed).  Sampled as a per-window delta, so the series directly
    shows rates; a backwards jump (warmup statistics reset) clamps the
    delta to zero instead of reporting a negative rate.

Samples are flat ``{"t": ..., "dt": ..., "<signal>": value}`` dicts
held in a bounded ring; when the ring fills, the oldest half either
spills to a JSON-lines file (``spill_path``) or is dropped (the
``spilled_samples`` count is kept either way, so a truncated series is
never mistaken for a complete one).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Engine
from repro.telemetry.tracer import EventTracer

#: bump when the snapshot layout changes (consumed by the series
#: artifacts written next to the executor's result cache).
#: v2: snapshots may carry a ``spans`` latency-attribution sub-object
#: (:mod:`repro.telemetry.spans`) and artifacts a ``run`` metadata
#: header (:func:`repro.telemetry.artifacts.run_metadata`).
TELEMETRY_SCHEMA_VERSION = 2

#: default sampling period, in CPU cycles (the ``--telemetry`` flag's
#: window when ``--telemetry-window`` is not given).
DEFAULT_TELEMETRY_WINDOW = 10_000

#: default ring capacity, in samples.
DEFAULT_RING_CAPACITY = 4096


class TimeSeriesRing:
    """Bounded sample buffer with optional spill-to-disk.

    Appends are O(1); when the buffer reaches ``capacity`` the oldest
    half is evicted — to ``spill_path`` as JSON lines when configured,
    otherwise dropped with only the count retained.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY,
                 spill_path: Optional[str] = None) -> None:
        if capacity < 2:
            raise ValueError("ring capacity must be at least 2")
        self.capacity = capacity
        self.spill_path = spill_path
        self.spilled = 0
        self._samples: List[Dict[str, float]] = []

    def append(self, sample: Dict[str, float]) -> None:
        self._samples.append(sample)
        if len(self._samples) >= self.capacity:
            evicted = self._samples[: self.capacity // 2]
            self._samples = self._samples[self.capacity // 2:]
            self.spilled += len(evicted)
            if self.spill_path is not None:
                with open(self.spill_path, "a") as fh:
                    for line in evicted:
                        fh.write(json.dumps(line) + "\n")

    def samples(self) -> List[Dict[str, float]]:
        """The in-memory (most recent) samples, oldest first."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


class Telemetry:
    """Hub that components publish signals into and the engine samples.

    Parameters
    ----------
    window_cycles:
        Sampling period in CPU cycles.
    ring_capacity / spill_path:
        Ring-buffer sizing; see :class:`TimeSeriesRing`.
    cycles_per_us:
        CPU cycles per microsecond (``frequency_ghz * 1000``); used to
        put Chrome-trace timestamps in real time units.
    max_trace_events:
        Event-trace cap; see :class:`~repro.telemetry.tracer.EventTracer`.
    """

    def __init__(self, window_cycles: int = DEFAULT_TELEMETRY_WINDOW,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 spill_path: Optional[str] = None,
                 cycles_per_us: float = 3200.0,
                 max_trace_events: int = 100_000) -> None:
        if window_cycles <= 0:
            raise ValueError("telemetry window must be a positive cycle count")
        self.window = window_cycles
        self.series = TimeSeriesRing(ring_capacity, spill_path)
        self.tracer = EventTracer(max_events=max_trace_events,
                                  cycles_per_us=cycles_per_us)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._meters: Dict[str, Callable[[], float]] = {}
        self._meter_prev: Dict[str, float] = {}
        self._counter_prev: Dict[str, float] = {}
        self._traced: List[str] = []  # signals mirrored as trace counters
        self._engine: Optional[Engine] = None
        self._last_sample_t: float = 0.0
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # registration (attach time, before the run)
    # ------------------------------------------------------------------
    def gauge(self, name: str, fn: Callable[[], float],
              trace: bool = False) -> None:
        """Register an instantaneous signal; sampled raw each window."""
        self._check_name(name)
        self._gauges[name] = fn
        if trace:
            self._traced.append(name)

    def meter(self, name: str, fn: Callable[[], float],
              trace: bool = False) -> None:
        """Register a cumulative signal; sampled as per-window deltas."""
        self._check_name(name)
        self._meters[name] = fn
        self._meter_prev[name] = 0.0
        if trace:
            self._traced.append(name)

    def _check_name(self, name: str) -> None:
        if name in ("t", "dt"):
            raise ValueError(f"{name!r} is a reserved sample field")
        if name in self._gauges or name in self._meters:
            raise ValueError(f"telemetry signal {name!r} already registered")

    # ------------------------------------------------------------------
    # runtime publishing (hot-path safe: one dict update)
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Bump a hub-owned cumulative counter."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current cumulative value of a hub-owned counter."""
        return self._counters.get(name, 0.0)

    def instant(self, name: str, cat: str = "event", **args: object) -> None:
        """Emit an instant event into the Chrome trace at sim-now."""
        now = self._engine.now if self._engine is not None else 0.0
        self.tracer.instant(name, cat, now, args or None)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def attach(self, engine: Engine,
               while_: Optional[Callable[[], bool]] = None) -> None:
        """Start periodic sampling on ``engine``.

        ``while_`` bounds the sampler's lifetime (e.g. "while any core
        is unfinished"); the engine additionally stops the chain when
        its queue is otherwise empty, so a telemetry-enabled run can
        never livelock on its own sampler.
        """
        self._engine = engine
        self._last_sample_t = engine.now
        engine.schedule_every(self.window, self.sample_now, while_=while_)

    def drain(self) -> Optional[Dict[str, float]]:
        """Flush the final partial window at end of run.

        Guarantees the last ``< window_cycles`` of activity land in the
        series without ever appending a duplicate: when the run halts
        *exactly* on a window boundary the periodic tick has already
        sampled at this cycle, and a second sample here would be a
        zero-width (``dt == 0``) duplicate whose meter deltas are all
        zero.  Idempotent — a second ``drain()`` at the same time is a
        no-op — so every exit path can call it safely.  Returns the
        sample taken, or None when nothing was pending.
        """
        now = self._engine.now if self._engine is not None else 0.0
        if self.samples_taken and now <= self._last_sample_t:
            return None
        return self.sample_now()

    def sample_now(self) -> Dict[str, float]:
        """Take one sample immediately (also used for the final partial
        window at end of run, so no in-flight window is ever lost)."""
        now = self._engine.now if self._engine is not None else 0.0
        sample: Dict[str, float] = {
            "t": now,
            "dt": now - self._last_sample_t,
        }
        for name, fn in self._gauges.items():
            sample[name] = fn()
        for name, fn in self._meters.items():
            value = fn()
            sample[name] = max(0.0, value - self._meter_prev[name])
            self._meter_prev[name] = value
        for name, value in self._counters.items():
            sample[name] = value - self._counter_prev.get(name, 0.0)
            self._counter_prev[name] = value
        self._last_sample_t = now
        self.samples_taken += 1
        self.series.append(sample)
        if self._traced:
            self.tracer.counter("telemetry", now,
                                {name: sample[name] for name in self._traced})
        return sample

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Everything observed, as one JSON-serialisable dict.

        This is what rides inside :class:`repro.cpu.system.RunResult`
        (and therefore the executor's result cache) when telemetry is
        enabled.
        """
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "window_cycles": self.window,
            "samples": self.series.samples(),
            "spilled_samples": self.series.spilled,
            "spill_path": self.series.spill_path,
            "counters": dict(self._counters),
            "events": self.tracer.events(),
            "dropped_events": self.tracer.dropped,
        }
