"""Per-request span tracing: where did a miss's cycles actually go?

Windowed counters (:mod:`repro.telemetry.hub`) say *how much* traffic
each component moved; they cannot say *where one request's latency came
from* — the decomposition behind the paper's Figure 6 latency breakdown
and Table I operation rows.  This module adds that axis:

* :class:`Span` — rides a sampled :class:`~repro.cpu.mshr.MemoryRequest`
  through the transaction pipeline and records cycle-stamped stage
  transitions: core issue → MSHR admit (or pending-queue wait) →
  controller dispatch (epoch stalls show up here) → scheme decision
  (the Table I row, via :meth:`MemoryScheme.span_row`) → per-stage
  device service (metadata fetch vs NM/FM data, with the DRAM queue vs
  burst split attributed by the channel) → retire.  Coalesced MSHR
  siblings register join timestamps on the parent's span.
* :class:`SpanCollector` — aggregates spans into per-stage cycle totals,
  per-Table-I-row latency histograms with p50/p95/p99 tails, wait-cycle
  accounting and the top coalescing chains.
* :class:`SpanRecorder` — the sampling front door.  Sampling is a
  **deterministic modulo** over the miss-arrival sequence (request
  ``seq % rate == 0``), so a given config samples the same requests on
  every run, and rate 0 (the default) constructs nothing at all: cache
  keys and golden results are byte-identical to pre-span builds.
  Sampled spans are also emitted into the :class:`EventTracer` as
  Perfetto complete ("X") events — one slice per request plus one per
  pipeline stage — with flow ("s"/"f") events linking every coalesced
  sibling's join point to the parent's retirement.

Spans only *observe*: they schedule no events and read timestamps the
pipeline already produces, so figures of merit are bit-identical with
spans on and off.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.schemes.base import Level, Op
from repro.sim.config import SUBBLOCK_BYTES
from repro.stats.collectors import Histogram
from repro.telemetry.tracer import EventTracer

#: schema of the ``spans`` sub-object inside a telemetry snapshot.
SPANS_SCHEMA_VERSION = 1

#: wait components recorded *outside* the dispatch→retire service path.
WAIT_MSHR = "mshr_wait"
WAIT_DISPATCH = "dispatch_wait"

#: request-latency histogram: 64-cycle buckets out to ~262k cycles.
_LATENCY_BUCKET_WIDTH = 64.0
_LATENCY_MAX_BUCKETS = 4096
#: how many coalescing chains the collector retains for the report.
_TOP_CHAINS = 10


def stage_label(ops: Sequence[Op]) -> str:
    """Classify one plan stage by its device operations.

    Metadata fetches are smaller than a subblock (SILC-FM's segments
    are 8 B); data stages split by which device serviced them.
    """
    meta = True
    nm = fm = False
    for op in ops:
        if op.size >= SUBBLOCK_BYTES:
            meta = False
        if op.level is Level.NM:
            nm = True
        else:
            fm = True
    if meta:
        return "meta"
    if nm and fm:
        return "mixed"
    return "nm_data" if nm else "fm_data"


class Span:
    """Cycle-stamped lifecycle of one sampled memory request."""

    __slots__ = ("sid", "paddr", "is_write", "issue_t", "admit_t",
                 "dispatch_t", "decide_t", "finish_t", "row",
                 "serviced_from", "bypassed", "stages", "siblings",
                 "dram_queue", "dram_service", "_open_label", "_open_t")

    def __init__(self, sid: int, paddr: int, is_write: bool,
                 issue_t: float) -> None:
        self.sid = sid
        self.paddr = paddr
        self.is_write = is_write
        self.issue_t = issue_t
        self.admit_t = issue_t
        self.dispatch_t = issue_t
        self.decide_t = issue_t
        self.finish_t = issue_t
        self.row = ""
        self.serviced_from = ""
        self.bypassed = False
        #: closed stages as ``(label, start, end)`` triples.
        self.stages: List[Tuple[str, float, float]] = []
        #: join timestamps of coalesced MSHR siblings.
        self.siblings: List[float] = []
        #: DRAM cycles split by the channel: bank/bus queueing vs burst.
        self.dram_queue = 0.0
        self.dram_service = 0.0
        self._open_label: Optional[str] = None
        self._open_t = 0.0

    # lifecycle hooks, called by MSHR / controller / channel ------------
    def admit(self, now: float) -> None:
        """MSHR entry allocated (pending-queue wait ends here)."""
        self.admit_t = now

    def dispatch(self, now: float) -> None:
        """Controller accepted the transaction (epoch stalls end here)."""
        self.dispatch_t = now

    def decide(self, row: str, serviced_from: str, bypassed: bool,
               now: float) -> None:
        """Scheme resolved the access to a Table I row."""
        self.row = row
        self.serviced_from = serviced_from
        self.bypassed = bypassed
        self.decide_t = now

    def begin_stage(self, label: str, now: float) -> None:
        self._open_label = label
        self._open_t = now

    def end_stage(self, now: float) -> None:
        """Close the open stage, if any (no-op otherwise)."""
        if self._open_label is not None:
            self.stages.append((self._open_label, self._open_t, now))
            self._open_label = None

    def join(self, now: float) -> None:
        """A coalesced sibling attached to this transaction."""
        self.siblings.append(now)

    def add_dram(self, queue_cycles: float, service_cycles: float) -> None:
        self.dram_queue += queue_cycles
        self.dram_service += service_cycles

    # derived -----------------------------------------------------------
    @property
    def latency(self) -> float:
        """Issue-to-retire cycles (what the core experienced)."""
        return self.finish_t - self.issue_t

    @property
    def service_cycles(self) -> float:
        """Dispatch-to-retire cycles (what the controller accounted)."""
        return self.finish_t - self.dispatch_t


def _percentiles(hist: Histogram) -> Dict[str, Optional[float]]:
    """p50/p95/p99 from a histogram, overflow (``inf``) as ``None`` so
    the snapshot stays strict-JSON."""
    out: Dict[str, Optional[float]] = {}
    for p, key in ((50.0, "p50"), (95.0, "p95"), (99.0, "p99")):
        value = hist.percentile(p)
        out[key] = None if math.isinf(value) else value
    return out


def _latency_histogram() -> Histogram:
    return Histogram(_LATENCY_BUCKET_WIDTH, _LATENCY_MAX_BUCKETS)


class SpanCollector:
    """Aggregates retired spans into the latency-attribution snapshot."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all aggregates (warmup discarding)."""
        self.spans_recorded = 0
        self.coalesced_siblings = 0
        self.latency_total = 0.0
        self.service_total = 0.0
        self.dram_queue_cycles = 0.0
        self.dram_service_cycles = 0.0
        self.wait_cycles: Dict[str, float] = {
            WAIT_MSHR: 0.0, WAIT_DISPATCH: 0.0,
        }
        self.stage_cycles: Dict[str, float] = {}
        self.stage_counts: Dict[str, int] = {}
        self._stage_hists: Dict[str, Histogram] = {}
        self._rows: Dict[str, Dict] = {}
        self._latency_hist = _latency_histogram()
        #: retained chains: (siblings, latency, sid, paddr, row),
        #: kept sorted longest-chain-first.
        self._chains: List[Tuple[int, float, int, int, str]] = []

    # ------------------------------------------------------------------
    def record(self, span: Span) -> None:
        self.spans_recorded += 1
        self.coalesced_siblings += len(span.siblings)
        self.latency_total += span.latency
        self.service_total += span.service_cycles
        self.dram_queue_cycles += span.dram_queue
        self.dram_service_cycles += span.dram_service
        self.wait_cycles[WAIT_MSHR] += span.admit_t - span.issue_t
        self.wait_cycles[WAIT_DISPATCH] += span.dispatch_t - span.admit_t
        self._latency_hist.add(span.latency)
        for label, start, end in span.stages:
            dur = end - start
            self.stage_cycles[label] = self.stage_cycles.get(label, 0.0) + dur
            self.stage_counts[label] = self.stage_counts.get(label, 0) + 1
            hist = self._stage_hists.get(label)
            if hist is None:
                hist = self._stage_hists[label] = _latency_histogram()
            hist.add(dur)
        row = self._rows.get(span.row)
        if row is None:
            row = self._rows[span.row] = {
                "count": 0, "cycles": 0.0, "coalesced": 0,
                "hist": _latency_histogram(),
            }
        row["count"] += 1
        row["cycles"] += span.latency
        row["coalesced"] += len(span.siblings)
        row["hist"].add(span.latency)
        if span.siblings:
            self._note_chain(span)

    def _note_chain(self, span: Span) -> None:
        entry = (len(span.siblings), span.latency, span.sid, span.paddr,
                 span.row)
        chains = self._chains
        chains.append(entry)
        chains.sort(key=lambda c: (-c[0], -c[1], c[2]))
        if len(chains) > _TOP_CHAINS:
            chains.pop()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-native aggregate view (lists and dicts only)."""
        total_stage = sum(self.stage_cycles.values())
        stages = {}
        for label in sorted(self.stage_cycles):
            cycles = self.stage_cycles[label]
            stages[label] = {
                "cycles": cycles,
                "count": self.stage_counts[label],
                "share": cycles / total_stage if total_stage else 0.0,
                **_percentiles(self._stage_hists[label]),
            }
        rows = {}
        for name in sorted(self._rows):
            rec = self._rows[name]
            rows[name] = {
                "count": rec["count"],
                "cycles": rec["cycles"],
                "coalesced": rec["coalesced"],
                "mean": rec["cycles"] / rec["count"] if rec["count"] else 0.0,
                "max": rec["hist"].max_value,
                **_percentiles(rec["hist"]),
            }
        return {
            "spans": self.spans_recorded,
            "coalesced_siblings": self.coalesced_siblings,
            "latency_cycles": self.latency_total,
            "service_cycles": self.service_total,
            "stage_cycles_total": total_stage,
            "wait_cycles": dict(self.wait_cycles),
            "dram": {
                "queue_cycles": self.dram_queue_cycles,
                "service_cycles": self.dram_service_cycles,
            },
            "latency": {
                "mean": (self.latency_total / self.spans_recorded
                         if self.spans_recorded else 0.0),
                "max": self._latency_hist.max_value,
                **_percentiles(self._latency_hist),
            },
            "stages": stages,
            "rows": rows,
            "top_chains": [
                {"siblings": c[0], "latency": c[1], "span": c[2],
                 "paddr": c[3], "row": c[4]}
                for c in self._chains
            ],
        }


class SpanRecorder:
    """Deterministic sampling front door plus trace emission.

    One recorder per :class:`~repro.cpu.system.System`; the MSHR file
    (or the compat controller path) asks :meth:`arrival` for each new
    transaction, starts a :class:`Span` for the sampled ones, and the
    controller/channel hooks do the per-stage stamping.  The sampling
    counter and span ids are **never reset** (unlike the collector's
    aggregates at warmup) so which requests get sampled is a pure
    function of the arrival sequence.
    """

    def __init__(self, sample_rate: int, engine,
                 tracer: Optional[EventTracer] = None,
                 collector: Optional[SpanCollector] = None) -> None:
        if sample_rate < 1:
            raise ValueError("span sample rate must be >= 1")
        self.sample_rate = sample_rate
        self._engine = engine
        self.tracer = tracer
        self.collector = collector if collector is not None else SpanCollector()
        self._seq = 0      # new-transaction arrivals seen
        self._spans = 0    # spans started
        self._retired = 0  # spans retired (never reset; see unretired)

    # ------------------------------------------------------------------
    def arrival(self) -> bool:
        """Deterministic modulo decision for the next new transaction."""
        seq = self._seq
        self._seq = seq + 1
        return seq % self.sample_rate == 0

    def start(self, paddr: int, is_write: bool,
              issue_t: Optional[float] = None) -> Span:
        """Begin a span for a sampled request.  ``issue_t`` defaults to
        now; the MSHR passes the original arrival time for misses that
        waited in its pending queue."""
        sid = self._spans
        self._spans = sid + 1
        if issue_t is None:
            issue_t = self._engine.now
        return Span(sid, paddr, is_write, issue_t)

    def coalesce(self, txn) -> None:
        """A miss coalesced onto ``txn``; note the join on its span."""
        span = txn.span
        if span is not None:
            span.join(self._engine.now)

    def retire(self, txn, when: float) -> None:
        """Transaction completed: close, aggregate, and emit its span."""
        span = txn.span
        txn.span = None
        span.end_stage(when)  # defensive: stages normally close in _advance
        span.finish_t = when
        self._retired += 1
        self.collector.record(span)
        if self.tracer is not None:
            self._emit(span)

    def reset_stats(self) -> None:
        """Discard warmup aggregates; sampling sequence keeps counting."""
        self.collector.reset()

    # ------------------------------------------------------------------
    @property
    def unretired(self) -> int:
        """Spans still in flight (counted at drain so requests alive at
        halt are reported, not silently dropped)."""
        return self._spans - self._retired

    def snapshot(self) -> Dict:
        snap = self.collector.snapshot()
        snap["schema"] = SPANS_SCHEMA_VERSION
        snap["sample_rate"] = self.sample_rate
        snap["arrivals"] = self._seq
        snap["sampled"] = self._spans
        snap["unretired"] = self.unretired
        return snap

    # ------------------------------------------------------------------
    def _emit(self, span: Span) -> None:
        """Perfetto slices for one span: a request slice, one slice per
        stage, and an s/f flow pair per coalesced sibling.  The whole
        batch is emitted atomically (or dropped whole) so every flow
        start in the trace has its finish."""
        tracer = self.tracer
        count = 1 + len(span.stages) + 2 * len(span.siblings)
        if not tracer.reserve(count):
            return
        tid = 1 + span.sid % 16  # spread spans over a few tracks
        tracer.complete(span.row or "request", "span.request",
                        span.issue_t, span.latency, tid=tid,
                        args={"paddr": span.paddr,
                              "write": span.is_write,
                              "serviced_from": span.serviced_from,
                              "bypassed": span.bypassed,
                              "coalesced": len(span.siblings)})
        for label, start, end in span.stages:
            tracer.complete(label, "span.stage", start, end - start, tid=tid)
        for k, join_t in enumerate(span.siblings):
            flow_id = f"span{span.sid}.{k}"
            tracer.flow("coalesce", "span.flow", join_t, flow_id, "s",
                        tid=tid)
            tracer.flow("coalesce", "span.flow", span.finish_t, flow_id,
                        "f", tid=tid)
