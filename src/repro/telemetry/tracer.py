"""Chrome-trace-format event tracer.

Emits the JSON the Chrome tracing ecosystem understands — load the
written file straight into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` to see swaps, locks, bypass-mode transitions and
oracle checks on a zoomable timeline, with the windowed counter series
rendered as counter tracks.

Format reference: the *Trace Event Format* document (the ``ph`` field
selects the event type; we emit ``"i"`` instant events, ``"C"``
counter events, ``"X"`` complete events for request/stage spans and
``"s"``/``"f"`` flow events linking coalesced MSHR siblings to the
transaction that serviced them).  Timestamps (``ts``) are
microseconds; simulation cycles are converted with the configured
``cycles_per_us`` so the timeline is in real time at the paper's
3.2 GHz clock.

The event list is capped (``max_events``): long runs keep the earliest
events and count the overflow in :attr:`EventTracer.dropped` rather
than growing without bound — a truncated trace is still a valid trace.
Batch emitters (the span recorder) call :meth:`EventTracer.reserve`
first so paired events — a flow start and its finish — are kept or
dropped *together*; a trace never contains a dangling flow arrow.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

#: required keys of every emitted trace event (checked by the validator).
_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


class TraceFormatError(ValueError):
    """A file failed Chrome-trace JSON validation."""


class EventTracer:
    """Collects Chrome trace events, bounded by ``max_events``."""

    def __init__(self, max_events: int = 100_000,
                 cycles_per_us: float = 3200.0) -> None:
        if max_events < 1:
            raise ValueError("max_events must be positive")
        if cycles_per_us <= 0:
            raise ValueError("cycles_per_us must be positive")
        self.max_events = max_events
        self.cycles_per_us = cycles_per_us
        self.dropped = 0
        self._events: List[Dict] = []

    # ------------------------------------------------------------------
    def _ts(self, cycles: float) -> float:
        return cycles / self.cycles_per_us

    def _emit(self, event: Dict) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def instant(self, name: str, cat: str, cycles: float,
                args: Optional[Dict] = None) -> None:
        """One instant ("i") event at simulation time ``cycles``."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "g",  # global scope: drawn across the whole timeline
            "ts": self._ts(cycles),
            "pid": 0,
            "tid": 0,
        }
        if args:
            event["args"] = dict(args)
        self._emit(event)

    def counter(self, name: str, cycles: float,
                values: Dict[str, float]) -> None:
        """One counter ("C") event — Perfetto renders each key of
        ``values`` as a counter-track series."""
        self._emit({
            "name": name,
            "ph": "C",
            "ts": self._ts(cycles),
            "pid": 0,
            "tid": 0,
            "args": {k: float(v) for k, v in values.items()},
        })

    def complete(self, name: str, cat: str, start_cycles: float,
                 dur_cycles: float, tid: int = 0,
                 args: Optional[Dict] = None) -> None:
        """One complete ("X") event: a named interval with a duration,
        rendered as a slice on thread track ``tid``."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": self._ts(start_cycles),
            "dur": self._ts(dur_cycles),
            "pid": 0,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self._emit(event)

    def flow(self, name: str, cat: str, cycles: float, flow_id: str,
             phase: str, tid: int = 0) -> None:
        """One flow event — ``phase`` is ``"s"`` (start), ``"t"`` (step)
        or ``"f"`` (finish); events sharing ``flow_id`` are drawn as an
        arrow across the timeline."""
        if phase not in ("s", "t", "f"):
            raise ValueError(f"flow phase must be s/t/f, got {phase!r}")
        event = {
            "name": name,
            "cat": cat,
            "ph": phase,
            "ts": self._ts(cycles),
            "pid": 0,
            "tid": tid,
            "id": flow_id,
        }
        if phase == "f":
            event["bp"] = "e"  # bind the finish to the enclosing slice
        self._emit(event)

    def reserve(self, count: int) -> bool:
        """Check ``count`` more events fit under the cap; counts them
        as dropped and returns False when they don't.  Batch emitters
        use this so paired events (a span's stage slices, a flow start
        and its finish) are kept or dropped atomically."""
        if len(self._events) + count > self.max_events:
            self.dropped += count
            return False
        return True

    # ------------------------------------------------------------------
    def events(self) -> List[Dict]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def chrome_trace(self) -> Dict:
        """The JSON-object trace container Perfetto/catapult load."""
        return chrome_trace_container(self._events)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)


def chrome_trace_container(events: List[Dict]) -> Dict:
    """Wrap an event list in the standard trace container object."""
    return {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry (SILC-FM simulator)"},
    }


def validate_chrome_trace(source: Union[str, Dict, List]) -> int:
    """Check ``source`` is valid Chrome trace JSON; returns the event
    count.  ``source`` may be a file path, a parsed container object, or
    a bare event list (both spellings are legal Chrome trace JSON).

    Raises :class:`TraceFormatError` describing the first problem — this
    is what the CI smoke uses to guarantee emitted traces actually load
    in Perfetto/catapult.
    """
    if isinstance(source, str):
        try:
            with open(source) as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise TraceFormatError(f"{source}: not readable JSON: {exc}")
    else:
        data = source
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise TraceFormatError("container object lacks a 'traceEvents' list")
    elif isinstance(data, list):
        events = data
    else:
        raise TraceFormatError(f"trace must be an object or array, "
                               f"got {type(data).__name__}")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceFormatError(f"event {i} is not an object")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise TraceFormatError(f"event {i} lacks required key {key!r}")
        if not isinstance(event["ts"], (int, float)):
            raise TraceFormatError(f"event {i} has non-numeric ts")
        if not isinstance(event["name"], str):
            raise TraceFormatError(f"event {i} has non-string name")
    return len(events)
