"""Latency-attribution reports from telemetry artifacts.

``python -m repro analyze <artifact>`` turns a span-enabled series file
(or a Chrome trace) into the Figure-6-style breakdown the spans were
recorded for: where each sampled request's cycles went (per-stage
shares), which Table I rows dominate the tail (per-row p50/p95/p99),
and which coalescing chains amortised the most misses.

Two artifact kinds are accepted:

* ``*.series.json`` written by :func:`repro.telemetry.write_series` —
  the primary path.  The ``spans`` sub-object carries the collector's
  exact cycle aggregates plus the reconciliation denominator
  (``demand_stall_cycles``), so the report can state what fraction of
  the controller's accounted stall cycles the sampled stage sums cover.
* ``*.trace.json`` Chrome-trace containers — a degraded fallback that
  re-aggregates the ``"X"`` slices (cat ``span.request`` /
  ``span.stage``) and counts flow starts.  Times are in microseconds
  (the trace unit) and the wait/DRAM splits are unavailable, but the
  shape of the report is the same, so a trace shipped without its
  series file is still analysable.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.stats.report import format_table

PathLike = Union[str, Path]


class AnalyzeError(ValueError):
    """The artifact cannot be analysed (unreadable, or carries no span
    data — e.g. a run recorded without ``--span-sample-rate``)."""


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------

def load_artifact(path: PathLike) -> Dict:
    """Normalise a series or trace file into one report-ready dict:
    ``{"source", "kind", "unit", "run", "spans"}`` where ``spans``
    always has the series-snapshot shape."""
    path = Path(path)
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise AnalyzeError(f"{path}: not readable JSON: {exc}")
    if not isinstance(data, dict):
        raise AnalyzeError(f"{path}: expected a JSON object artifact")

    if "traceEvents" in data:
        spans = _spans_from_trace(data["traceEvents"])
        if spans["spans"] == 0:
            raise AnalyzeError(
                f"{path}: trace has no span.request slices — was the run "
                "recorded with --span-sample-rate?")
        run = data.get("otherData", {}).get("run")
        return {"source": str(path), "kind": "trace", "unit": "us",
                "run": run, "spans": spans, "clock": None}

    spans = data.get("spans")
    clock = _clock_from_samples(data.get("samples"))
    if not isinstance(spans, dict):
        if clock is None:
            raise AnalyzeError(
                f"{path}: series carries no 'spans' object and no "
                "'clock.*' signals — was the run recorded with "
                "--span-sample-rate (or batch mode + telemetry)?")
        spans = None
    return {"source": str(path), "kind": "series", "unit": "cycles",
            "run": data.get("run"), "spans": spans, "clock": clock}


def _clock_from_samples(samples) -> Optional[Dict]:
    """Sum the two-tier clock meters (per-window deltas emitted by a
    batch-mode run) back into run totals for the tier-attribution
    section.  Returns None when the series carries no ``clock.*``
    signals (scalar runs)."""
    if not isinstance(samples, list):
        return None
    totals = {"fused": 0.0, "generic": 0.0,
              "fast_accepted": 0.0, "fast_declined": 0.0}
    seen = False
    for sample in samples:
        if not isinstance(sample, dict):
            continue
        for key in totals:
            value = sample.get("clock." + key)
            if value is not None:
                totals[key] += float(value)
                seen = True
    return totals if seen else None


def _tail(durations: Sequence[float], p: float) -> Optional[float]:
    """Nearest-rank percentile over raw durations (trace fallback)."""
    if not durations:
        return None
    ordered = sorted(durations)
    rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
    return ordered[rank]


def _spans_from_trace(events: List[Dict]) -> Dict:
    """Re-aggregate span slices out of a Chrome-trace event list."""
    stage_durs: Dict[str, List[float]] = {}
    row_durs: Dict[str, List[float]] = {}
    row_coalesced: Dict[str, int] = {}
    flow_starts = 0
    for event in events:
        if not isinstance(event, dict):
            continue
        cat = event.get("cat")
        if event.get("ph") == "X" and cat == "span.stage":
            stage_durs.setdefault(event["name"], []).append(
                float(event.get("dur", 0.0)))
        elif event.get("ph") == "X" and cat == "span.request":
            row_durs.setdefault(event["name"], []).append(
                float(event.get("dur", 0.0)))
            args = event.get("args", {})
            row_coalesced[event["name"]] = (
                row_coalesced.get(event["name"], 0)
                + int(args.get("coalesced", 0)))
        elif event.get("ph") == "s" and cat == "span.flow":
            flow_starts += 1

    total_stage = sum(sum(d) for d in stage_durs.values())
    stages = {}
    for label in sorted(stage_durs):
        durs = stage_durs[label]
        cycles = sum(durs)
        stages[label] = {
            "cycles": cycles, "count": len(durs),
            "share": cycles / total_stage if total_stage else 0.0,
            "p50": _tail(durs, 50), "p95": _tail(durs, 95),
            "p99": _tail(durs, 99),
        }
    rows = {}
    for name in sorted(row_durs):
        durs = row_durs[name]
        rows[name] = {
            "count": len(durs), "cycles": sum(durs),
            "coalesced": row_coalesced.get(name, 0),
            "mean": sum(durs) / len(durs), "max": max(durs),
            "p50": _tail(durs, 50), "p95": _tail(durs, 95),
            "p99": _tail(durs, 99),
        }
    all_durs = [d for durs in row_durs.values() for d in durs]
    return {
        "spans": len(all_durs),
        "coalesced_siblings": flow_starts,
        "latency_cycles": sum(all_durs),
        "stage_cycles_total": total_stage,
        "latency": {
            "mean": sum(all_durs) / len(all_durs) if all_durs else 0.0,
            "max": max(all_durs) if all_durs else 0.0,
            "p50": _tail(all_durs, 50), "p95": _tail(all_durs, 95),
            "p99": _tail(all_durs, 99),
        },
        "stages": stages,
        "rows": rows,
        "top_chains": [],
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _fmt(value, precision: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.{precision}f}"
    return f"{value:,}"


def render_report(data: Dict, top: int = 5) -> str:
    """One-screen latency-attribution report for a loaded artifact."""
    spans = data["spans"]
    unit = data["unit"]
    blocks: List[str] = [_header(data)]
    tier = _tier_attribution_block(data.get("clock"))

    if spans is None:
        # batch-mode series without span sampling: the tier-attribution
        # section is the whole report.
        blocks.append(tier)
        return "\n\n".join(blocks)

    if spans.get("spans", 0) == 0:
        blocks.append("no spans retired after warmup — nothing to "
                      "attribute (try a longer run or rate 1)")
        return "\n\n".join(blocks)

    blocks.append(_sampling_line(spans))
    blocks.append(_stage_table(spans, unit))
    waits = _wait_block(spans, unit)
    if waits:
        blocks.append(waits)
    blocks.append(_latency_line(spans, unit))
    blocks.append(_row_table(spans, unit))
    chains = _chain_table(spans, top)
    if chains:
        blocks.append(chains)
    recon = _reconciliation_line(spans)
    if recon:
        blocks.append(recon)
    unobserved = _unobserved_rows(spans)
    if unobserved:
        blocks.append(unobserved)
    if tier:
        blocks.append(tier)
    return "\n\n".join(blocks)


def _tier_attribution_block(clock: Optional[Dict]) -> str:
    """The two-tier clock section: how many dispatches the closed-form
    evaluator fused inline vs fell back to generic heap dispatch, and
    the scheme's fast-shape decline rate (the Amdahl cap from ROADMAP
    item 1)."""
    if not clock:
        return ""
    fused = clock.get("fused", 0.0)
    generic = clock.get("generic", 0.0)
    total = fused + generic
    accepted = clock.get("fast_accepted", 0.0)
    declined = clock.get("fast_declined", 0.0)
    consults = accepted + declined
    lines = ["Two-tier clock attribution"]
    if total:
        lines.append(
            f"  dispatches: {total:,.0f} total — fused inline "
            f"{fused:,.0f} ({fused / total * 100:.1f}%), generic heap "
            f"{generic:,.0f} ({generic / total * 100:.1f}%)")
    else:
        lines.append("  dispatches: none recorded (scalar run, or the "
                     "evaluator never engaged)")
    if consults:
        lines.append(
            f"  scheme fast path: {accepted:,.0f} accepted, "
            f"{declined:,.0f} declined "
            f"(decline rate {declined / consults:.3f})")
    return "\n".join(lines)


def _header(data: Dict) -> str:
    run = data.get("run")
    if run:
        bits = [f"{run.get('scheme', '?')}/{run.get('workload', '?')}"]
        if run.get("seed") is not None:
            bits.append(f"seed {run['seed']}")
        if run.get("config_digest"):
            bits.append(f"config {run['config_digest']}")
        label = ", ".join(bits)
    else:
        label = data["source"]
    kind = "trace re-aggregation" if data["kind"] == "trace" else "series"
    return f"Latency attribution — {label} [{kind}]"


def _sampling_line(spans: Dict) -> str:
    parts = [f"{spans.get('spans', 0):,} spans"]
    if spans.get("sample_rate"):
        parts.append(f"sample rate 1/{spans['sample_rate']}")
    if spans.get("arrivals") is not None:
        parts.append(f"{spans['arrivals']:,} arrivals")
    if spans.get("coalesced_siblings"):
        parts.append(f"{spans['coalesced_siblings']:,} coalesced siblings")
    if spans.get("unretired"):
        parts.append(f"{spans['unretired']} still in flight at halt")
    return ", ".join(parts)


def _stage_table(spans: Dict, unit: str) -> str:
    rows = []
    for label, rec in sorted(spans.get("stages", {}).items(),
                             key=lambda kv: -kv[1]["cycles"]):
        rows.append([label, _fmt(rec["cycles"]), _fmt(rec["count"], 0),
                     f"{rec['share'] * 100:.1f}%", _fmt(rec.get("p50")),
                     _fmt(rec.get("p95")), _fmt(rec.get("p99"))])
    return format_table(
        ["stage", unit, "count", "share", "p50", "p95", "p99"], rows,
        title=f"Per-stage service time ({unit})")


def _wait_block(spans: Dict, unit: str) -> Optional[str]:
    waits = spans.get("wait_cycles")
    dram = spans.get("dram")
    if not waits and not dram:
        return None
    lines = []
    if waits:
        lines.append(
            f"waits ({unit}): mshr (pending-queue) "
            f"{_fmt(waits.get('mshr_wait', 0.0))}, dispatch (epoch stalls) "
            f"{_fmt(waits.get('dispatch_wait', 0.0))}")
    if dram:
        lines.append(
            f"dram ({unit}): queue+bank-prep {_fmt(dram['queue_cycles'])}, "
            f"data burst {_fmt(dram['service_cycles'])}")
    return "\n".join(lines)


def _latency_line(spans: Dict, unit: str) -> str:
    lat = spans.get("latency", {})
    return (f"request latency ({unit}): mean {_fmt(lat.get('mean'))}, "
            f"p50 {_fmt(lat.get('p50'))}, p95 {_fmt(lat.get('p95'))}, "
            f"p99 {_fmt(lat.get('p99'))}, max {_fmt(lat.get('max'))}")


def _row_table(spans: Dict, unit: str) -> str:
    total = spans.get("spans", 0) or 1
    rows = []
    for name, rec in sorted(spans.get("rows", {}).items(),
                            key=lambda kv: -kv[1]["cycles"]):
        rows.append([name, _fmt(rec["count"], 0),
                     f"{rec['count'] / total * 100:.1f}%",
                     _fmt(rec["mean"]), _fmt(rec.get("p50")),
                     _fmt(rec.get("p95")), _fmt(rec.get("p99")),
                     _fmt(rec.get("coalesced", 0), 0)])
    return format_table(
        ["row", "count", "share", f"mean {unit}", "p50", "p95", "p99",
         "coalesced"],
        rows, title="Table I row breakdown")


def _chain_table(spans: Dict, top: int) -> Optional[str]:
    chains = spans.get("top_chains", [])[:top]
    if not chains:
        return None
    rows = [[c["span"], c["siblings"], _fmt(c["latency"]),
             f"0x{c['paddr']:x}", c["row"]] for c in chains]
    return format_table(
        ["span", "siblings", "latency", "paddr", "row"], rows,
        title=f"Top coalescing chains (most misses amortised, top {top})")


def _reconciliation_line(spans: Dict) -> Optional[str]:
    """Sampled per-stage sums vs the controller's total demand stall:
    at rate 1 these must agree (the acceptance check); at higher rates
    the coverage fraction says how representative the sample is."""
    demand = spans.get("demand_stall_cycles")
    if demand is None:
        return None
    staged = spans.get("stage_cycles_total", 0.0)
    if demand <= 0:
        return "reconciliation: no demand stall cycles accounted"
    coverage = staged / demand
    return (f"reconciliation: stage sums cover {coverage * 100:.2f}% of "
            f"{demand:,.0f} controller-accounted demand stall cycles")


def _unobserved_rows(spans: Dict) -> Optional[str]:
    declared = spans.get("rows_declared")
    if not declared:
        return None
    missing = [row for row in declared if row not in spans.get("rows", {})]
    if not missing:
        return None
    return ("declared rows never observed in this run: "
            + ", ".join(sorted(missing)))


def analyze(path: PathLike, top: int = 5) -> str:
    """Load ``path`` and render its report (the CLI entry point)."""
    return render_report(load_artifact(path), top=top)
