"""Telemetry artifact files: the on-disk form of a run's snapshot.

Two files per telemetry-enabled run:

* ``<stem>.series.json`` — the windowed time series (samples, final
  counters, spill accounting), schema-versioned;
* ``<stem>.trace.json`` — the Chrome-trace container, loadable in
  Perfetto / ``chrome://tracing``.

The experiment executor writes them under ``<cache-dir>/telemetry/``
keyed by the cell's content hash (so artifacts resume/invalidate with
the result cache); ``repro run`` writes them under
``results/telemetry/`` named by (scheme, benchmark).

Both files can carry a **run-metadata header** (``meta=``, built with
:func:`run_metadata`): scheme, workload, seed, config hash and schema
version, embedded as ``"run"`` in the series payload and under
``otherData.run`` in the trace container.  ``repro analyze`` uses it to
label reports without needing the originating command.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.telemetry.tracer import chrome_trace_container

PathLike = Union[str, Path]


def run_metadata(scheme: str, workload: str, seed: int,
                 config=None, **extra) -> Dict:
    """The artifact header identifying which run produced a file."""
    from repro.telemetry.hub import TELEMETRY_SCHEMA_VERSION

    meta: Dict = {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "scheme": scheme,
        "workload": workload,
        "seed": seed,
    }
    if config is not None:
        from repro.sim.config import config_digest

        meta["config_digest"] = config_digest(config)
        meta["span_sample_rate"] = config.span_sample_rate
        meta["telemetry_window"] = config.telemetry_window
    meta.update(extra)
    return meta


def write_series(path: PathLike, snapshot: Dict,
                 meta: Optional[Dict] = None) -> Path:
    """Write the time-series half of a telemetry snapshot (everything
    except the trace events), with an optional run-metadata header."""
    path = Path(path)
    payload = {k: v for k, v in snapshot.items() if k != "events"}
    if meta:
        payload["run"] = dict(meta)
    _atomic_dump(path, payload)
    return path


def write_trace(path: PathLike, snapshot: Dict,
                meta: Optional[Dict] = None) -> Path:
    """Write the snapshot's events as a Chrome-trace container file,
    with an optional run-metadata header under ``otherData.run``."""
    path = Path(path)
    container = chrome_trace_container(snapshot.get("events", []))
    if meta:
        container["otherData"]["run"] = dict(meta)
    _atomic_dump(path, container)
    return path


def write_artifacts(directory: PathLike, stem: str, snapshot: Dict,
                    meta: Optional[Dict] = None) -> Tuple[Path, Path]:
    """Write both artifact files for one run; returns their paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    series = write_series(directory / f"{stem}.series.json", snapshot, meta)
    trace = write_trace(directory / f"{stem}.trace.json", snapshot, meta)
    return series, trace


def _atomic_dump(path: Path, payload: Dict) -> None:
    """tmp + rename, mirroring the executor's crash-safe cache writes."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)
