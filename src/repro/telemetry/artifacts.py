"""Telemetry artifact files: the on-disk form of a run's snapshot.

Two files per telemetry-enabled run:

* ``<stem>.series.json`` — the windowed time series (samples, final
  counters, spill accounting), schema-versioned;
* ``<stem>.trace.json`` — the Chrome-trace container, loadable in
  Perfetto / ``chrome://tracing``.

The experiment executor writes them under ``<cache-dir>/telemetry/``
keyed by the cell's content hash (so artifacts resume/invalidate with
the result cache); ``repro run`` writes them under
``results/telemetry/`` named by (scheme, benchmark).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.telemetry.tracer import chrome_trace_container

PathLike = Union[str, Path]


def write_series(path: PathLike, snapshot: Dict) -> Path:
    """Write the time-series half of a telemetry snapshot (everything
    except the trace events)."""
    path = Path(path)
    payload = {k: v for k, v in snapshot.items() if k != "events"}
    _atomic_dump(path, payload)
    return path


def write_trace(path: PathLike, snapshot: Dict) -> Path:
    """Write the snapshot's events as a Chrome-trace container file."""
    path = Path(path)
    _atomic_dump(path, chrome_trace_container(snapshot.get("events", [])))
    return path


def write_artifacts(directory: PathLike, stem: str,
                    snapshot: Dict) -> Tuple[Path, Path]:
    """Write both artifact files for one run; returns their paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    series = write_series(directory / f"{stem}.series.json", snapshot)
    trace = write_trace(directory / f"{stem}.trace.json", snapshot)
    return series, trace


def _atomic_dump(path: Path, payload: Dict) -> None:
    """tmp + rename, mirroring the executor's crash-safe cache writes."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)
