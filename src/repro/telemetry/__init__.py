"""Probe-based observability for the simulator (see docs/telemetry.md).

Public surface:

* :class:`Telemetry` — the hub components publish counters/gauges/
  meters into; samples them on a cycle window into a ring-buffered,
  spillable time series.
* :class:`EventTracer` / :func:`validate_chrome_trace` — Chrome-trace
  event collection and validation (Perfetto-loadable).
* :func:`write_artifacts` / :func:`write_series` / :func:`write_trace`
  — the ``.series.json`` / ``.trace.json`` files the CLI and the
  experiment executor emit, optionally labelled with a
  :func:`run_metadata` header.
* :class:`Span` / :class:`SpanCollector` / :class:`SpanRecorder` —
  per-request span tracing and latency attribution (see
  :mod:`repro.telemetry.spans`), enabled with
  ``SystemConfig.span_sample_rate`` and reported by ``repro analyze``.

Enable per run with ``SystemConfig.telemetry_window > 0`` (CLI:
``--telemetry`` / ``--telemetry-window``); when disabled — the default
— no hub is constructed and the simulator's hot paths pay nothing.
"""

from repro.telemetry.artifacts import (
    run_metadata,
    write_artifacts,
    write_series,
    write_trace,
)
from repro.telemetry.spans import (
    SPANS_SCHEMA_VERSION,
    Span,
    SpanCollector,
    SpanRecorder,
    stage_label,
)
from repro.telemetry.hub import (
    DEFAULT_RING_CAPACITY,
    DEFAULT_TELEMETRY_WINDOW,
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    TimeSeriesRing,
)
from repro.telemetry.tracer import (
    EventTracer,
    TraceFormatError,
    chrome_trace_container,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_TELEMETRY_WINDOW",
    "SPANS_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "Span",
    "SpanCollector",
    "SpanRecorder",
    "Telemetry",
    "TimeSeriesRing",
    "EventTracer",
    "TraceFormatError",
    "chrome_trace_container",
    "run_metadata",
    "stage_label",
    "validate_chrome_trace",
    "write_artifacts",
    "write_series",
    "write_trace",
]
