"""Shadow memory: an independent model of where every subblock lives.

The simulator's schemes keep remapping *metadata* (bit vectors, remap
entries, reverse maps) and emit device :class:`~repro.schemes.base.Op`
traffic describing the data movement they intend.  :class:`ShadowMemory`
closes the loop: it tags every 64 B slot of the NM and FM devices with
the **logical identity** of the subblock stored there (initially the
identity mapping — flat subblock *k* in slot *k*) and replays each
plan's operations, so at any instant it knows, independently of any
scheme's bookkeeping, which data each physical slot holds.

Replay interprets the one movement primitive every part-of-memory
scheme in this repository uses: the **position-for-position exchange**.
A subblock swap, a 2 KB migration, a restore or a batch install all
decompose into pairs of 64 B slots — one NM, one FM, at the same
within-block index — that are each read *and* written inside one plan;
when such a pair completes, the two slots' contents exchange.  Reads
without a matching write (demand reads, speculative predictor reads,
metadata fetches) and writes without a matching read (LLC writebacks,
in-place demand writes) move nothing.

Cache-style schemes (Alloy) are not bijective: FM is always the home
and NM holds copies.  ``copy_mode=True`` switches the shadow to copy
tracking — an NM write paired with an FM read records a fill; FM
contents stay the identity mapping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.schemes.base import InvariantViolation, Level, Op
from repro.sim.config import SUBBLOCK_BYTES, SUBBLOCKS_PER_BLOCK
from repro.xmem.address import AddressSpace


class ShadowViolation(InvariantViolation):
    """Replayed device traffic contradicts the shadow's model."""


class ShadowMemory:
    """Slot-granularity ledger of logical subblock identities.

    Identities are global flat-space subblock numbers (``addr // 64``).
    NM slot *s* is device-local offset ``s * 64`` of the NM data region;
    FM slot *s* likewise on the FM device.
    """

    def __init__(self, space: AddressSpace, copy_mode: bool = False) -> None:
        self.space = space
        self.copy_mode = copy_mode
        self.nm_slots = space.nm_bytes // SUBBLOCK_BYTES
        self.fm_slots = space.fm_bytes // SUBBLOCK_BYTES
        if copy_mode:
            #: NM slot -> logical id of the FM subblock copied there.
            self._nm_copy: Dict[int, int] = {}
        else:
            self._nm: List[int] = list(range(self.nm_slots))
            self._fm: List[int] = [self.nm_slots + s
                                   for s in range(self.fm_slots)]
            #: logical id -> (level, slot) — the inverse of the arrays.
            self._where: List[Tuple[Level, int]] = (
                [(Level.NM, s) for s in range(self.nm_slots)]
                + [(Level.FM, s) for s in range(self.fm_slots)]
            )
        self.exchanges_replayed = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def location(self, sid: int) -> Tuple[Level, int]:
        """(level, slot) currently holding logical subblock ``sid``."""
        if not 0 <= sid < self.nm_slots + self.fm_slots:
            raise ValueError(f"subblock id {sid} out of space")
        if self.copy_mode:
            # FM is always the home; an NM copy shadows it when present.
            fm_slot = sid - self.nm_slots
            if fm_slot < 0:
                raise ValueError(
                    f"subblock id {sid} is NM-native; a copy-mode scheme "
                    "exposes only FM capacity")
            nm_slot = fm_slot % self.nm_slots
            if self._nm_copy.get(nm_slot) == sid:
                return Level.NM, nm_slot
            return Level.FM, fm_slot
        return self._where[sid]

    def id_at(self, level: Level, slot: int) -> Optional[int]:
        """Logical id stored in a slot (copy mode: None = no NM copy)."""
        if self.copy_mode:
            if level is Level.FM:
                return self.nm_slots + slot
            return self._nm_copy.get(slot)
        return (self._nm if level is Level.NM else self._fm)[slot]

    def check_self_bijection(self) -> None:
        """The ledger itself must stay a bijection (exchange replay
        preserves it by construction; this guards the replay code)."""
        if self.copy_mode:
            for slot, sid in self._nm_copy.items():
                if (sid - self.nm_slots) % self.nm_slots != slot:
                    raise ShadowViolation(
                        f"NM slot {slot} copies line {sid} of a different "
                        "congruence class")
            return
        for sid, (level, slot) in enumerate(self._where):
            stored = self.id_at(level, slot)
            if stored != sid:
                raise ShadowViolation(
                    f"ledger corrupt: id {sid} indexed at {level.value} slot "
                    f"{slot} which holds {stored}")

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def data_slots(self, op: Op) -> range:
        """64 B slots *fully contained* in ``op``'s byte range, restricted
        to the data region.  Metadata traffic (the NM metadata region,
        sub-64 B remap-entry reads, the 8 B tail of a tag-and-data burst)
        therefore contributes no slots."""
        limit = self.nm_slots if op.level is Level.NM else self.fm_slots
        first = (op.addr + SUBBLOCK_BYTES - 1) // SUBBLOCK_BYTES
        last = (op.addr + op.size) // SUBBLOCK_BYTES  # exclusive
        return range(min(first, limit), min(last, limit))

    def apply(self, ops: Iterable[Op]) -> None:
        """Replay one plan's operations (critical path first, then
        background, in issue order), updating the ledger."""
        if self.copy_mode:
            self._apply_copy_mode(list(ops))
            return
        # (level, slot) -> [read, written, queued-for-pairing]
        marks: Dict[Tuple[Level, int], List[bool]] = {}
        # within-block index -> completed slots awaiting a partner, in
        # completion order
        ready: Dict[int, List[Tuple[Level, int]]] = {}
        for op in ops:
            for slot in self.data_slots(op):
                key = (op.level, slot)
                mark = marks.setdefault(key, [False, False, False])
                mark[1 if op.is_write else 0] = True
                if mark[0] and mark[1] and not mark[2]:
                    mark[2] = True
                    self._pair_or_queue(key, marks, ready)
        # Leftovers are fine: read-only slots (demand/speculative reads),
        # write-only slots (in-place writebacks) and completed-but-
        # unpaired slots (in-place rewrite) all move nothing.

    def _pair_or_queue(self, key: Tuple[Level, int],
                       marks: Dict[Tuple[Level, int], List[bool]],
                       ready: Dict[int, List[Tuple[Level, int]]]) -> None:
        level, slot = key
        index = slot % SUBBLOCKS_PER_BLOCK
        queue = ready.setdefault(index, [])
        for position, partner in enumerate(queue):
            if partner[0] is not level:
                queue.pop(position)
                del marks[key]
                del marks[partner]
                self._exchange(key, partner)
                return
        queue.append(key)

    def _exchange(self, a: Tuple[Level, int], b: Tuple[Level, int]) -> None:
        """Position-for-position content swap between an NM and an FM
        slot (the single movement primitive of every bijective scheme)."""
        ida = self.id_at(*a)
        idb = self.id_at(*b)
        self._set(a, idb)
        self._set(b, ida)
        self.exchanges_replayed += 1

    def _set(self, key: Tuple[Level, int], sid: int) -> None:
        level, slot = key
        (self._nm if level is Level.NM else self._fm)[slot] = sid
        self._where[sid] = key

    # ------------------------------------------------------------------
    def _apply_copy_mode(self, ops: List[Op]) -> None:
        """Alloy-style fill tracking: an NM data write paired with an FM
        read at the same within-block index installs a copy; everything
        else (tag probes, dirty victim writebacks, in-place writeback
        writes) leaves the ledger alone."""
        fm_reads: Dict[int, List[int]] = {}
        for op in ops:
            if op.level is Level.FM and not op.is_write:
                for slot in self.data_slots(op):
                    fm_reads.setdefault(slot % SUBBLOCKS_PER_BLOCK,
                                        []).append(self.nm_slots + slot)
        for op in ops:
            if op.level is not Level.NM or not op.is_write:
                continue
            for slot in self.data_slots(op):
                sources = fm_reads.get(slot % SUBBLOCKS_PER_BLOCK, [])
                if len(sources) > 1:
                    raise ShadowViolation(
                        f"ambiguous fill: NM slot {slot} written while "
                        f"{len(sources)} FM lines of its index were read")
                if sources:
                    self._nm_copy[slot] = sources[0]
                # no FM read: in-place write (LLC writeback) — keep copy
