"""Differential validation of flat-memory schemes.

``ShadowMemory`` independently tracks the logical identity of every 64 B
slot by replaying device traffic; ``ValidationOracle`` diffs that ledger
against each scheme's own metadata (``check_invariants``, ``locate``,
``serviced_from``, SILC-FM's Table I tags) on every access.  Enabled
with ``--check`` on the CLI or ``SystemConfig.check_interval > 0``.
"""

from repro.validate.oracle import (
    DEFAULT_CHECK_EVERY,
    OracleViolation,
    ValidationOracle,
)
from repro.validate.shadow import ShadowMemory, ShadowViolation

__all__ = [
    "DEFAULT_CHECK_EVERY",
    "OracleViolation",
    "ShadowMemory",
    "ShadowViolation",
    "ValidationOracle",
]
