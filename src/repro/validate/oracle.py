"""Differential oracle: the scheme's story vs the shadow's ledger.

For every serviced LLC miss the oracle checks, in order:

1. **Serviced-from** — ``plan.serviced_from`` names the level where the
   shadow says the requested subblock lived *before* the plan's own
   data movement (a swap brings data in for *next* time; this access
   was serviced from the old location).
2. **Critical-path coverage** — some critical-path operation actually
   touches the slot the data was serviced from (a plan that claims NM
   service but only ever read FM is mis-accounting latency).
3. **Table I row tag** (SILC-FM only) — the plan's ``note`` matches the
   row the oracle derives from the *pre-access* metadata snapshot.
4. **Replay + locate round-trip** — after replaying the plan's
   operations into the shadow, ``scheme.locate(paddr)`` must agree with
   the shadow about where the requested subblock now lives.

Every ``check_every`` misses (and once at end of run) a **full check**
additionally runs :meth:`MemoryScheme.check_invariants` and scans the
whole flat space: every subblock's ``locate`` must round-trip against
the shadow — this is the bijection proof (no subblock duplicated, none
lost), at the cost of a full-space scan.

The oracle is pure observation: it never mutates scheme state, so a
checked run's figures of merit are identical to an unchecked run's
(only wall-clock time differs).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.silcfm import SilcFmScheme
from repro.schemes.base import AccessPlan, InvariantViolation, MemoryScheme, Op
from repro.sim.config import SUBBLOCK_BYTES
from repro.validate.shadow import ShadowMemory

#: default full-scan period (in checked misses); the scan costs one
#: ``locate`` per subblock of the flat space, so it is the expensive half
#: of the oracle.
DEFAULT_CHECK_EVERY = 10_000


class OracleViolation(InvariantViolation):
    """The scheme's metadata/plan disagrees with the shadow memory."""


class ValidationOracle:
    """Differential checker wrapping one scheme instance.

    Hooked into the controller around every ``scheme.access`` /
    ``writeback`` / ``epoch`` call (see
    :class:`repro.cpu.controller.FlatMemoryController`).  Raises
    :class:`OracleViolation` (or lets the scheme's own
    :class:`InvariantViolation` propagate) on the first inconsistency.
    """

    def __init__(self, scheme: MemoryScheme,
                 check_every: int = DEFAULT_CHECK_EVERY) -> None:
        self.scheme = scheme
        self.space = scheme.space
        self.check_every = max(0, int(check_every))
        self.shadow = ShadowMemory(self.space, copy_mode=not scheme.bijective)
        self.accesses_checked = 0
        self.full_scans = 0
        self._expected_note: Optional[str] = None
        self._silcfm = isinstance(scheme, SilcFmScheme)
        #: telemetry hub; None in normal runs (see attach_telemetry).
        self.telemetry = None

    def attach_telemetry(self, hub) -> None:
        """Expose checking progress and mark full scans in the trace —
        an oracle scan between two samples explains a throughput dip
        (it is wall-clock work, not simulated time)."""
        self.telemetry = hub
        hub.meter("oracle.accesses_checked", lambda: self.accesses_checked)
        hub.meter("oracle.full_scans", lambda: self.full_scans)

    # ------------------------------------------------------------------
    # controller hooks
    # ------------------------------------------------------------------
    def before_access(self, paddr: int, is_write: bool) -> None:
        """Snapshot-derived expectations, taken before the scheme runs."""
        if self._silcfm:
            self._expected_note = self._predict_note(paddr)

    def after_access(self, paddr: int, is_write: bool,
                     plan: AccessPlan) -> None:
        # per-op sanity check, hoisted out of Op.__post_init__ onto the
        # checked path (unchecked runs construct ops validation-free)
        plan.validate()
        sid = paddr // SUBBLOCK_BYTES
        level, slot = self.shadow.location(sid)
        if plan.serviced_from is not level:
            raise OracleViolation(
                f"{self.scheme.name}: access {paddr:#x} serviced from "
                f"{plan.serviced_from.value} (note={plan.note!r}) but the "
                f"shadow holds its data at {level.value} slot {slot}")
        critical = plan.critical_ops()
        if not any(op.level is level and slot in self.shadow.data_slots(op)
                   for op in critical):
            raise OracleViolation(
                f"{self.scheme.name}: access {paddr:#x} serviced from "
                f"{level.value} slot {slot} but no critical-path operation "
                f"touches that slot (note={plan.note!r})")
        if self._expected_note is not None and plan.note != self._expected_note:
            raise OracleViolation(
                f"{self.scheme.name}: access {paddr:#x} produced Table I "
                f"tag {plan.note!r} but pre-access metadata implies "
                f"{self._expected_note!r}")
        self._expected_note = None
        self.shadow.apply(critical + list(plan.background))
        self._check_locate(paddr)
        self.accesses_checked += 1
        if self.check_every and self.accesses_checked % self.check_every == 0:
            self.full_check()

    def after_writeback(self, paddr: int, plan: AccessPlan) -> None:
        """LLC dirty eviction: the write must land where the data lives,
        and must not move anything."""
        plan.validate()
        level, slot = self.shadow.location(paddr // SUBBLOCK_BYTES)
        if plan.serviced_from is not level:
            raise OracleViolation(
                f"{self.scheme.name}: writeback {paddr:#x} routed to "
                f"{plan.serviced_from.value} but the shadow holds its data "
                f"at {level.value} slot {slot}")
        self.shadow.apply(plan.critical_ops() + list(plan.background))

    def after_epoch(self, ops: Iterable[Op]) -> None:
        """Epoch-based bulk migration (HMA): replay and re-verify the
        scheme's bookkeeping at its most dangerous moment."""
        ops = list(ops)
        for op in ops:
            op.validate()
        self.shadow.apply(ops)
        self.scheme.check_invariants()

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def _check_locate(self, paddr: int) -> None:
        sid = paddr // SUBBLOCK_BYTES
        slevel, sslot = self.shadow.location(sid)
        llevel, loffset = self.scheme.locate(paddr)
        if (llevel is not slevel or loffset // SUBBLOCK_BYTES != sslot
                or loffset % SUBBLOCK_BYTES != paddr % SUBBLOCK_BYTES):
            raise OracleViolation(
                f"{self.scheme.name}: locate({paddr:#x}) = "
                f"({llevel.value}, {loffset:#x}) but the shadow holds the "
                f"data at {slevel.value} slot {sslot}")

    def full_check(self) -> None:
        """Scheme self-consistency plus the whole-space bijection scan."""
        self.scheme.check_invariants()
        self.shadow.check_self_bijection()
        start = self.shadow.nm_slots if self.shadow.copy_mode else 0
        for sid in range(start, self.shadow.nm_slots + self.shadow.fm_slots):
            self._check_locate(sid * SUBBLOCK_BYTES)
        self.full_scans += 1
        if self.telemetry is not None:
            self.telemetry.instant("oracle-full-check", cat="oracle",
                                   scan=self.full_scans,
                                   accesses_checked=self.accesses_checked)

    # ------------------------------------------------------------------
    # SILC-FM Table I row prediction
    # ------------------------------------------------------------------
    def _predict_note(self, paddr: int) -> Optional[str]:
        """Derive the Table I row this access must take from the current
        (pre-access) metadata.  Returns None — skip the check — on aging
        boundaries, where ``access()`` itself releases stale locks
        *before* building the plan, invalidating any snapshot taken out
        here."""
        scheme = self.scheme
        monitor = scheme.monitor
        if (monitor.accesses + 1) % monitor.aging_period == 0:
            return None
        bypassing = scheme._bypassing
        index = self.space.subblock_index(paddr)
        if self.space.is_fm(paddr):
            block = self.space.block_of(paddr)
            way = scheme.way_of_block(block)
            if way is not None:
                frame = scheme.frame(way)
                if frame.locked or frame.bit(index):
                    return "row1"
                return "row2-bypass" if bypassing else "row2"
            if bypassing:
                return "row5-bypass"
            if scheme._choose_victim(block % scheme.num_sets, block) is None:
                return "all-locked"
            return "row5"
        frame = scheme.frame(self.space.nm_block_of(paddr))
        if frame.locked and frame.lock_owner == "fm":
            return "nm-displaced-by-lock"
        if frame.remap is not None and not frame.locked and frame.bit(index):
            return "row3-bypass" if bypassing else "row3"
        return "row4"
