"""Set-associative cache substrate (L1s + shared LLC)."""

from repro.cache.cache import AccessOutcome, Cache, CacheStats
from repro.cache.hierarchy import CacheHierarchy, HierarchyOutcome

__all__ = ["AccessOutcome", "Cache", "CacheHierarchy", "CacheStats", "HierarchyOutcome"]
