"""Set-associative cache with true-LRU replacement and write-back,
write-allocate policy.

The hierarchy built from these (``repro.cache.hierarchy``) filters the
workload's reference stream into the LLC-miss stream that the flat-memory
schemes see; its writeback stream becomes the background write traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


@dataclass
class AccessOutcome:
    """Result of one cache access."""

    hit: bool
    #: line-aligned address evicted dirty, if any (to be written back)
    writeback_addr: Optional[int] = None


@dataclass
class _Line:
    dirty: bool = False


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Cache:
    """A single cache level.

    Each set is an :class:`OrderedDict` from tag to line state; ordering
    encodes LRU (last item = most recently used).
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64,
                 latency_cycles: int = 1, name: str = "cache") -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be ways * line_bytes * num_sets")
        self.num_sets = size_bytes // (ways * line_bytes)
        if not _is_power_of_two(self.num_sets):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.latency_cycles = latency_cycles
        self.name = name
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _index_tag(self, addr: int):
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Look up ``addr``; on miss, allocate (evicting LRU)."""
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        line = cache_set.get(tag)
        if line is not None:
            cache_set.move_to_end(tag)
            if is_write:
                line.dirty = True
            self.stats.hits += 1
            return AccessOutcome(hit=True)

        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= self.ways:
            victim_tag, victim = cache_set.popitem(last=False)
            if victim.dirty:
                self.stats.writebacks += 1
                victim_line = victim_tag * self.num_sets + index
                writeback = victim_line * self.line_bytes
        cache_set[tag] = _Line(dirty=is_write)
        return AccessOutcome(hit=False, writeback_addr=writeback)

    def probe(self, addr: int) -> bool:
        """Check residency without disturbing LRU or stats."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def invalidate(self, addr: int) -> bool:
        """Drop a line (no writeback).  Returns True if it was present."""
        index, tag = self._index_tag(addr)
        return self._sets[index].pop(tag, None) is not None

    def flush(self) -> List[int]:
        """Empty the cache, returning the dirty line addresses."""
        dirty: List[int] = []
        for index, cache_set in enumerate(self._sets):
            for tag, line in cache_set.items():
                if line.dirty:
                    dirty.append((tag * self.num_sets + index) * self.line_bytes)
            cache_set.clear()
        return dirty

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
