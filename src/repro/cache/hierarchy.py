"""The paper's cache hierarchy: private L1 I/D per core, shared L2 LLC.

The hierarchy is functional (hit/miss filtering + writeback generation);
its latencies contribute to the core's compute time while LLC misses go
to the flat-memory system.  Inclusion is not enforced (the paper does not
specify it); the LLC filters what matters — the post-LLC miss stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.cache import Cache
from repro.sim.config import CacheHierarchyConfig


@dataclass
class HierarchyOutcome:
    """What one data reference did to the hierarchy."""

    llc_miss: bool
    latency_cycles: int
    #: dirty LLC line evicted by this reference, if any
    writeback_addr: Optional[int] = None


class CacheHierarchy:
    """Private L1s in front of a shared LLC."""

    def __init__(self, config: CacheHierarchyConfig, cores: int) -> None:
        self.cores = cores
        self.l1d = [
            Cache(config.l1d.size_bytes, config.l1d.ways, config.l1d.line_bytes,
                  config.l1d.latency_cycles, name=f"l1d{c}")
            for c in range(cores)
        ]
        self.l1i = [
            Cache(config.l1i.size_bytes, config.l1i.ways, config.l1i.line_bytes,
                  config.l1i.latency_cycles, name=f"l1i{c}")
            for c in range(cores)
        ]
        self.l2 = Cache(config.l2.size_bytes, config.l2.ways, config.l2.line_bytes,
                        config.l2.latency_cycles, name="l2")

    # ------------------------------------------------------------------
    def access(self, core: int, paddr: int, is_write: bool,
               is_instruction: bool = False) -> HierarchyOutcome:
        """Run one reference through L1 -> L2.

        Returns whether it missed the LLC (and must go to memory), the
        hierarchy lookup latency, and any dirty LLC eviction.
        """
        l1 = self.l1i[core] if is_instruction else self.l1d[core]
        outcome = l1.access(paddr, is_write)
        latency = l1.latency_cycles
        if outcome.hit:
            return HierarchyOutcome(llc_miss=False, latency_cycles=latency)

        # L1 victim writebacks are absorbed by the L2 (write hit or
        # allocate); we fold them into the L2 access below for speed.
        l2_outcome = self.l2.access(paddr, is_write)
        latency += self.l2.latency_cycles
        if l2_outcome.hit:
            return HierarchyOutcome(llc_miss=False, latency_cycles=latency)
        return HierarchyOutcome(
            llc_miss=True,
            latency_cycles=latency,
            writeback_addr=l2_outcome.writeback_addr,
        )

    # ------------------------------------------------------------------
    def llc_mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction at the LLC."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return self.l2.stats.misses / instructions * 1000.0

    def per_core_l1d_stats(self) -> List:
        return [c.stats for c in self.l1d]
