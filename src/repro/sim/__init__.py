"""Simulation kernel: discrete-event engine and system configuration."""

from repro.sim.config import (
    BLOCK_BYTES,
    SUBBLOCK_BYTES,
    SUBBLOCKS_PER_BLOCK,
    CacheConfig,
    CacheHierarchyConfig,
    CoreConfig,
    SilcFmConfig,
    SystemConfig,
    default_config,
    paper_config,
)
from repro.sim.engine import Engine, SimulationError

__all__ = [
    "BLOCK_BYTES",
    "SUBBLOCK_BYTES",
    "SUBBLOCKS_PER_BLOCK",
    "CacheConfig",
    "CacheHierarchyConfig",
    "CoreConfig",
    "Engine",
    "SilcFmConfig",
    "SimulationError",
    "SystemConfig",
    "default_config",
    "paper_config",
]
