"""System configuration (the paper's Table II) and simulation scaling.

The paper simulates a 16-core, 4-wide out-of-order system with private
L1s, a shared 8 MB L2 LLC, an 8-channel HBM near memory (NM) and a
4-channel DDR3 far memory (FM).  Both buses run at 800 MHz (DDR 1.6 GT/s);
HBM's 128-bit channels vs DDR3's 64-bit channels and the 8:4 channel split
give the 4:1 NM:FM bandwidth ratio the bypass feature targets.

Because a cycle-level Python simulation cannot run 16 billion
instructions, every capacity is scaled down by a common factor while the
ratios that drive the paper's results (footprint:NM, FM:NM capacity and
bandwidth, MPKI, hot-set fraction) are preserved.  ``SystemConfig`` holds
the scaled values actually simulated; ``paper_config`` documents the
unscaled Table II numbers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.dram.timing import DDR3_TIMINGS, HBM2_TIMINGS, DRAMTimings

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: 64 B: the transfer unit between LLC and memory, and SILC-FM's subblock.
SUBBLOCK_BYTES = 64
#: 2 KB: the paper's large block / OS page size.
BLOCK_BYTES = 2048
#: Subblocks per large block (32 -> one 32-bit residency vector per block).
SUBBLOCKS_PER_BLOCK = BLOCK_BYTES // SUBBLOCK_BYTES


@dataclass(frozen=True)
class CoreConfig:
    """Per-core pipeline parameters (Table II, processor section)."""

    frequency_ghz: float = 3.2
    issue_width: int = 4
    rob_entries: int = 128
    #: Maximum LLC misses a core keeps in flight (memory-level
    #: parallelism).  A 128-entry ROB with ~1 miss / 10 instructions
    #: sustains roughly this many outstanding misses.
    max_outstanding_misses: int = 8


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = SUBBLOCK_BYTES


@dataclass(frozen=True)
class CacheHierarchyConfig:
    """Table II cache section (sizes scaled alongside memory)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * KB, 2, 4)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * KB, 4, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * MB, 16, 11)
    )


@dataclass(frozen=True)
class SilcFmConfig:
    """Parameters of the SILC-FM mechanism itself (Section III)."""

    associativity: int = 4
    #: Access-count threshold above which a block is considered hot and
    #: locked (the paper found 50 works best).
    hot_threshold: int = 50
    #: Aging: counters shift right every this many memory accesses.
    #: The paper uses one million; at simulation scale (traces of a few
    #: hundred thousand misses rather than billions) the period scales
    #: down so hotness decays several times per run — otherwise every
    #: warm block saturates its 6-bit counter and locks forever.
    aging_period_accesses: int = 50_000
    #: Bit-vector history table entries (paper: ~1 M; scaled with memory).
    bitvector_table_entries: int = 65536
    #: Way/location predictor entries (paper: 4 K).
    predictor_entries: int = 4096
    #: SRAM metadata (remap-entry) cache entries.  The full remap table
    #: lives in the NM metadata channel; hot frames' entries are cached
    #: in SRAM — the same class of structure as PoM's remap cache and
    #: the paper's own SRAM bit-vector table — so the metadata channel
    #: only sees cold-set traffic.
    metadata_cache_entries: int = 256
    #: Target NM share of demand traffic for bandwidth balancing
    #: (NM:FM bandwidth is 4:1 so the ideal share is 4/5).
    bypass_target_access_rate: float = 0.8
    #: Sliding window (in LLC misses) over which the access rate is
    #: measured for the bypass decision.
    access_rate_window: int = 4096
    #: Feature gates, used by the Fig. 6 cumulative breakdown.
    enable_locking: bool = True
    enable_bypass: bool = True
    enable_predictor: bool = True
    enable_bitvector_history: bool = True


@dataclass(frozen=True)
class SystemConfig:
    """Everything a simulation run needs.

    The default instance is the *scaled* Table II system: capacities are
    divided by ``scale`` (default 1024) so a full 14-benchmark sweep runs
    in minutes, while all capacity/bandwidth ratios match the paper.
    """

    cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    caches: CacheHierarchyConfig = field(default_factory=CacheHierarchyConfig)
    nm_bytes: int = 4 * MB
    fm_bytes: int = 16 * MB
    nm_timings: DRAMTimings = field(default_factory=lambda: HBM2_TIMINGS)
    fm_timings: DRAMTimings = field(default_factory=lambda: DDR3_TIMINGS)
    silcfm: SilcFmConfig = field(default_factory=SilcFmConfig)
    page_bytes: int = BLOCK_BYTES
    #: Remap-metadata read size (one remap entry + bit vector + counters).
    metadata_bytes: int = 8
    seed: int = 1
    #: Differential-oracle full-scan period, in LLC misses.  0 (default)
    #: disables validation entirely; N > 0 attaches the shadow-memory
    #: oracle (:mod:`repro.validate`) to every access and runs the
    #: whole-space bijection scan every N misses.  Observation only —
    #: the simulated figures of merit are unchanged.
    check_interval: int = 0
    #: Telemetry sampling window, in CPU cycles.  0 (default) disables
    #: telemetry entirely (no hub is built, hot paths pay nothing);
    #: N > 0 attaches a :class:`repro.telemetry.Telemetry` hub to the
    #: run and samples every registered probe each N cycles.  Like the
    #: oracle, telemetry is pure observation — the simulated figures of
    #: merit are unchanged — and because the field is part of this
    #: config it participates in the experiment executor's cache key.
    telemetry_window: int = 0
    #: MSHR (miss-status holding register) file entries in front of the
    #: flat-memory controller.  N > 0 bounds the number of distinct
    #: in-flight misses: same-subblock *read* misses coalesce onto one
    #: transaction (all waiters wake on its completion) and a full file
    #: is a structural stall — arrivals queue until an entry frees.
    #: The default is sized to the machine's aggregate memory-level
    #: parallelism (``cores`` × ``CoreConfig.max_outstanding_misses`` =
    #: 16 × 8): the silc-mshr32 postmortem (docs/architecture.md)
    #: showed any smaller file is a hard concurrency cap that costs far
    #: more than coalescing recovers.  0 is the *compatibility* value:
    #: misses flow straight to the controller exactly as before the
    #: transaction-pipeline refactor existed, and results are
    #: bit-identical to pre-MSHR runs.  Like the knobs above, the field
    #: is part of this config and so participates in the experiment
    #: executor's cache key.
    mshr_entries: int = 128
    #: Per-request span sampling rate, in new-transaction arrivals.
    #: 0 (default) disables span tracing entirely — no recorder is
    #: built, hot paths pay one ``is None`` check, and executor cache
    #: keys / golden results stay byte-identical to pre-span builds.
    #: N >= 1 samples every Nth new transaction (deterministic modulo
    #: over the arrival sequence; 1 = every request) with a
    #: :class:`repro.telemetry.spans.Span` recording cycle-stamped
    #: stage transitions through the pipeline.  Requires telemetry
    #: (``telemetry_window > 0``): the span aggregate rides inside the
    #: telemetry snapshot and the Perfetto slices inside its trace.
    span_sample_rate: int = 0
    #: Batch-engine window, in LLC misses per core.  0 (default) is the
    #: scalar path: traces are generated record-by-record and every
    #: miss walks the allocation-per-object pipeline.  N > 0 selects
    #: the vectorized batch engine (:mod:`repro.workloads` batch
    #: generation, :mod:`repro.cpu.batch`, the DRAM fast paths): each
    #: core pregenerates N misses at a time into numpy-backed column
    #: arrays and the controller/device data plane takes allocation-
    #: free fast paths wherever the scalar path's behaviour is provably
    #: reproduced, falling back to the scalar machinery everywhere
    #: else.  Simulated results are **bit-identical** in both modes
    #: (``tests/integration/test_batch_equivalence.py`` gates every
    #: scheme); only wall-clock speed changes.  Applies to ``"miss"``
    #: trace mode; reference mode always uses the scalar path.
    batch_window: int = 0

    def __post_init__(self) -> None:
        if self.nm_bytes % BLOCK_BYTES:
            raise ValueError("nm_bytes must be a multiple of the 2KB block")
        if self.fm_bytes % BLOCK_BYTES:
            raise ValueError("fm_bytes must be a multiple of the 2KB block")
        if self.fm_bytes < self.nm_bytes:
            raise ValueError("far memory must be at least as large as near memory")
        if self.check_interval < 0:
            raise ValueError("check_interval must be >= 0")
        if self.telemetry_window < 0:
            raise ValueError("telemetry_window must be >= 0")
        if self.mshr_entries < 0:
            raise ValueError("mshr_entries must be >= 0")
        if self.span_sample_rate < 0:
            raise ValueError("span_sample_rate must be >= 0")
        if self.span_sample_rate > 0 and self.telemetry_window <= 0:
            raise ValueError("span tracing requires telemetry "
                             "(set telemetry_window > 0)")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Flat address space size: NM and FM both contribute capacity."""
        return self.nm_bytes + self.fm_bytes

    @property
    def nm_blocks(self) -> int:
        return self.nm_bytes // BLOCK_BYTES

    @property
    def fm_blocks(self) -> int:
        return self.fm_bytes // BLOCK_BYTES

    @property
    def fm_to_nm_ratio(self) -> int:
        return self.fm_bytes // self.nm_bytes

    def with_ratio(self, fm_to_nm: int) -> "SystemConfig":
        """A copy with a different FM:NM capacity ratio (Fig. 9 sweep),
        holding FM capacity constant so the workload footprint pressure
        stays comparable."""
        return dataclasses.replace(self, nm_bytes=self.fm_bytes // fm_to_nm)

    def with_silcfm(self, **overrides) -> "SystemConfig":
        """A copy with SILC-FM feature gates / parameters overridden."""
        return dataclasses.replace(
            self, silcfm=dataclasses.replace(self.silcfm, **overrides)
        )


def config_from_dict(data: dict) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from ``dataclasses.asdict`` output.

    The exact inverse of ``dataclasses.asdict``: every nested dataclass
    (core, cache hierarchy, DRAM timings, SILC-FM parameters) is
    reconstructed field-for-field, so a config that crosses a JSON
    boundary — the sweep service's wire protocol, a stored experiment
    cell — hashes to the same executor cache key as the original.
    """
    data = dict(data)
    data["core"] = CoreConfig(**data["core"])
    data["caches"] = CacheHierarchyConfig(
        **{level: CacheConfig(**fields)
           for level, fields in data["caches"].items()})
    data["nm_timings"] = DRAMTimings(**data["nm_timings"])
    data["fm_timings"] = DRAMTimings(**data["fm_timings"])
    data["silcfm"] = SilcFmConfig(**data["silcfm"])
    return SystemConfig(**data)


def config_digest(config: SystemConfig) -> str:
    """Short stable content hash of a config.

    Labels telemetry artifacts (the run-metadata header) so ``repro
    analyze`` can say which configuration produced a file without the
    originating command; the experiment executor's cell hash — which
    also covers workload and run parameters — remains the cache
    identity.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def paper_config() -> SystemConfig:
    """The unscaled Table II system (4 GB NM : 16 GB FM).

    Provided for documentation and for users with the patience for a
    full-scale run; the test-suite and benches use the scaled default.
    """
    return SystemConfig(nm_bytes=4 * GB, fm_bytes=16 * GB)


def default_config(scale: float = 2.0) -> SystemConfig:
    """The scaled simulation config.

    The default scale (NM = 8 MiB, 4096 frames) is the smallest at which
    hot working sets populate enough DRAM rows per bank for row-buffer
    behaviour to look like the paper's full-size system.  ``scale`` can
    be raised for higher fidelity (benches grow trace lengths to match)
    and can also be set with the ``REPRO_SCALE`` environment variable.
    """
    env = os.environ.get("REPRO_SCALE")
    if env is not None:
        scale = float(env)
    nm = int(4 * MB * scale) // BLOCK_BYTES * BLOCK_BYTES
    # the shared LLC scales with memory capacity (the paper's 8 MB L2
    # sits under GB-scale footprints; an unscaled L2 would swallow the
    # scaled hot sets entirely and no miss stream would survive it)
    l2_size = 64 * KB
    while l2_size < 8 * MB * scale / 512:
        l2_size *= 2
    caches = CacheHierarchyConfig(
        l2=CacheConfig(int(l2_size), 16, 11))
    return SystemConfig(nm_bytes=nm, fm_bytes=4 * nm, caches=caches)
