"""Discrete-event simulation engine.

Every timing component in the reproduction (DRAM channels, cores, the
memory controller, epoch timers) is driven by a single :class:`Engine`
instance.  Time is measured in **CPU cycles** (the paper's cores run at
3.2 GHz; memory-cycle components convert internally).

The engine is a plain binary-heap event loop: components schedule
callbacks at absolute or relative times and the loop dispatches them in
timestamp order.  Ties are broken by insertion order so simulations are
fully deterministic for a given seed.

Hot-path notes: entries are 4-element *lists* (heapq compares them
element-wise exactly like tuples, and the unique ``seq`` tie-break means
the callback itself is never compared) recycled through a small free
list, so steady-state dispatch allocates nothing per event.  Timestamps
stay whatever numeric type the caller scheduled — pure integer-cycle
delays (trace gaps, epoch periods) never get coerced to float, so
int-only event chains keep exact integer arithmetic.  ``run`` without a
horizon or watchdog takes a specialised loop with no per-event limit
checks.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

#: recycled event entries kept per engine; beyond this they are dropped
#: to the allocator (a bound so a burst can't pin memory forever).
_FREE_LIST_CAP = 4096


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in
    the past)."""


class Engine:
    """A deterministic discrete-event loop.

    >>> eng = Engine()
    >>> fired = []
    >>> eng.schedule(10, fired.append, "a")
    >>> eng.schedule(5, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    >>> eng.now
    10.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: heap of ``[when, seq, fn, args]`` entries (lists, recycled).
        self._queue: List[list] = []
        self._free: List[list] = []
        self._seq = 0
        self._running = False
        self._halt = False
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        self._push(self.now + delay, fn, args)

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        self._push(when, fn, args)

    def _push(self, when: float, fn: Callable[..., None], args: tuple) -> None:
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = self._seq
            entry[2] = fn
            entry[3] = args
        else:
            entry = [when, self._seq, fn, args]
        heapq.heappush(self._queue, entry)
        self._seq += 1

    def schedule_every(self, period: float, fn: Callable[[], None],
                       while_: Optional[Callable[[], bool]] = None) -> None:
        """Run ``fn()`` every ``period`` cycles (first firing one period
        from now) — the periodic-observer primitive the telemetry
        sampler uses.

        The chain self-limits in two ways so a pure observer can never
        keep a simulation alive or mask a drained queue:

        * when ``while_`` is given and returns False, the tick returns
          without running ``fn`` or rescheduling;
        * when, at tick dispatch, no *other* events are queued, ``fn``
          runs one final time and the chain ends (a lone periodic
          observer means the simulation proper is over).
        """
        if period <= 0:
            raise SimulationError("periodic tasks need a positive period")

        def tick() -> None:
            if while_ is not None and not while_():
                return
            fn()
            if self._queue:
                self.schedule(period, tick)

        self.schedule(period, tick)

    # ------------------------------------------------------------------
    # two-tier clock support (repro.sim.window)
    # ------------------------------------------------------------------
    def horizon(self) -> float:
        """Absolute time of the earliest queued event, ``math.inf`` when
        the queue is empty.

        This is the Tier-1 event horizon the closed-form window
        evaluator consults: any closed-form advance must stop at (or
        before) this time, because the queued event may mutate state the
        analytic timing depends on.  Events scheduled exactly at ``now``
        (ties) are part of the horizon — ``horizon() == now`` means the
        current cycle still has undispatched work.
        """
        queue = self._queue
        return queue[0][0] if queue else math.inf

    def checkpoint(self) -> Tuple[float, int, int]:
        """Snapshot the engine's clock state: ``(now, seq,
        events_dispatched)``.

        The entry token for a closed-form window: callers record the
        checkpoint, advance analytically, then commit with
        :meth:`resume_at` — or compare against a later checkpoint to
        attribute dispatch counts to a window.  The event queue itself
        is not copied (windows never unwind dispatched events; they only
        decide how far the clock may move without dispatching).
        """
        return (self.now, self._seq, self.events_dispatched)

    def resume_at(self, when: float) -> None:
        """Advance the clock to ``when`` without dispatching anything.

        The commit half of the checkpoint/resume protocol: a closed-form
        evaluator that has accounted for every access in ``[now, when)``
        analytically moves the clock forward in one step.  Guarded both
        ways — the clock can never move backwards, and never past the
        Tier-1 :meth:`horizon` (skipping a queued event would desync the
        two tiers).
        """
        if when < self.now:
            raise SimulationError(
                f"cannot resume at {when}, current time is {self.now}")
        if when > self.horizon():
            raise SimulationError(
                f"cannot resume at {when} past the event horizon "
                f"{self.horizon()} (a queued Tier-1 event would be skipped)")
        self.now = when

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def halt(self) -> None:
        """Stop the running ``run`` loop after the current event's
        callback returns (remaining events stay queued).  A no-op when
        nothing is running."""
        self._halt = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Dispatch events until the queue drains (or :meth:`halt`).

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` bounds the number of dispatches — the
        watchdog the test-suite uses against runaway simulations.
        Watchdog semantics (shared with ``System.run``): exactly
        ``max_events`` dispatches are allowed; the engine raises when a
        further event would have to be dispatched, so a queue of exactly
        ``max_events`` events completes cleanly.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._halt = False
        queue = self._queue
        free = self._free
        heappop = heapq.heappop
        dispatched = 0
        try:
            if until is None and max_events is None:
                # fast path: no horizon, no watchdog — nothing to check
                # per event beyond the halt flag.
                while queue:
                    entry = heappop(queue)
                    self.now = entry[0]
                    fn = entry[2]
                    args = entry[3]
                    entry[2] = entry[3] = None
                    if len(free) < _FREE_LIST_CAP:
                        free.append(entry)
                    fn(*args)
                    dispatched += 1
                    if self._halt:
                        self._halt = False
                        break
                return
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                entry = heappop(queue)
                self.now = when
                fn = entry[2]
                args = entry[3]
                entry[2] = entry[3] = None
                if len(free) < _FREE_LIST_CAP:
                    free.append(entry)
                fn(*args)
                dispatched += 1
                if self._halt:
                    self._halt = False
                    return
        finally:
            self.events_dispatched += dispatched
            self._running = False

    def step(self) -> bool:
        """Dispatch a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        entry = heapq.heappop(self._queue)
        self.now = entry[0]
        fn = entry[2]
        args = entry[3]
        entry[2] = entry[3] = None
        if len(self._free) < _FREE_LIST_CAP:
            self._free.append(entry)
        fn(*args)
        self.events_dispatched += 1
        return True

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
