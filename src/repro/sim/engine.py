"""Discrete-event simulation engine.

Every timing component in the reproduction (DRAM channels, cores, the
memory controller, epoch timers) is driven by a single :class:`Engine`
instance.  Time is measured in **CPU cycles** (the paper's cores run at
3.2 GHz; memory-cycle components convert internally).

The engine is a plain binary-heap event loop: components schedule
callbacks at absolute or relative times and the loop dispatches them in
timestamp order.  Ties are broken by insertion order so simulations are
fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in
    the past)."""


class Engine:
    """A deterministic discrete-event loop.

    >>> eng = Engine()
    >>> fired = []
    >>> eng.schedule(10, fired.append, "a")
    >>> eng.schedule(5, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    >>> eng.now
    10.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._running = False
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (when, self._seq, fn, args))
        self._seq += 1

    def schedule_every(self, period: float, fn: Callable[[], None],
                       while_: Optional[Callable[[], bool]] = None) -> None:
        """Run ``fn()`` every ``period`` cycles (first firing one period
        from now) — the periodic-observer primitive the telemetry
        sampler uses.

        The chain self-limits in two ways so a pure observer can never
        keep a simulation alive or mask a drained queue:

        * when ``while_`` is given and returns False, the tick returns
          without running ``fn`` or rescheduling;
        * when, at tick dispatch, no *other* events are queued, ``fn``
          runs one final time and the chain ends (a lone periodic
          observer means the simulation proper is over).
        """
        if period <= 0:
            raise SimulationError("periodic tasks need a positive period")

        def tick() -> None:
            if while_ is not None and not while_():
                return
            fn()
            if self._queue:
                self.schedule(period, tick)

        self.schedule(period, tick)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Dispatch events until the queue drains.

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` bounds the number of dispatches, which the
        test-suite uses as a watchdog against runaway simulations.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                when, _seq, fn, args = self._queue[0]
                if until is not None and when > until:
                    self.now = until
                    return
                heapq.heappop(self._queue)
                self.now = when
                fn(*args)
                dispatched += 1
                self.events_dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, fn, args = heapq.heappop(self._queue)
        self.now = when
        fn(*args)
        self.events_dispatched += 1
        return True

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
