"""Tier 2 of the two-tier simulation clock: the closed-form window
evaluator for the batch engine's steady-state data plane.

The :class:`~repro.sim.engine.Engine` heap stays the global sequencer —
Tier 1 — for everything *sparse*: scheme decisions that mutate placement
state on a clock (HMA's OS epoch), periodic observers (telemetry
sampler, refresh), MSHR structural-stall retries, and warmup/halt
control flow.  But in the bench regime ~99% of dispatched events are
one of a handful of *dense* shapes, each with a fixed, fully
transcribable body:

* a core issue event (``BatchCore._issue_cols``),
* a fast-path device completion (``Channel._complete_fast``),
* a queued turbo completion (``Channel._complete_turbo``),

and inside the completion shapes, the per-request callbacks
``MemoryRequest.fast_done`` (single-op fast path, including MSHR
release and waiter wake-up) and ``MemoryRequest.op_done`` (declined
plans: the stage walk, next-stage re-issue and final
``FlatMemoryController._complete`` accounting) are transcribed too, so
a declined access stays fused end to end.

:func:`run_closed_form` pops events straight off the engine's real
heap, recognises those shapes by the identity of the callback's
underlying function (``fn.__func__``), and executes an exact inline
transcription — the window's issue order, bank prepare / row-buffer
hit-miss timing, bus occupancy chain and MSHR occupancy accounting all
evaluated in one frame per event instead of a ~40-call plumbing chain.
Everything else falls through to generic ``fn(*args)`` dispatch.

Why this is safe by construction
--------------------------------
Every event — fused or not — lives on the one real heap, pops in the
same global order, and advances ``engine.now`` identically.  Routing an
event to generic dispatch is therefore *always* correct; fusing is pure
optimisation, and the only obligation is that each inline body be a
bit-exact transcription of the method it replaces (same float operand
order, same stat update order, same event pushes).  That contract is
gated end-to-end by ``tests/integration/test_batch_equivalence.py`` and
the seeded-fault mutation self-tests (``cf-*`` faults in
:mod:`repro.sim.faults`), which plant realistic transcription bugs in
this module and assert the harness trips.

Steady-state certificates
-------------------------
Before fusing an event the evaluator consults the scheme's
:meth:`~repro.schemes.base.MemoryScheme.steady_window_certificate`: a
time before which the scheme guarantees no clock-driven state change.
Events at or past the certificate re-enter Tier-1 generic dispatch and
the certificate is re-queried afterwards.  For the five access-driven
schemes the certificate is ``inf`` (their state only moves inside the
accesses the evaluator itself executes); for HMA it is the next epoch
boundary, so the epoch event, its bulk migration and its stall window
all run generically, with the inline dispatch's own ``_stall_until``
check staying authoritative regardless.  The certificate may therefore
under-shoot safely — correctness never depends on it.

Re-entry points back to Tier 1 (generic dispatch), exhaustively:

* an event at/past the scheme certificate (epoch boundaries);
* a callback whose ``__func__`` is not one of the dense shapes
  (epoch timers, telemetry ticks, refresh, stall-retry closures,
  warmup ``checking`` wrappers);
* ``engine.halt()`` raised by any callback (core completion, warmup
  crossing) — the evaluator finishes the current event and returns,
  exactly like ``Engine.run``;
* the scheme declining the fast shape
  (``BatchFlatMemoryController._dispatch_declined``) — the access runs
  the full scalar plan machinery inside the fused frame.

The engine's :meth:`~repro.sim.engine.Engine.checkpoint` /
:meth:`~repro.sim.engine.Engine.resume_at` /
:meth:`~repro.sim.engine.Engine.horizon` protocol is the generic form
of this contract (advance the clock only through territory with no
queued Tier-1 event); the evaluator specialises it to per-event
granularity, so ``now`` never moves past ``horizon()`` by
construction.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Optional

from repro.cpu.batch import BatchCore
from repro.cpu.core import DIRTY_FIFO_DEPTH
from repro.cpu.mshr import (COMPLETE, DISPATCHED, QUEUED, STAGING,
                            MemoryRequest, PendingMiss)
from repro.dram.channel import Channel
from repro.dram.request import Priority
from repro.schemes.base import Level
from repro.obs import log as obs_log
from repro.sim import faults
from repro.sim.engine import _FREE_LIST_CAP, SimulationError

_log = obs_log.get_logger("repro.sim.window")

#: the dense-shape identities, resolved once at import (class-level
#: functions; instance rebinding like ``enable_turbo`` never changes
#: ``bound.__func__`` for methods looked up from these classes).
_ISSUE = BatchCore._issue_cols
_MISS_DONE = BatchCore._miss_done
_COMPLETE_FAST = Channel._complete_fast
_COMPLETE_TURBO = Channel._complete_turbo
_FAST_DONE = MemoryRequest.fast_done
_OP_DONE = MemoryRequest.op_done

_DEMAND = Priority.DEMAND


class ClockStats:
    """Two-tier dispatch attribution for one batch-mode run.

    Pure observation: every counter is an integer incremented outside
    the simulated timeline, so enabling attribution cannot move a single
    event time — the byte-identity contract is untouched (and
    ``RunResult.to_dict`` excludes the derived ``cf.*`` extras from the
    canonical wire form for the same reason).

    The counters reconcile exactly by construction: each loop iteration
    of :func:`run_closed_form` lands in exactly one bucket, so
    ``fused + generic == dispatched`` always holds; the equivalence
    suite asserts it on every cell of the differential grid.
    """

    __slots__ = ("dispatched", "fused_issue", "fused_complete_fast",
                 "fused_complete_turbo", "generic_certificate",
                 "generic_unrecognized", "fallback")

    def __init__(self) -> None:
        self.dispatched = 0
        self.fused_issue = 0
        self.fused_complete_fast = 0
        self.fused_complete_turbo = 0
        #: Tier-1 re-entries because the event sat at/past the scheme's
        #: steady-window certificate (epoch boundaries and their wake).
        self.generic_certificate = 0
        #: Tier-1 re-entries because the callback shape is not one of
        #: the dense transcriptions (telemetry ticks, refresh, stall
        #: retries, warmup wrappers).
        self.generic_unrecognized = 0
        #: fallback-reason histogram: ``"certificate:<qualname>"`` and
        #: ``"shape:<qualname>"`` -> count.
        self.fallback: Dict[str, int] = {}

    @property
    def fused(self) -> int:
        return (self.fused_issue + self.fused_complete_fast
                + self.fused_complete_turbo)

    @property
    def generic(self) -> int:
        return self.generic_certificate + self.generic_unrecognized

    def as_extras(self, prefix: str = "cf.") -> Dict[str, float]:
        """The tier-attribution block for ``RunResult.extras``."""
        out = {
            prefix + "dispatches_total": float(self.dispatched),
            prefix + "dispatches_fused": float(self.fused),
            prefix + "dispatches_generic": float(self.generic),
            prefix + "fused_issue": float(self.fused_issue),
            prefix + "fused_complete_fast": float(self.fused_complete_fast),
            prefix + "fused_complete_turbo": float(self.fused_complete_turbo),
            prefix + "generic_certificate": float(self.generic_certificate),
            prefix + "generic_unrecognized": float(self.generic_unrecognized),
        }
        for reason, count in self.fallback.items():
            out[prefix + "fallback." + reason] = float(count)
        return out


def run_closed_form(system, warmup_threshold: Optional[int] = None) -> None:
    """Dispatch the system's event queue through the two-tier clock
    until it drains or a callback halts the engine.

    Drop-in for ``Engine.run()`` on a batch-mode :class:`System` with no
    oracle, no span tracing and no watchdog (``System.run`` gates on
    exactly those conditions).  With ``warmup_threshold`` set, the
    evaluator performs the armed warmup wrapper's miss-count check
    inline after each fused issue event and halts at the crossing event
    — ``BatchFlatMemoryController.arm_warmup_halt`` must have been
    armed first, so the rare generically-dispatched requests (stall
    retries, MSHR drains) are still checked by the wrapper, and the
    inline crossing disarms it through ``_disarm_warmup``.
    """
    engine = system.engine
    if engine._running:
        raise SimulationError("engine is not reentrant")
    if getattr(system, "spans", None) is not None:
        # Defense in depth: ``System.run`` never routes a span-tracing
        # run here (span hooks cannot observe fused event bodies), but
        # if a future gate change does, the suppression must be loud —
        # an explicit extras flag plus a one-time structured warning
        # instead of silently-empty span aggregates.
        system._spans_suppressed = True
        _log.warn_once(
            "spans_suppressed",
            scheme=system.controller.scheme.name,
            reason="closed-form evaluator fuses dispatch bodies; "
                   "span hooks cannot observe fused events",
        )
    clock = getattr(system, "clock_stats", None)
    if clock is None:
        clock = ClockStats()
    fallback = clock.fallback
    controller = system.controller
    scheme = controller.scheme
    scheme_stats = scheme.stats
    ctrl_stats = controller.stats
    certificate = scheme.steady_window_certificate
    access_fast = scheme.access_fast
    nm = controller._nm
    fm = controller._fm
    mshr = system.mshr
    if mshr is not None:
        shift = mshr._shift
        m_reads = mshr._reads
        m_pending_reads = mshr._pending_reads
        m_stats = mshr.stats
        m_entries = mshr.entries
        reads_get = m_reads.get
        pending_reads_get = m_pending_reads.get
    queue = engine._queue
    free = engine._free
    warming = warmup_threshold is not None

    # seeded transcription faults (tests only; one module read per run)
    fault = faults.ACTIVE
    skip_stall = fault == "cf-stall-skip"
    gap_drift = fault == "cf-gap-drift"
    if fault == "cf-lost-coalesce" and mshr is not None:
        reads_get = {}.get  # BUG: in-flight reads are never found

    # ------------------------------------------------------------------
    # fused helper bodies (closures so the hot loop pays one call where
    # the method chain paid four to six)
    # ------------------------------------------------------------------
    def advance(core) -> None:
        """``BatchCore._advance``, transcribed: next column of the
        current batch, or the cold refill/drain path via the method."""
        i = core._cursor
        if i == core._n:
            core._advance()
            return
        core._cursor = i + 1
        gap = core._gap[i]
        core.stats.instructions += gap
        delay = gap / core._issue_width
        if gap_drift:
            delay = gap  # BUG: issue width forgotten
        when = engine.now + delay
        args = (core._pc[i], core._vaddr[i], core._write[i])
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = engine._seq
            entry[2] = core._issue_bound
            entry[3] = args
        else:
            entry = [when, engine._seq, core._issue_bound, args]
        heappush(queue, entry)
        engine._seq += 1

    def wake(waiter, when: float) -> None:
        """One completion waiter: the dominant shape is the issuing
        core's retire callback (``BatchCore._miss_done``)."""
        if getattr(waiter, "__func__", None) is _MISS_DONE:
            core = waiter.__self__
            core._outstanding -= 1
            core.stats.misses_retired += 1
            if core._blocked:
                core._blocked = False
                advance(core)
            if core._draining:
                core._maybe_finish()
        else:
            waiter(when)

    def fire(cb, when: float) -> None:
        """One device completion callback: the dominant shapes are the
        transaction fast path (``MemoryRequest.fast_done`` → MSHR
        release → core wakeups) and the declined-plan stage walk
        (``MemoryRequest.op_done`` → next stage or ``_complete``),
        both fused end to end."""
        f = getattr(cb, "__func__", None)
        if f is _FAST_DONE:
            txn = cb.__self__
            ctl = txn.controller
            ctl.inflight -= 1
            cstats = ctl.stats
            cstats.misses_completed += 1
            cstats.total_miss_latency += when - txn.dispatch_time
            txn.state = COMPLETE
            txn.finish_time = when
            m = txn.mshr
            if m is not None:
                # MSHRFile.release, transcribed
                m._occupied -= 1
                if not txn.is_write and m._reads.get(txn.line) is txn:
                    del m._reads[txn.line]
                for waiter in txn.waiters:
                    wake(waiter, when)
                if m._pending and not m._draining:
                    m._drain_pending()
                pool = m._pool
                if pool is not None and len(pool) < m._pool_cap:
                    txn.waiters.clear()
                    txn.span = None
                    pool.append(txn)
            else:
                for waiter in txn.waiters:
                    wake(waiter, when)
                ctl._recycle(txn)
        elif f is _OP_DONE:
            # ``MemoryRequest.op_done`` + the batch controller's stage
            # walk (``BatchFlatMemoryController._advance``), transcribed
            # — the declined-plan completion chain (spans are gated off
            # whenever the evaluator runs, and a declined transaction's
            # remaining stages re-issue through the same fused devices).
            txn = cb.__self__
            r = txn.remaining_ops - 1
            txn.remaining_ops = r
            if r == 0:
                stages = txn.stages
                n = len(stages)
                i = txn.stage_index + 1
                while i < n and not stages[i]:
                    i += 1
                if i < n:
                    ops = stages[i]
                    txn.stage_index = i
                    txn.remaining_ops = len(ops)
                    for op in ops:
                        (nm if op.level is Level.NM else fm).access_turbo(
                            op.addr, op.size, op.is_write, True, cb)
                    return
                # ``FlatMemoryController._complete``, transcribed
                ctl = txn.controller
                ctl.inflight -= 1
                cstats = ctl.stats
                cstats.misses_completed += 1
                cstats.total_miss_latency += when - txn.dispatch_time
                txn.state = COMPLETE
                txn.finish_time = when
                m = txn.mshr
                if m is not None:
                    # MSHRFile.release, transcribed
                    m._occupied -= 1
                    if not txn.is_write and m._reads.get(txn.line) is txn:
                        del m._reads[txn.line]
                    for waiter in txn.waiters:
                        wake(waiter, when)
                    if m._pending and not m._draining:
                        m._drain_pending()
                    pool = m._pool
                    if pool is not None and len(pool) < m._pool_cap:
                        txn.waiters.clear()
                        txn.span = None
                        pool.append(txn)
                else:
                    # the scalar ``_complete`` never recycles — compat
                    # declined transactions stay pool-invisible here too
                    for waiter in txn.waiters:
                        wake(waiter, when)
        elif cb is not None:
            cb(when)

    def dispatch(txn, now: float) -> None:
        """``BatchFlatMemoryController.handle_request``, transcribed:
        the scheme consult and the accepted single-op fast shape; the
        declined path re-enters the controller's plan machinery."""
        if now < controller._stall_until and not skip_stall:
            # OS epoch in progress (``checking`` wrapper semantics are
            # preserved: the instance attribute is captured, so a retry
            # armed during warmup still performs the warmup check)
            engine.schedule_at(controller._stall_until,
                               controller.handle_request, txn)
            return
        txn.state = DISPATCHED
        txn.dispatch_time = now
        txn.controller = controller
        fast = access_fast(txn.paddr, txn.is_write, txn.pc)
        if fast is not None:
            is_nm, addr, size, op_write = fast
            if is_nm:
                ctrl_stats.demand_nm_bytes += size
                device = nm
            else:
                ctrl_stats.demand_fm_bytes += size
                device = fm
            controller.fast_accepted += 1
            controller.inflight += 1
            txn.state = STAGING
            device.access_turbo(addr, size, op_write, True, txn.fast_done)
            return
        controller._dispatch_declined(txn, now)

    # ------------------------------------------------------------------
    # the two-tier dispatch loop
    # ------------------------------------------------------------------
    engine._running = True
    engine._halt = False
    dispatched = 0
    # per-tier attribution accumulators (locals in the hot loop, folded
    # into ``clock`` once in the finally clause)
    n_issue = n_fast = n_turbo = n_cert = n_other = 0
    cert = certificate(engine.now)
    try:
        while queue:
            entry = heappop(queue)
            when = entry[0]
            engine.now = when
            fn = entry[2]
            args = entry[3]
            entry[2] = entry[3] = None
            if len(free) < _FREE_LIST_CAP:
                free.append(entry)
            dispatched += 1
            if when >= cert:
                # Tier-1 territory: a clock-driven scheme event is due
                # at (or accumulated-float-near) this time — dispatch
                # generically and re-certify from the new now.
                n_cert += 1
                key = "certificate:" + getattr(
                    fn, "__qualname__", type(fn).__name__)
                fallback[key] = fallback.get(key, 0) + 1
                fn(*args)
                cert = certificate(engine.now)
                if engine._halt:
                    engine._halt = False
                    return
                continue
            f = getattr(fn, "__func__", None)
            if f is _ISSUE:
                # ``BatchCore._issue_cols``, transcribed
                n_issue += 1
                core = fn.__self__
                pc, vaddr, is_write = args
                cstats = core.stats
                cstats.accesses += 1
                paddr = core._translate(vaddr)
                core._outstanding += 1
                cstats.misses_issued += 1
                if is_write:
                    fifo = core._dirty_fifo
                    fifo.append(paddr)
                    if len(fifo) > DIRTY_FIFO_DEPTH:
                        core._send_writeback(fifo.popleft())
                retire = core._retire
                if mshr is None:
                    # compatibility front door
                    # (``BatchFlatMemoryController.handle_miss``)
                    cpool = controller._pool
                    if cpool:
                        txn = cpool.pop()
                        txn.paddr = paddr
                        txn.is_write = is_write
                        txn.pc = pc
                        txn.issue_time = when
                        txn.state = QUEUED
                    else:
                        txn = MemoryRequest(paddr, is_write, pc, when)
                    txn.waiters.append(retire)
                    dispatch(txn, when)
                else:
                    # ``MSHRFile.issue``, transcribed (spans are gated
                    # off whenever the evaluator runs)
                    line = paddr >> shift
                    joined = False
                    if not is_write:
                        txn = reads_get(line)
                        if txn is not None:
                            txn.waiters.append(retire)
                            txn.coalesced += 1
                            m_stats.coalesced += 1
                            joined = True
                        else:
                            pend = pending_reads_get(line)
                            if pend is not None:
                                pend.waiters.append(retire)
                                m_stats.coalesced += 1
                                joined = True
                    if not joined:
                        if mshr._occupied >= m_entries:
                            m_stats.structural_stalls += 1
                            pend = PendingMiss(paddr, is_write, pc,
                                               retire, when, None)
                            mshr._pending.append(pend)
                            if not is_write:
                                m_pending_reads[line] = pend
                            if len(mshr._pending) > m_stats.peak_pending:
                                m_stats.peak_pending = len(mshr._pending)
                        else:
                            # ``MSHRFile._allocate``, transcribed
                            mpool = mshr._pool
                            if mpool:
                                txn = mpool.pop()
                                txn.paddr = paddr
                                txn.is_write = is_write
                                txn.pc = pc
                                txn.state = QUEUED
                                txn.issue_time = when
                            else:
                                txn = MemoryRequest(paddr, is_write, pc,
                                                    when)
                            txn.line = line
                            txn.mshr = mshr
                            txn.waiters = [retire]
                            txn.coalesced = 0
                            mshr._occupied += 1
                            if not is_write:
                                m_reads[line] = txn
                            m_stats.allocations += 1
                            if mshr._occupied > m_stats.peak_occupancy:
                                m_stats.peak_occupancy = mshr._occupied
                            dispatch(txn, when)
                if core._outstanding < core._max_outstanding:
                    advance(core)
                else:
                    core._blocked = True
                    cstats.stall_events += 1
                if warming and scheme_stats.misses >= warmup_threshold:
                    # the armed wrapper's check, performed inline (the
                    # scheme miss count only moves inside dispatch);
                    # disarm it so post-warmup retries don't re-halt.
                    controller._disarm_warmup()
                    engine._halt = True
            elif f is _COMPLETE_FAST:
                # ``Channel._complete_fast``, transcribed
                n_fast += 1
                channel = fn.__self__
                size, c_write, c_demand, cb = args
                channel._inflight -= 1
                cstats = channel.stats
                if c_write:
                    cstats.writes += 1
                    cstats.bytes_written += size
                else:
                    cstats.reads += 1
                    cstats.bytes_read += size
                if c_demand:
                    cstats.demand_bytes += size
                else:
                    cstats.background_bytes += size
                fire(cb, when)
                if channel._demand_queue or channel._background_queue:
                    channel._try_issue_turbo()
            elif f is _COMPLETE_TURBO:
                # ``Channel._complete_turbo``, transcribed
                n_turbo += 1
                channel = fn.__self__
                request = args[0]
                request.completed_at = when
                channel._inflight -= 1
                cstats = channel.stats
                size = request.size
                if request.is_write:
                    cstats.writes += 1
                    cstats.bytes_written += size
                else:
                    cstats.reads += 1
                    cstats.bytes_read += size
                if request.priority is _DEMAND:
                    cstats.demand_bytes += size
                else:
                    cstats.background_bytes += size
                cb = request.on_complete
                pool = channel._req_pool
                if pool is not None and len(pool) < channel._REQ_POOL_CAP:
                    request.on_complete = None
                    request.span = None
                    pool.append(request)
                fire(cb, when)
                if ((channel._demand_queue or channel._background_queue)
                        and channel._inflight < channel.pipeline_depth):
                    channel._try_issue_turbo()
            else:
                # sparse Tier-1 event (epoch timer, telemetry tick,
                # refresh, stall retry, warmup wrapper, op_done stage)
                n_other += 1
                key = "shape:" + getattr(
                    fn, "__qualname__", type(fn).__name__)
                fallback[key] = fallback.get(key, 0) + 1
                fn(*args)
                cert = certificate(engine.now)
            if engine._halt:
                engine._halt = False
                return
    finally:
        engine.events_dispatched += dispatched
        engine._running = False
        clock.dispatched += dispatched
        clock.fused_issue += n_issue
        clock.fused_complete_fast += n_fast
        clock.fused_complete_turbo += n_turbo
        clock.generic_certificate += n_cert
        clock.generic_unrecognized += n_other
