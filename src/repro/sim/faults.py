"""Test-only fault injection for the batch engine.

The differential harness (``tests/integration/test_batch_equivalence.py``)
asserts scalar and batched runs are byte-identical — but a harness that
never fails proves nothing.  This module lets the mutation self-tests
(``tests/integration/test_batch_mutations.py``) seed three deliberate,
realistic batch-path bugs and assert the harness trips on each:

``window-off-by-one``
    The batch trace generator resumes a refill one record early,
    duplicating the window-boundary access (the classic off-by-one in
    window chunking).
``drop-row-close``
    The channel fast path treats a row-buffer conflict as a row hit,
    skipping the precharge/activate sequence (a dropped row close).
``stale-busy``
    The channel fast path computes timing from the bank but never
    advances the bank's busy-until (``ready``) time, so later requests
    see a stale bank state.

Three further faults target the closed-form window evaluator
(:mod:`repro.sim.window`) specifically — each is a realistic bug in the
evaluator's *transcription* of a scalar body, the class of defect the
fused dispatch loop could actually acquire:

``cf-stall-skip``
    The evaluator's inline dispatch drops the OS-epoch stall check, so
    demand requests issue straight through an HMA stall window instead
    of being rescheduled to its end.
``cf-lost-coalesce``
    The evaluator's inline MSHR admission skips the in-flight-read
    lookup, so a read that should have joined an in-flight fill
    allocates its own entry and consults the scheme again.
``cf-gap-drift``
    The evaluator's inline core advance forgets the issue-width
    division, scheduling the next issue a full ``gap_instr`` cycles out
    instead of ``gap_instr / issue_width``.

Normal operation: ``ACTIVE`` is ``None`` and every hook site reduces to
one module-global load plus an ``is None`` check (the window evaluator
reads it once per entry).  Faults only perturb the *batched* engine —
the scalar reference path never consults this module — so an injected
fault makes the two engines diverge, which is exactly what the harness
must detect.
"""

from __future__ import annotations

from contextlib import contextmanager

#: the currently injected fault name, or None (production value).
ACTIVE = None

#: the fault names the batch path knows how to apply.
KNOWN = ("window-off-by-one", "drop-row-close", "stale-busy",
         "cf-stall-skip", "cf-lost-coalesce", "cf-gap-drift")


@contextmanager
def inject(name: str):
    """Activate fault ``name`` for the duration of the ``with`` block."""
    global ACTIVE
    if name not in KNOWN:
        raise ValueError(f"unknown fault {name!r}; known: {KNOWN}")
    if ACTIVE is not None:
        raise RuntimeError(f"fault {ACTIVE!r} already active")
    ACTIVE = name
    try:
        yield
    finally:
        ACTIVE = None


def bank_prepare(bank, row: int, now: float) -> float:
    """Fault-aware stand-in for ``Bank.prepare`` on the channel fast
    path (only called when a fault is active)."""
    if ACTIVE == "drop-row-close":
        # BUG: a conflict is mis-classified as a hit — the open row is
        # never closed, so the precharge + activate latency vanishes.
        if bank.open_row is not None and bank.open_row != row:
            bank.open_row = row  # pretend the row was already open
        return bank.prepare(row, now)
    if ACTIVE == "stale-busy":
        # BUG: timing is computed but the bank's busy-until time is
        # left stale, so the next request overlaps illegally.
        ready_before = bank.ready
        done = bank.prepare(row, now)
        bank.ready = ready_before
        return done
    return bank.prepare(row, now)
