"""Way + location predictor (Section III-F, latency optimisation).

Fetching four remap entries from DRAM-based NM is serialised, unlike an
SRAM cache.  A small (4 K entry) predictor indexed by ``PC xor data
address`` remembers, per index, the way last accessed and whether the
data was found in FM:

* a correct **way** prediction collapses the serialised 4-entry metadata
  fetch to a single entry read;
* a **location = FM** prediction launches the FM data access in parallel
  with the NM metadata check, hiding the NM latency entirely when right
  (the speculative FM request is wasted bandwidth when wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.config import BLOCK_BYTES


@dataclass(frozen=True)
class Prediction:
    """What the table predicts for an access (``None`` = no entry)."""

    way: Optional[int]
    in_fm: bool


class WayPredictor:
    """Direct-mapped PC xor address predictor."""

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("predictor size must be a power of two")
        self.entries = entries
        self._table: Dict[int, Prediction] = {}
        self.way_correct = 0
        self.way_wrong = 0
        self.loc_correct = 0
        self.loc_wrong = 0

    def _index(self, pc: int, paddr: int) -> int:
        # PC xor block-granularity address bits: every subblock of a
        # large block shares one entry, since the way/location being
        # predicted is a property of the block, not the subblock.  The
        # shift is derived from the block geometry (2 KB -> 11) so a
        # non-default geometry does not silently alias neighbouring
        # blocks into one entry.
        return (pc ^ (paddr >> (BLOCK_BYTES.bit_length() - 1))) & (
            self.entries - 1)

    # ------------------------------------------------------------------
    def predict(self, pc: int, paddr: int) -> Prediction:
        return self._table.get(self._index(pc, paddr), Prediction(None, False))

    def update(self, pc: int, paddr: int, way: int, in_fm: bool) -> None:
        self._table[self._index(pc, paddr)] = Prediction(way, in_fm)

    def record_outcome(self, prediction: Prediction, actual_way: int,
                       actually_in_fm: bool) -> None:
        """Accuracy bookkeeping (reported by the predictor ablation)."""
        if prediction.way is not None:
            if prediction.way == actual_way:
                self.way_correct += 1
            else:
                self.way_wrong += 1
        if prediction.in_fm == actually_in_fm:
            self.loc_correct += 1
        else:
            self.loc_wrong += 1

    @property
    def way_accuracy(self) -> float:
        total = self.way_correct + self.way_wrong
        return self.way_correct / total if total else 0.0

    @property
    def location_accuracy(self) -> float:
        total = self.loc_correct + self.loc_wrong
        return self.loc_correct / total if total else 0.0
