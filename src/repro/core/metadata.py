"""Per-NM-frame metadata (Figure 4 of the paper).

Each 2 KB NM frame (a *way* of its congruence set) carries:

* ``remap`` — the global block number of the FM block currently
  interleaved into this frame (or None);
* ``bitvec`` — 32 residency bits; bit *i* set means subblock *i* of the
  frame holds the **FM block's** subblock *i*, and the frame's native
  subblock *i* has been swapped out to the FM block's home, position *i*
  (swaps are always position-for-position between a frame and its
  partner block's home, which is what makes the mapping a bijection);
* ``locked`` / ``lock_owner`` — a hot block owns the whole frame:
  ``"fm"`` = the remapped FM block is fully resident (bitvec conceptually
  all-ones), ``"nm"`` = the native page is pinned and interleaving is
  forbidden;
* ``nm_count`` / ``fm_count`` — 6-bit aging activity counters for the
  native and remapped block respectively;
* ``lru`` — last-touch stamp for victim selection among a set's ways;
* ``first_pc`` / ``first_addr`` — PC and address of the first subblock
  swapped in, the bit-vector history table's key (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.config import SUBBLOCKS_PER_BLOCK

#: all 32 residency bits set
FULL_BITVEC = (1 << SUBBLOCKS_PER_BLOCK) - 1
#: activity counters are 6 bits wide (Section III-B)
COUNTER_MAX = 63


@dataclass
class FrameMetadata:
    """Remap state of one NM frame."""

    remap: Optional[int] = None
    bitvec: int = 0
    locked: bool = False
    lock_owner: Optional[str] = None  # "fm" | "nm" when locked
    nm_count: int = 0
    fm_count: int = 0
    lru: int = 0
    first_pc: int = 0
    first_addr: int = 0

    # ------------------------------------------------------------------
    def bit(self, index: int) -> bool:
        """Residency bit for subblock ``index``."""
        self._check_index(index)
        return bool(self.bitvec >> index & 1)

    def set_bit(self, index: int) -> None:
        self._check_index(index)
        self.bitvec |= 1 << index

    def clear_bit(self, index: int) -> None:
        self._check_index(index)
        self.bitvec &= ~(1 << index)

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < SUBBLOCKS_PER_BLOCK:
            raise ValueError(f"subblock index {index} out of range")

    def swapped_in_indices(self):
        """Indices of subblocks currently swapped in from the FM block."""
        vec = self.bitvec
        return [i for i in range(SUBBLOCKS_PER_BLOCK) if vec >> i & 1]

    def missing_indices(self):
        """Indices whose FM subblocks are *not* resident."""
        vec = self.bitvec
        return [i for i in range(SUBBLOCKS_PER_BLOCK) if not vec >> i & 1]

    @property
    def interleaved(self) -> bool:
        """True when two blocks' subblocks coexist in this frame."""
        return self.remap is not None and 0 < self.bitvec < FULL_BITVEC

    # counters -------------------------------------------------------------
    def bump_nm(self) -> int:
        self.nm_count = min(COUNTER_MAX, self.nm_count + 1)
        return self.nm_count

    def bump_fm(self) -> int:
        self.fm_count = min(COUNTER_MAX, self.fm_count + 1)
        return self.fm_count

    def age(self) -> None:
        """Right-shift both counters (Section III-B aging)."""
        self.nm_count >>= 1
        self.fm_count >>= 1

    # locking ---------------------------------------------------------------
    def lock(self, owner: str) -> None:
        if owner not in ("nm", "fm"):
            raise ValueError(f"lock owner must be 'nm' or 'fm', got {owner!r}")
        if owner == "fm" and self.remap is None:
            raise ValueError("cannot fm-lock a frame with no remapped block")
        self.locked = True
        self.lock_owner = owner

    def unlock(self) -> None:
        self.locked = False
        self.lock_owner = None
