"""Memory-activity monitoring (Section III-B).

Every NM frame carries two 6-bit counters — one for its native NM block,
one for the FM block interleaved into it — classified hot when a counter
crosses the threshold (the paper found 50 best).  To distinguish current
from past hotness the counters are *aging*: every one million memory
accesses they shift right one bit.

The monitor owns the global access count and drives aging across all
frames; the hot/cold classification feeds the locking engine.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.metadata import FrameMetadata

DEFAULT_HOT_THRESHOLD = 50
DEFAULT_AGING_PERIOD = 1_000_000


class ActivityMonitor:
    """Aging-counter bookkeeping over all NM frames."""

    def __init__(self, frames: List[FrameMetadata],
                 hot_threshold: int = DEFAULT_HOT_THRESHOLD,
                 aging_period: int = DEFAULT_AGING_PERIOD) -> None:
        if hot_threshold < 1:
            raise ValueError("hot threshold must be >= 1")
        if aging_period < 1:
            raise ValueError("aging period must be >= 1")
        self._frames = frames
        self.hot_threshold = hot_threshold
        self.aging_period = aging_period
        self.accesses = 0
        self.agings = 0

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """Count one memory access; runs the aging pass at each period
        boundary.  Returns True when an aging pass happened (the caller
        then re-evaluates locks)."""
        self.accesses += 1
        if self.accesses % self.aging_period == 0:
            self.age_all()
            return True
        return False

    def age_all(self) -> None:
        for frame in self._frames:
            frame.age()
        self.agings += 1

    # classification --------------------------------------------------------
    def nm_block_hot(self, frame: FrameMetadata) -> bool:
        return frame.nm_count >= self.hot_threshold

    def fm_block_hot(self, frame: FrameMetadata) -> bool:
        return frame.remap is not None and frame.fm_count >= self.hot_threshold

    def stale_locks(self) -> Iterable[int]:
        """Indices of frames whose locked owner has cooled below the
        threshold (Section III-C: clearing the lock bit)."""
        for index, frame in enumerate(self._frames):
            if not frame.locked:
                continue
            count = frame.fm_count if frame.lock_owner == "fm" else frame.nm_count
            if count < self.hot_threshold:
                yield index
