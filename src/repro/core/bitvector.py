"""Bit-vector history table (Section III-A).

When an interleaved block is restored (evicted from NM), its residency
bit vector — the footprint of subblocks the program actually used — is
saved in a small SRAM table indexed by ``PC xor address`` of the first
subblock swapped in.  When a block is next installed, the stored vector
drives a batch fetch of the previously-useful subblocks, giving SILC-FM
CAMEO-beating spatial hits without PoM's fetch-everything bandwidth.
"""

from __future__ import annotations

from typing import Dict

from repro.core.metadata import FULL_BITVEC
from repro.sim.config import SUBBLOCK_BYTES


def history_index(pc: int, first_subblock_addr: int, entries: int) -> int:
    """The paper's index function: PC xor'ed with the address of the
    first swapped-in subblock, folded into the table size.  The shift
    is derived from the subblock geometry (64 B -> 6) so a non-default
    geometry does not silently alias neighbouring subblocks."""
    if entries <= 0 or entries & (entries - 1):
        raise ValueError("table size must be a power of two")
    shift = SUBBLOCK_BYTES.bit_length() - 1
    return (pc ^ (first_subblock_addr >> shift)) & (entries - 1)


class BitVectorHistoryTable:
    """Direct-mapped SRAM table of saved residency bit vectors."""

    def __init__(self, entries: int = 65536) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("table size must be a power of two")
        self.entries = entries
        self._table: Dict[int, int] = {}
        self.saves = 0
        self.hits = 0
        self.lookups = 0

    # ------------------------------------------------------------------
    def save(self, pc: int, first_subblock_addr: int, bitvec: int) -> None:
        """Record a block's usage footprint at eviction time."""
        if not 0 <= bitvec <= FULL_BITVEC:
            raise ValueError(f"bit vector {bitvec:#x} out of range")
        self._table[history_index(pc, first_subblock_addr, self.entries)] = bitvec
        self.saves += 1

    def lookup(self, pc: int, first_subblock_addr: int) -> int:
        """Predicted footprint for a block being installed; 0 = no history
        (caller falls back to fetching only the demanded subblock)."""
        self.lookups += 1
        vec = self._table.get(history_index(pc, first_subblock_addr, self.entries), 0)
        if vec:
            self.hits += 1
        return vec

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __len__(self) -> int:
        return len(self._table)
